#!/usr/bin/env sh
# CI entry point: build, test, lint, and check formatting.
# Run from the repository root.
set -eu

# Crash-recovery tests and E23 keep their write-ahead logs in
# per-process scratch dirs under $TMPDIR; they clean up after
# themselves, but a killed run must not leave logs behind either.
cleanup_wal_scratch() {
    rm -rf "${TMPDIR:-/tmp}"/fargo-crash-* "${TMPDIR:-/tmp}"/fargo-e23-*
}
trap cleanup_wal_scratch EXIT

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# Failure-injection suite across several deterministic simnet seeds:
# each seed is a different loss/jitter schedule, so the reliable
# messaging layer (retransmission, reply dedup, two-phase moves) is
# exercised against more than one drop pattern.
for seed in 7 11 23; do
    echo "==> failure injection (seed $seed)"
    FARGO_SIMNET_SEED=$seed cargo test -q -p fargo-core --test failure_injection
done

# Smoke-test the experiments runner's JSON exposition: the binary
# self-validates the report (tables + metrics + journal snapshot) and
# exits nonzero on renderer drift; also insist the journal key shipped.
echo "==> experiments json smoke (E13)"
cargo run -q -p fargo-bench --bin experiments --release -- json E13 \
    | grep -q '"journal"'

# E14 guardrail: the reliability layer's loss-free overhead and its
# recovery under loss, reported through the same self-validating JSON
# path (the run exits nonzero if any invocation fails to recover).
echo "==> experiments json smoke (E14)"
cargo run -q -p fargo-bench --bin experiments --release -- json E14 \
    | grep -q '"E14"'

# E15 guardrails, swept over simnet seeds (different jitter schedules):
# the adaptive layout planner must converge and cut inter-Core messages
# by at least 30% against the static adversarial layout, and the
# attached-but-disabled loop must add roughly nothing to the invoke
# path. The table rows say "guardrail ok" only when both hold.
for seed in 7 11 23; do
    echo "==> experiments json smoke (E15, seed $seed)"
    e15=$(FARGO_SIMNET_SEED=$seed \
        cargo run -q -p fargo-bench --bin experiments --release -- json E15)
    echo "$e15" | grep -q 'guardrail ok (>=30% vs static, converged)'
    echo "$e15" | grep -q 'guardrail ok (attached-but-disabled ~ absent)'
done

# E17 guardrails, swept over the same simnet seeds: always-on phase
# timing plus the tail sampler must cost at most ~0.5us per local call
# against the stamp-free baseline; under an injected 2ms link the
# receiver's network-phase histogram must absorb the delay and the
# slow-request ring must retain traced requests. The table rows say
# "guardrail ok" only when all three hold.
for seed in 7 11 23; do
    echo "==> experiments json smoke (E17, seed $seed)"
    e17=$(FARGO_SIMNET_SEED=$seed \
        cargo run -q -p fargo-bench --bin experiments --release -- json E17)
    echo "$e17" | grep -q 'guardrail ok (phase timing <=0.5us/call)'
    echo "$e17" | grep -q 'guardrail ok (network phase >= injected 2ms)'
    echo "$e17" | grep -q 'guardrail ok (tail retained with spans)'
done

# E18 guardrails, swept over the same simnet seeds (each is a different
# Zipf call schedule): always-on per-complet accounting must cost at
# most ~0.5us per local call against the accounting-free baseline; a
# 64-slot Space-Saving sketch must recall at least 90% of the true
# top-10 talkers; and load-weighted partition seats must keep every
# Core within capacity where count seats overload one.
for seed in 7 11 23; do
    echo "==> experiments json smoke (E18, seed $seed)"
    e18=$(FARGO_SIMNET_SEED=$seed \
        cargo run -q -p fargo-bench --bin experiments --release -- json E18)
    echo "$e18" | grep -q 'guardrail ok (accounting <=0.5us/call)'
    echo "$e18" | grep -q 'guardrail ok (top-10 of'
    echo "$e18" | grep -q 'guardrail ok (within capacity and below the count-based maximum)'
done

# The full core integration suite again, this time with every envelope
# on real sockets: FARGO_TRANSPORT=tcp makes the test fixture pre-bind
# one loopback listener per Core and run the TCP backend, with the
# simnet network attached as the fault-injection control plane (via the
# delivery gate), so partition/loss scenarios must behave identically.
echo "==> core integration suite over TCP loopback"
FARGO_TRANSPORT=tcp cargo test -q -p fargo-core

# E21 guardrails, swept over the same simnet seeds: one Core must hold
# at least 10,000 concurrent in-flight RPCs (completion-keyed replies,
# not parked threads) with zero worker-pool rejections, and both
# transport backends must sustain the request-reply throughput floor.
for seed in 7 11 23; do
    echo "==> experiments json smoke (E21, seed $seed)"
    e21=$(FARGO_SIMNET_SEED=$seed \
        cargo run -q -p fargo-bench --bin experiments --release -- json E21)
    echo "$e21" | grep -q 'guardrail ok (>=10,000 in flight'
    echo "$e21" | grep -q 'guardrail ok (simnet window'
    echo "$e21" | grep -q 'guardrail ok (tcp window'
done

# E22 guardrails, swept over the same simnet seeds: the sharded
# location service must resolve a querier's three-hop-stale hint in at
# most 2 network hops (p99) at every population size, both over simnet
# and with every envelope framed on loopback TCP sockets; the chain-walk
# baseline rows are informational.
for seed in 7 11 23; do
    echo "==> experiments json smoke (E22, seed $seed)"
    e22=$(FARGO_SIMNET_SEED=$seed \
        cargo run -q -p fargo-bench --bin experiments --release -- json E22)
    echo "$e22" | grep -q 'guardrail ok ('
    echo "$e22" | grep -q 'shard/tcp'
    if echo "$e22" | grep -q 'guardrail FAILED'; then exit 1; fi
done

# Multi-process smoke test: three OS processes, one Core each, framed
# envelopes over loopback sockets. The parent drives an invoke + migrate
# script through node 0 and insists on clean child shutdown.
echo "==> tcp_cluster example (3 processes over loopback)"
cargo run -q --release --example tcp_cluster | grep -q 'TCP cluster OK'

# Deterministic schedule-explorer sweep: 1000 seeded workloads (moves,
# invokes, relocator links, time advances, idle-tracker collections)
# through the virtual-clock driver, every merged journal checked against
# the invariant oracles. A failing seed shrinks to a minimal schedule,
# is written to fargo-check-seed<N>.sched, and the exact replay command
# is printed; `timeout` enforces the wall-time budget so a throughput
# regression fails CI rather than stalling it.
echo "==> fargo-check seed sweep (1000 seeds, 60s budget)"
timeout 60 cargo run -q -p fargo-check --release -- --seeds 1000 --ops 12 --cores 3

# Fault-injection sweep: the same explorer with crash / restart /
# partition / heal ops mixed into every schedule, checked by the
# "no acknowledged state lost" durability oracle on top of the
# standard set. Every Core runs with a write-ahead log in a scratch
# dir; recovery must replay it on restart.
echo "==> fargo-check fault sweep (1000 seeds, 120s budget)"
timeout 120 cargo run -q -p fargo-check --release -- \
    --seeds 1000 --ops 16 --cores 3 --faults

# E23 guardrails, swept over the same simnet seeds: a killed-and-
# restarted Core must recover 100% of acknowledged state from its
# write-ahead log, and post-recovery lookups from a cold peer must
# resolve in <= 2 hops; the embedded fault sweep must come back clean.
for seed in 7 11 23; do
    echo "==> experiments json smoke (E23, seed $seed)"
    e23=$(FARGO_SIMNET_SEED=$seed \
        cargo run -q -p fargo-bench --bin experiments --release -- json E23)
    echo "$e23" | grep -q 'guardrail ok (replayed'
    echo "$e23" | grep -q 'fault sweep clean'
    if echo "$e23" | grep -q 'FAILED'; then exit 1; fi
done

echo "CI OK"
