#!/usr/bin/env sh
# CI entry point: build, test, lint, and check formatting.
# Run from the repository root.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
