#!/usr/bin/env sh
# CI entry point: build, test, lint, and check formatting.
# Run from the repository root.
set -eu

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

# Smoke-test the experiments runner's JSON exposition: the binary
# self-validates the report (tables + metrics + journal snapshot) and
# exits nonzero on renderer drift; also insist the journal key shipped.
echo "==> experiments json smoke (E13)"
cargo run -q -p fargo-bench --bin experiments --release -- json E13 \
    | grep -q '"journal"'

echo "CI OK"
