//! Minimal in-tree subset of the `crossbeam` crate.
//!
//! Only the [`channel`] module is provided, implemented on `std` primitives
//! (a `Mutex<VecDeque>` plus condvars). Unlike `std::sync::mpsc`, the
//! receiver here is `Sync` and exposes `len()`, both of which the workspace
//! depends on (endpoints are shared across threads and report queue depth).

pub mod channel {
    //! Multi-producer, single-or-shared-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when an item arrives or all senders disconnect.
        not_empty: Condvar,
        /// Signalled when space frees up in a bounded channel.
        not_full: Condvar,
        cap: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity; the item is returned.
        Full(T),
        /// All receivers are gone; the item is returned.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel that blocks senders once `cap` items are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `item`, blocking while a bounded channel is full.
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(item));
                }
                match self.shared.cap {
                    Some(cap) if state.items.len() >= cap => {
                        state = self.shared.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.items.push_back(item);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues `item` without blocking: a full bounded channel or a
        /// receiverless channel returns the item in the error.
        pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(item));
            }
            if let Some(cap) = self.shared.cap {
                if state.items.len() >= cap {
                    return Err(TrySendError::Full(item));
                }
            }
            state.items.push_back(item);
            drop(state);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next item, blocking until one arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.not_empty.wait(state).unwrap();
            }
        }

        /// Dequeues the next item, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    drop(state);
                    self.shared.not_full.notify_one();
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = next;
                if timed_out.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeues the next item if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of items currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap().items.len()
        }

        /// True when no items are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            assert!(tx.try_send(1).is_ok());
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv(), Ok(1));
            drop(rx);
            assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
            // Channel stays alive until the last receiver drops.
            drop(rx);
            tx.send(3).unwrap();
            assert_eq!(rx2.recv(), Ok(3));
            drop(rx2);
            assert!(tx.send(4).is_err());
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = bounded(1);
            let handle = thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(i));
            }
            handle.join().unwrap();
        }
    }
}
