//! Minimal in-tree subset of the `bytes` crate API.
//!
//! The workspace builds in offline environments where crates.io is not
//! reachable, so the handful of `bytes` types the codebase actually uses are
//! reimplemented here on top of `std`. Only the surface exercised by the
//! workspace is provided: [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`].

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
///
/// Backed by an `Arc<[u8]>` plus a start/end window, so `clone` and
/// [`Bytes::slice`] are O(1) and share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    /// Creates a `Bytes` from a static slice (copies; the real crate
    /// borrows, but the workspace only relies on the value semantics).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies `data` into a new allocation.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
            start: 0,
            end: data.len(),
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        (**self).copy_to_slice(dst)
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, b: u8);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, b: u8) {
        self.push(b);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_u8(&mut self, b: u8) {
        (**self).put_u8(b)
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bytes_mut_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_slice(&[8, 9]);
        m.put_f64_le(1.5);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        let mut two = [0u8; 2];
        b.copy_to_slice(&mut two);
        assert_eq!(two, [8, 9]);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_f64_le();
    }
}
