//! Minimal in-tree subset of the `parking_lot` API.
//!
//! Wraps `std::sync` primitives with the non-poisoning `parking_lot`
//! interface the workspace relies on: `lock()`/`read()`/`write()` return
//! guards directly, `try_lock()` returns an `Option`, and `try_lock_for`
//! polls with a short sleep until the deadline. Poisoned std locks are
//! recovered transparently (parking_lot has no poisoning).

use std::sync::{self, TryLockError};
use std::time::{Duration, Instant};

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire the lock, polling until `timeout` elapses.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<MutexGuard<'_, T>> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(guard) = self.try_lock() {
                return Some(guard);
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn try_lock_for_times_out_when_held() {
        let m = Arc::new(Mutex::new(0));
        let guard = m.lock();
        let m2 = Arc::clone(&m);
        let handle =
            std::thread::spawn(move || m2.try_lock_for(Duration::from_millis(20)).is_none());
        let timed_out = handle.join().unwrap();
        drop(guard);
        assert!(timed_out);
        assert!(m.try_lock_for(Duration::from_millis(20)).is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
