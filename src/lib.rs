//! # fargo — dynamic layout of distributed applications
//!
//! FarGo-RS is a Rust reproduction of **FarGo** (*"System Support for
//! Dynamic Layout of Distributed Applications"*, Holder, Ben-Shaul,
//! Gazit; ICDCS 1999): a runtime in which the components of a distributed
//! application — *complets* — can be relocated among hosts **while the
//! application runs**, with relocation policy programmed separately from
//! application logic.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`core`] | the Core runtime: complets, references, movement, invocation, naming, events, monitoring |
//! | [`wire`] | the marshal layer: `Value` graphs, ids, the binary codec |
//! | [`simnet`] | the simulated network substrate (links, latency/bandwidth, partitions) |
//! | [`layout`] | the adaptive layout planner: affinity graph, partitioner, closed-loop executor |
//! | [`script`] | the §4.3 layout scripting language |
//! | [`shell`] | the administration shell |
//! | [`viz`] | the textual layout monitor (Figure 4) |
//!
//! ## Quick start
//!
//! ```
//! use fargo::prelude::*;
//!
//! define_complet! {
//!     pub complet Message {
//!         state { text: String = "hello fargo".to_owned() }
//!         fn print(&mut self, _ctx, _args) {
//!             Ok(Value::from(self.text.as_str()))
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), FargoError> {
//! let net = Network::new(NetworkConfig::default());
//! let registry = CompletRegistry::new();
//! Message::register(&registry);
//!
//! let everest = Core::builder(&net, "everest").registry(&registry).spawn()?;
//! let acadia = Core::builder(&net, "acadia").registry(&registry).spawn()?;
//!
//! let msg = everest.new_complet("Message", &[])?;
//! msg.move_to("acadia")?;
//! assert_eq!(msg.call("print", &[])?, Value::from("hello fargo"));
//! # everest.stop(); acadia.stop();
//! # Ok(())
//! # }
//! ```

pub use fargo_core as core;
pub use fargo_layout as layout;
pub use fargo_naming as naming;
pub use fargo_script as script;
pub use fargo_shell as shell;
pub use fargo_viz as viz;
pub use fargo_wire as wire;
pub use simnet;

/// The common imports of a FarGo-RS application.
pub mod prelude {
    pub use fargo_core::{
        define_complet, BoundRef, Carrier, Complet, CompletId, CompletRef, CompletRegistry, Core,
        CoreConfig, Ctx, EventPayload, FargoError, MetaRef, RefDescriptor, Relocator,
        RelocatorRegistry, Service, StateValue, TrackingMode, TransportKind, Value,
    };
    pub use fargo_layout::AutoLayout;
    pub use fargo_script::{ScriptEngine, ScriptValue};
    pub use fargo_shell::Shell;
    pub use fargo_viz::LayoutMonitor;
    pub use simnet::{LinkConfig, Network, NetworkConfig, Topology};
}
