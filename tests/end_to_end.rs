//! Full-stack scenario: an application deployed over a two-cluster WAN,
//! administered through the shell, scripted layout rules, and the layout
//! monitor — every crate in one test.

mod common;

use std::time::Duration;

use common::{registry, wait_until};
use fargo::prelude::*;

#[test]
fn whole_system_scenario() {
    // Two LAN clusters joined by a WAN bottleneck (scaled down).
    let topo = Topology::two_clusters(2, 2)
        .with_names(["hq0", "hq1", "edge0", "edge1"])
        .with_config(NetworkConfig {
            time_scale: 0.05,
            ..NetworkConfig::default()
        })
        .build()
        .expect("topology");
    let net = topo.network.clone();
    let reg = registry();
    let cores: Vec<Core> = topo
        .endpoints
        .into_iter()
        .map(|ep| {
            Core::builder(&net, "")
                .endpoint(ep)
                .registry(&reg)
                .spawn()
                .expect("core")
        })
        .collect();
    let hq0 = &cores[0];

    // 1. Deploy the application through the shell.
    let shell = Shell::new(hq0.clone());
    shell
        .exec("new Store at edge0 as inventory")
        .expect("deploy");
    shell
        .exec("call inventory put widgets 42")
        .expect("seed data");
    assert_eq!(
        shell.exec("call inventory get widgets").expect("read"),
        "42"
    );

    // 2. Attach the layout monitor to all cores.
    let monitor =
        LayoutMonitor::attach(hq0.clone(), &["hq0", "hq1", "edge0", "edge1"]).expect("monitor");
    // The shell binds names at its admin core (hq0).
    let inventory = hq0.lookup_stub("inventory").expect("lookup");
    assert!(wait_until(Duration::from_secs(3), || {
        monitor.core_of(inventory.id()) == Some("edge0".into())
    }));

    // 3. Attach an administrator script: if edge0 announces shutdown,
    //    evacuate to hq1.
    let engine = ScriptEngine::new(hq0.clone());
    let _script = engine
        .load(
            "$guarded = %1\n$safe = %2\n\
             on shutdown firedby $c listenAt $guarded do\n\
               move completsIn $c to $safe\n\
             end",
            vec![
                ScriptValue::List(vec![ScriptValue::Str("edge0".into())]),
                ScriptValue::Str("hq1".into()),
            ],
        )
        .expect("script");

    // 4. The app keeps running over the WAN; drag it around by hand from
    //    the monitor (the Figure 4 drag-and-drop).
    monitor.move_complet(inventory.id(), "edge1").expect("drag");
    assert!(cores[3].hosts(inventory.id()));
    assert_eq!(
        inventory
            .call("get", &[Value::from("widgets")])
            .expect("call"),
        Value::I64(42)
    );
    monitor
        .move_complet(inventory.id(), "edge0")
        .expect("drag back");

    // 5. edge0 goes down; the script evacuates; the monitor shows it; the
    //    data survives.
    let dying = cores[2].clone();
    let announcer = std::thread::spawn(move || dying.shutdown(Duration::from_millis(600)));
    assert!(
        wait_until(Duration::from_secs(5), || cores[1].hosts(inventory.id())),
        "script must evacuate inventory to hq1; log: {:?}",
        engine.log_lines()
    );
    // Refresh the reference during the grace window.
    assert_eq!(
        inventory
            .call("get", &[Value::from("widgets")])
            .expect("refresh"),
        Value::I64(42)
    );
    announcer.join().expect("announcer");

    // After edge0 is gone: still answering, and the monitor caught up.
    assert_eq!(
        inventory
            .call("get", &[Value::from("widgets")])
            .expect("post-shutdown"),
        Value::I64(42)
    );
    assert!(wait_until(Duration::from_secs(3), || {
        monitor.core_of(inventory.id()) == Some("hq1".into())
    }));
    assert!(wait_until(Duration::from_secs(3), || {
        monitor.render().contains("edge0 [DOWN]")
    }));

    // 6. The shell still administers what's left.
    let out = shell.exec("whereis inventory").expect("whereis");
    assert!(out.contains("hq1"), "{out}");

    monitor.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn script_performance_rule_with_monitor_watching() {
    // The §4.3 performance rule moving a chatty complet, observed live by
    // the layout monitor.
    let (_net, cores) = common::cluster(3);
    let src = cores[0].new_complet_at("core1", "Store", &[]).unwrap();
    let dst = cores[0].new_complet_at("core2", "Store", &[]).unwrap();
    // src holds a reference to dst and chats through it.
    src.call(
        "put",
        &[
            Value::from("peer"),
            Value::Ref(dst.complet_ref().descriptor()),
        ],
    )
    .unwrap();

    let monitor = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1", "core2"]).unwrap();
    let engine = ScriptEngine::new(cores[0].clone());
    let _script = engine
        .load(
            "$c = %1\non methodInvokeRate(3) from $c[0] to $c[1] do\n move $c[0] to coreOf $c[1]\nend",
            vec![ScriptValue::List(vec![(&src).into(), (&dst).into()])],
        )
        .unwrap();

    // Drive src → dst chatter: `poke` makes src call its stored peer,
    // producing the (src, dst) invocation-rate key the rule watches.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut moved = false;
    while std::time::Instant::now() < deadline {
        let _ = src.call("poke", &[]);
        if cores[2].hosts(src.id()) {
            moved = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        moved,
        "performance rule never co-located; log: {:?}",
        engine.log_lines()
    );
    assert!(wait_until(Duration::from_secs(3), || {
        monitor.core_of(src.id()) == Some("core2".into())
    }));
    monitor.detach();
    common::teardown(&cores);
}
