//! Cross-crate property tests: invariants of movement, relocation
//! semantics, and the scripting front-end under randomised inputs.
//!
//! Randomisation is driven by a seeded SplitMix64 generator so every run
//! exercises the same cases deterministically (no external fuzzing deps).

mod common;

use common::{cluster, teardown};
use fargo::prelude::*;

/// Seeded SplitMix64 generator for deterministic case generation.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn ident(&mut self, max: usize) -> String {
        let len = 1 + self.below(max as u64) as usize;
        (0..len)
            .map(|i| {
                let c = self.below(if i == 0 { 26 } else { 36 });
                if c < 26 {
                    (b'a' + c as u8) as char
                } else {
                    (b'0' + (c - 26) as u8) as char
                }
            })
            .collect()
    }

    /// Arbitrary marshal-safe state payload (bounded depth/width).
    fn payload(&mut self, depth: u32) -> Value {
        let pick = if depth == 0 {
            self.below(6)
        } else {
            self.below(8)
        };
        match pick {
            0 => Value::Null,
            1 => Value::Bool(self.next() & 1 == 0),
            2 => Value::I64(self.next() as i64),
            3 => Value::F64(self.f64_in(-1e9, 1e9)),
            4 => Value::Str(self.ident(16)),
            5 => {
                let len = self.below(48) as usize;
                Value::Bytes((0..len).map(|_| self.next() as u8).collect())
            }
            6 => {
                let len = self.below(6) as usize;
                Value::List((0..len).map(|_| self.payload(depth - 1)).collect())
            }
            _ => {
                let len = self.below(6) as usize;
                Value::Map(
                    (0..len)
                        .map(|_| (self.ident(5), self.payload(depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

/// Movement is state-preserving for arbitrary payloads: whatever tree
/// a complet holds, it holds it identically after relocation.
#[test]
fn movement_preserves_arbitrary_state() {
    let mut gen = Gen(0x11);
    for _case in 0..8 {
        let payload = gen.payload(3);
        let (_net, cores) = cluster(2);
        let store = cores[0].new_complet("Store", &[]).unwrap();
        store
            .call("set_blob", std::slice::from_ref(&payload))
            .unwrap();
        store.move_to("core1").unwrap();
        assert_eq!(store.call("blob", &[]).unwrap(), payload);
        teardown(&cores);
    }
}

/// However a complet wanders, the original reference still reaches it
/// and observes all effects in order (no lost or duplicated calls).
#[test]
fn random_walks_never_lose_the_complet() {
    let mut gen = Gen(0x22);
    for _case in 0..6 {
        let walk: Vec<usize> = (0..1 + gen.below(7))
            .map(|_| gen.below(4) as usize)
            .collect();
        let (_net, cores) = cluster(4);
        let store = cores[0].new_complet("Store", &[]).unwrap();
        let mut expected_ops = 0i64;
        for &hop in &walk {
            store.move_to(&format!("core{hop}")).unwrap();
            store
                .call("put", &[Value::from("k"), Value::I64(expected_ops)])
                .unwrap();
            expected_ops += 1;
        }
        assert_eq!(
            store.call("ops", &[]).unwrap(),
            Value::I64(expected_ops),
            "every call must have landed exactly once"
        );
        let last = cores[*walk.last().unwrap()].clone();
        assert!(last.hosts(store.id()));
        teardown(&cores);
    }
}

/// By-value arguments echo back exactly, whatever their shape — the
/// full marshal→network→unmarshal→remarshal loop is lossless.
#[test]
fn parameter_graphs_echo_losslessly() {
    let mut gen = Gen(0x33);
    for _case in 0..8 {
        let payload = gen.payload(3);
        let (_net, cores) = cluster(2);
        let store = cores[0].new_complet_at("core1", "Store", &[]).unwrap();
        store
            .call("put", &[Value::from("x"), payload.clone()])
            .unwrap();
        assert_eq!(store.call("get", &[Value::from("x")]).unwrap(), payload);
        teardown(&cores);
    }
}

/// The script lexer/parser never panics on arbitrary input.
#[test]
fn script_parser_never_panics() {
    let mut gen = Gen(0x44);
    for _case in 0..64 {
        let len = gen.below(200) as usize;
        let src: String = (0..len)
            .map(|_| {
                // Mix of printable ASCII and some multibyte/control chars.
                match gen.below(20) {
                    0 => '\n',
                    1 => 'λ',
                    2 => '\t',
                    _ => (0x20 + gen.below(0x5f) as u8) as char,
                }
            })
            .collect();
        let _ = fargo::script::parse(&src);
    }
}

/// Valid generated rules always parse, whatever the identifiers.
#[test]
fn generated_rules_parse() {
    let mut gen = Gen(0x55);
    for _case in 0..64 {
        let event = gen.ident(10);
        let var = gen.ident(8);
        let threshold = gen.f64_in(0.0, 1e6);
        let dest = gen.ident(8);
        let src = format!(
            "$x = %1\non {event}({threshold:.2}) firedby ${var} listenAt $x do\n move completsIn ${var} to \"{dest}\"\nend"
        );
        let parsed = fargo::script::parse(&src);
        assert!(parsed.is_ok(), "should parse: {src}\n{parsed:?}");
    }
}

/// Degrading a reference is idempotent and never changes the target.
#[test]
fn degrade_is_idempotent() {
    let mut gen = Gen(0x66);
    for _case in 0..64 {
        let d = RefDescriptor {
            target: CompletId::new(gen.next() as u32, gen.next()),
            target_type: "T".into(),
            relocator: "pull".into(),
            last_known: gen.next() as u32,
        };
        let once = d.degraded();
        let twice = once.degraded();
        assert_eq!(once, twice);
        assert_eq!(once.target, d.target);
        assert_eq!(once.last_known, d.last_known);
        assert!(once.is_link());
    }
}
