//! Cross-crate property tests: invariants of movement, relocation
//! semantics, and the scripting front-end under randomised inputs.

mod common;

use common::{cluster, teardown};
use fargo::prelude::*;
use proptest::prelude::*;

/// Strategy for arbitrary marshal-safe state payloads.
fn arb_payload() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::I64),
        (-1e9f64..1e9).prop_map(Value::F64),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..48).prop_map(Value::Bytes),
    ];
    leaf.prop_recursive(3, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::btree_map("[a-z]{1,5}", inner, 0..6).prop_map(Value::Map),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case spins up a live cluster
        .. ProptestConfig::default()
    })]

    /// Movement is state-preserving for arbitrary payloads: whatever tree
    /// a complet holds, it holds it identically after relocation.
    #[test]
    fn prop_movement_preserves_arbitrary_state(payload in arb_payload()) {
        let (_net, cores) = cluster(2);
        let store = cores[0].new_complet("Store", &[]).unwrap();
        store.call("set_blob", &[payload.clone()]).unwrap();
        store.move_to("core1").unwrap();
        prop_assert_eq!(store.call("blob", &[]).unwrap(), payload);
        teardown(&cores);
    }

    /// However a complet wanders, the original reference still reaches it
    /// and observes all effects in order (no lost or duplicated calls).
    #[test]
    fn prop_random_walks_never_lose_the_complet(
        walk in proptest::collection::vec(0usize..4, 1..8)
    ) {
        let (_net, cores) = cluster(4);
        let store = cores[0].new_complet("Store", &[]).unwrap();
        let mut expected_ops = 0i64;
        for &hop in &walk {
            store.move_to(&format!("core{hop}")).unwrap();
            store.call("put", &[Value::from("k"), Value::I64(expected_ops)]).unwrap();
            expected_ops += 1;
        }
        prop_assert_eq!(
            store.call("ops", &[]).unwrap(),
            Value::I64(expected_ops),
            "every call must have landed exactly once"
        );
        let last = cores[*walk.last().unwrap()].clone();
        prop_assert!(last.hosts(store.id()));
        teardown(&cores);
    }

    /// By-value arguments echo back exactly, whatever their shape — the
    /// full marshal→network→unmarshal→remarshal loop is lossless.
    #[test]
    fn prop_parameter_graphs_echo_losslessly(payload in arb_payload()) {
        let (_net, cores) = cluster(2);
        let store = cores[0].new_complet_at("core1", "Store", &[]).unwrap();
        store.call("put", &[Value::from("x"), payload.clone()]).unwrap();
        prop_assert_eq!(store.call("get", &[Value::from("x")]).unwrap(), payload);
        teardown(&cores);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// The script lexer/parser never panics on arbitrary input.
    #[test]
    fn prop_script_parser_never_panics(src in "\\PC{0,200}") {
        let _ = fargo::script::parse(&src);
    }

    /// Valid generated rules always parse, whatever the identifiers.
    #[test]
    fn prop_generated_rules_parse(
        event in "[a-zA-Z][a-zA-Z0-9]{0,10}",
        var in "[a-z][a-z0-9]{0,8}",
        threshold in 0.0f64..1e6,
        dest in "[a-z][a-z0-9]{0,8}",
    ) {
        let src = format!(
            "$x = %1\non {event}({threshold:.2}) firedby ${var} listenAt $x do\n move completsIn ${var} to \"{dest}\"\nend"
        );
        let parsed = fargo::script::parse(&src);
        prop_assert!(parsed.is_ok(), "should parse: {src}\n{parsed:?}");
    }

    /// Degrading a reference is idempotent and never changes the target.
    #[test]
    fn prop_degrade_is_idempotent(seq in any::<u64>(), origin in any::<u32>(), last in any::<u32>()) {
        let d = RefDescriptor {
            target: CompletId::new(origin, seq),
            target_type: "T".into(),
            relocator: "pull".into(),
            last_known: last,
        };
        let once = d.degraded();
        let twice = once.degraded();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once.target, d.target);
        prop_assert_eq!(once.last_known, d.last_known);
        prop_assert!(once.is_link());
    }
}
