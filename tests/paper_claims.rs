//! A checklist of the paper's explicit claims, each asserted against the
//! running system. Section numbers refer to the ICDCS'99 paper.

mod common;

use std::time::Duration;

use common::{cluster, cluster_with_config, registry, teardown, wait_until};
use fargo::prelude::*;

/// §3.1: "the stub's interface can be nearly identical to that of the
/// target's anchor" — invocation syntax does not change with locality.
#[test]
fn claim_invocation_is_location_transparent() {
    let (_net, cores) = cluster(3);
    let store = cores[0].new_complet("Store", &[]).unwrap();
    store
        .call("put", &[Value::from("k"), Value::from("v1")])
        .unwrap();
    for dest in ["core1", "core2", "core0"] {
        store.move_to(dest).unwrap();
        // Identical call, wherever it lives.
        assert_eq!(
            store.call("get", &[Value::from("k")]).unwrap(),
            Value::from("v1")
        );
    }
    teardown(&cores);
}

/// §3.1: "only one tracker per target complet in a single Core, although
/// the number of complet references … can be large."
#[test]
fn claim_one_tracker_per_target_per_core() {
    let (_net, cores) = cluster(2);
    let target = cores[0].new_complet_at("core1", "Store", &[]).unwrap();
    for _ in 0..64 {
        let stub = cores[0].stub(target.complet_ref().degraded());
        stub.call("ops", &[]).unwrap();
    }
    let trackers_for_target = cores[0]
        .tracker_snapshot()
        .iter()
        .filter(|t| t.id == target.id())
        .count();
    assert_eq!(trackers_for_target, 1);
    teardown(&cores);
}

/// §3.1: "while returning from each invocation, all the trackers in the
/// chain are set to point directly to the target's location."
#[test]
fn claim_chain_shortening_on_return() {
    let (net, cores) = cluster(4);
    let store = cores[0].new_complet("Store", &[]).unwrap();
    for dest in ["core1", "core2", "core3"] {
        store.move_to(dest).unwrap();
    }
    store.call("ops", &[]).unwrap(); // walks and shortens
    let before = net.link_stats(cores[1].node(), cores[2].node()).messages;
    store.call("ops", &[]).unwrap(); // must go direct now
    let after = net.link_stats(cores[1].node(), cores[2].node()).messages;
    assert_eq!(after, before, "no traffic through old chain links");
    teardown(&cores);
}

/// §3.1: "parameters are always passed by value along a complet
/// reference, except for complet parameters, which are passed by
/// (complet) reference" — and passed references degrade to `link`.
#[test]
fn claim_parameter_passing_semantics() {
    let (_net, cores) = cluster(2);
    let a = cores[0].new_complet("Store", &[]).unwrap();
    let b = cores[0].new_complet_at("core1", "Store", &[]).unwrap();

    // By-value: a mutation of the sent graph at the receiver cannot be
    // observed by the sender's copy.
    let graph = Value::list([Value::from(1i64), Value::from(2i64)]);
    b.call("put", &[Value::from("g"), graph.clone()]).unwrap();
    assert_eq!(b.call("get", &[Value::from("g")]).unwrap(), graph);

    // By-reference for anchors: pass `a`'s anchor to `b`; `b` stores the
    // reference, not a copy of `a` — the reference must be degraded.
    a.meta().set_relocator("pull").unwrap();
    b.call(
        "put",
        &[Value::from("ref"), Value::Ref(a.complet_ref().descriptor())],
    )
    .unwrap();
    let stored = b.call("get", &[Value::from("ref")]).unwrap();
    let stored_ref = stored.as_ref_desc().expect("a reference, not a copy");
    assert_eq!(stored_ref.target, a.id(), "same complet, by reference");
    assert_eq!(stored_ref.relocator, "link", "degraded on crossing (§3.1)");
    teardown(&cores);
}

/// §3.2: reference semantics evolve at runtime through the meta
/// reference, "without changing the invocation syntax".
#[test]
fn claim_reflective_retyping() {
    let (_net, cores) = cluster(2);
    let store = cores[0].new_complet("Store", &[]).unwrap();
    let meta = store.meta();
    assert_eq!(meta.relocator_name(), "link");
    meta.set_relocator("duplicate").unwrap();
    assert_eq!(meta.relocator_name(), "duplicate");
    // Invocation syntax unchanged after retyping.
    store.call("ops", &[]).unwrap();
    teardown(&cores);
}

/// §3.3: "all complets that should move as a result of the same movement
/// request are part of the same stream, thus only a single inter-Core
/// message is involved."
#[test]
fn claim_single_message_comovement() {
    // Naming off: the sharded location service adds constant-size
    // publish notifies that would skew this raw message count.
    let (net, cores) = cluster_with_config(2, CoreConfig::default().with_naming_shards(false));
    // Build a pull chain: root -> d1 -> d2 (refs stored in complet state).
    let root = cores[0].new_complet("Store", &[]).unwrap();
    let d1 = cores[0].new_complet("Store", &[]).unwrap();
    let d2 = cores[0].new_complet("Store", &[]).unwrap();
    for (holder, dep) in [(&root, &d1), (&d1, &d2)] {
        // Passed references arrive degraded to link (§3.1); the holder
        // then retypes its own reference to pull.
        holder
            .call(
                "put",
                &[
                    Value::from("dep"),
                    Value::Ref(dep.complet_ref().descriptor()),
                ],
            )
            .unwrap();
        holder
            .call("retype", &[Value::from("dep"), Value::from("pull")])
            .unwrap();
    }
    let before = net.link_stats(cores[0].node(), cores[1].node()).messages;
    root.move_to("core1").unwrap();
    let requests = net.link_stats(cores[0].node(), cores[1].node()).messages - before;
    // The whole transitively pulled closure ships in the single
    // MovePrepare; the only other message is the constant-size
    // MoveCommit of the two-phase transfer — the count is independent
    // of how many complets co-move.
    assert_eq!(
        requests, 2,
        "transitively pulled closure in one data message"
    );
    for c in [&root, &d1, &d2] {
        assert!(cores[1].hosts(c.id()));
    }
    teardown(&cores);
}

/// §3.3: weak mobility — four movement callbacks and continuations exist
/// (asserted in depth in the core crate; here: continuation runs).
#[test]
fn claim_call_with_continuation() {
    let (_net, cores) = cluster(2);
    let store = cores[0].new_complet("Store", &[]).unwrap();
    store
        .move_with(
            "core1",
            "put",
            vec![Value::from("arrived"), Value::from("yes")],
        )
        .unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        store.call("get", &[Value::from("arrived")]).unwrap() == Value::from("yes")
    }));
    teardown(&cores);
}

/// §4.1: "the Core monitors only resources that some application has
/// interest in, minimizing system overhead."
#[test]
fn claim_interest_driven_monitoring() {
    let (_net, cores) = cluster(1);
    let core = &cores[0];
    assert_eq!(core.monitor().active_services(), 0);
    core.profile_start(Service::CompletLoad, Duration::from_millis(10));
    assert_eq!(core.monitor().active_services(), 1);
    core.profile_stop(&Service::CompletLoad);
    assert_eq!(core.monitor().active_services(), 0);
    teardown(&cores);
}

/// §4.2: "every complet relocation fires a completDepartured event at the
/// source Core and a completArrived event at the destination Core."
#[test]
fn claim_relocation_fires_layout_events() {
    let (_net, cores) = cluster(2);
    let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
    for (core, selector) in [
        (&cores[0], "completDeparted"),
        (&cores[1], "completArrived"),
    ] {
        let s = seen.clone();
        let sel = selector.to_owned();
        core.on_event(
            selector,
            None,
            true,
            std::sync::Arc::new(move |_| s.lock().unwrap().push(sel.clone())),
        );
    }
    let store = cores[0].new_complet("Store", &[]).unwrap();
    store.move_to("core1").unwrap();
    assert!(wait_until(Duration::from_secs(3), || seen
        .lock()
        .unwrap()
        .len()
        >= 2));
    let events = seen.lock().unwrap().clone();
    assert!(events.contains(&"completDeparted".to_owned()));
    assert!(events.contains(&"completArrived".to_owned()));
    teardown(&cores);
}

/// §2: instantiation follows the local model — `new_complet` is the
/// `new Message_()` of Figure 3, and the same registry ("classpath")
/// serves every Core, which is what weak code mobility presumes.
#[test]
fn claim_shared_registry_constructs_everywhere() {
    let (net, cores) = cluster(3);
    let reg = registry();
    let extra = Core::builder(&net, "late-joiner")
        .registry(&reg)
        .spawn()
        .unwrap();
    // Even a Core added later can host the moved complet, because the
    // "class" is available through the shared registry.
    let store = cores[0].new_complet("Store", &[]).unwrap();
    store
        .call("put", &[Value::from("x"), Value::I64(1)])
        .unwrap();
    store.move_to("late-joiner").unwrap();
    assert!(extra.hosts(store.id()));
    assert_eq!(
        store.call("get", &[Value::from("x")]).unwrap(),
        Value::I64(1)
    );
    extra.stop();
    teardown(&cores);
}
