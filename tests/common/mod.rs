//! Shared fixtures for workspace-level integration tests.

use std::time::Duration;

use fargo::prelude::*;

define_complet! {
    /// General-purpose test complet: keyed storage plus counters.
    pub complet Store {
        state {
            data: Value = Value::Map(std::collections::BTreeMap::new()),
            ops: i64 = 0,
        }
        fn put(&mut self, _ctx, args) {
            let k = args.first().and_then(Value::as_str)
                .ok_or_else(|| FargoError::InvalidArgument("key".into()))?
                .to_owned();
            let v = args.get(1).cloned().unwrap_or(Value::Null);
            self.ops += 1;
            self.data.insert(k, v);
            Ok(Value::Null)
        }
        fn get(&mut self, _ctx, args) {
            let k = args.first().and_then(Value::as_str).unwrap_or("");
            self.ops += 1;
            Ok(self.data.get(k).cloned().unwrap_or(Value::Null))
        }
        fn ops(&mut self, _ctx, _args) {
            Ok(Value::I64(self.ops))
        }
        fn retype(&mut self, ctx, args) {
            // Retype every reference stored under a key: the receiving
            // complet owns its references' relocation semantics (incoming
            // refs arrive degraded to link, per §3.1).
            let key = args.first().and_then(Value::as_str)
                .ok_or_else(|| FargoError::InvalidArgument("key".into()))?
                .to_owned();
            let relocator = args.get(1).and_then(Value::as_str).unwrap_or("link").to_owned();
            ctx.core().relocators().resolve(&relocator)?;
            if let Some(v) = self.data.get_mut(&key) {
                let old = std::mem::take(v);
                *v = old.transform_refs(&mut |mut r| {
                    r.relocator = relocator.clone();
                    r
                });
            }
            Ok(Value::Null)
        }
        fn poke(&mut self, ctx, _args) {
            // Call the complet stored under "peer" — produces the
            // (self, peer) invocation-rate key the performance rule
            // watches.
            let peer = self.data.get("peer")
                .and_then(Value::as_ref_desc)
                .cloned()
                .ok_or_else(|| FargoError::App("no peer stored".into()))?;
            ctx.call(&CompletRef::from_descriptor(peer), "ops", &[])
        }
        fn set_blob(&mut self, _ctx, args) {
            self.data.insert("blob", args.first().cloned().unwrap_or(Value::Null));
            Ok(Value::Null)
        }
        fn blob(&mut self, _ctx, _args) {
            Ok(self.data.get("blob").cloned().unwrap_or(Value::Null))
        }
    }
}

/// Registry with the shared test types.
pub fn registry() -> CompletRegistry {
    let reg = CompletRegistry::new();
    Store::register(&reg);
    reg
}

/// `n` cores on instantaneous links.
pub fn cluster(n: usize) -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .spawn()
                .expect("spawn core")
        })
        .collect();
    (net, cores)
}

/// `n` cores on instantaneous links, with an explicit Core config.
#[allow(dead_code)] // not every test binary that includes common/ uses it
pub fn cluster_with_config(n: usize, config: CoreConfig) -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(config.clone())
                .spawn()
                .expect("spawn core")
        })
        .collect();
    (net, cores)
}

/// Polls `cond` until it holds or `timeout` expires.
#[allow(dead_code)] // not every test binary that includes common/ uses it
pub fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// Stops all cores.
pub fn teardown(cores: &[Core]) {
    for c in cores {
        c.stop();
    }
}
