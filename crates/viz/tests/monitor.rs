//! Layout-monitor tests: live model updates, rendering, and admin ops.

use std::time::{Duration, Instant};

use fargo_core::{define_complet, CompletRegistry, Core, Value};
use fargo_viz::LayoutMonitor;
use simnet::{LinkConfig, Network, NetworkConfig};

define_complet! {
    pub complet Message {
        state { text: String = "hi".to_owned() }
        fn print(&mut self, _ctx, _args) {
            Ok(Value::from(self.text.as_str()))
        }
    }
}

fn setup() -> Vec<Core> {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    });
    let reg = CompletRegistry::new();
    Message::register(&reg);
    (0..3)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .spawn()
                .unwrap()
        })
        .collect()
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn seeds_with_existing_layout() {
    let cores = setup();
    let a = cores[0].new_complet("Message", &[]).unwrap();
    let b = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1", "core2"]).unwrap();
    let snap = mon.snapshot();
    assert!(snap["core0"].iter().any(|(id, _)| *id == a.id()));
    assert!(snap["core1"].iter().any(|(id, _)| *id == b.id()));
    assert!(snap["core2"].is_empty());
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn tracks_movement_live() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1", "core2"]).unwrap();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        mon.core_of(msg.id()) == Some("core0".into())
    }));
    msg.move_to("core2").unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        mon.core_of(msg.id()) == Some("core2".into())
    }));
    // The event ticker saw the departure and arrival.
    assert!(wait_until(Duration::from_secs(2), || {
        let log = mon.event_log();
        log.iter().any(|l| l.contains("departed"))
            && log.iter().any(|l| l.contains("arrived at core2"))
    }));
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn render_shows_boxes_and_events() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1"]).unwrap();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        mon.core_of(msg.id()).is_some()
    }));
    let frame = mon.render();
    assert!(frame.contains("core0"));
    assert!(frame.contains("Message"));
    assert!(frame.contains("events"));
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn telemetry_pane_shows_invocation_counters() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1"]).unwrap();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.call("print", &[]).unwrap();
    let frame = mon.render_with_telemetry();
    assert!(frame.contains("telemetry"), "{frame}");
    assert!(
        frame.contains("fargo_invoke_total{core=core0} 1"),
        "{frame}"
    );
    assert!(
        !frame.contains("fargo_chain_shortenings_total"),
        "zero counters must be elided: {frame}"
    );
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn slow_pane_shows_retained_tail_with_breakdown() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1"]).unwrap();
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    msg.call("print", &[]).unwrap();
    let frame = mon.render_with_slow();
    assert!(frame.contains("slow requests"), "{frame}");
    assert!(frame.contains("invoke Message.print"), "{frame}");
    assert!(
        frame.contains("@core0"),
        "retained span snapshot expected in the pane: {frame}"
    );
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn drag_and_drop_moves_complets() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1"]).unwrap();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    mon.move_complet(msg.id(), "core1").unwrap();
    assert!(cores[1].hosts(msg.id()));
    assert!(wait_until(Duration::from_secs(3), || {
        mon.core_of(msg.id()) == Some("core1".into())
    }));
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn reference_inspection_and_retype() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0"]).unwrap();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    cores[0].bind("m", msg.complet_ref());
    assert_eq!(mon.reference_type("m").unwrap(), "link");
    mon.set_reference_type("m", "pull").unwrap();
    assert_eq!(mon.reference_type("m").unwrap(), "pull");
    assert!(mon.reference_type("ghost").is_err());
    assert!(!mon.tracker_lines().is_empty());
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn shutdown_marks_cores_down() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1"]).unwrap();
    cores[1].shutdown(Duration::from_millis(100));
    assert!(wait_until(Duration::from_secs(3), || {
        mon.render().contains("core1 [DOWN]")
    }));
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn remote_reference_inspection_shows_chains() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1", "core2"]).unwrap();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    // core1 holds a forwarding tracker towards core2 — visible remotely.
    let lines = mon.tracker_lines_at("core1").unwrap();
    assert!(
        lines.iter().any(|l| l.contains("-> core2")),
        "expected a chain link at core1: {lines:?}"
    );
    // core2 holds the local tracker.
    let lines = mon.tracker_lines_at("core2").unwrap();
    assert!(lines.iter().any(|l| l.contains("local")), "{lines:?}");
    assert!(mon.tracker_lines_at("atlantis").is_err());
    mon.detach();
    for c in &cores {
        c.stop();
    }
}

#[test]
fn heavy_hitters_pane_ranks_accounted_load() {
    let cores = setup();
    let mon = LayoutMonitor::attach(cores[0].clone(), &["core0", "core1"]).unwrap();
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    for _ in 0..4 {
        msg.call("print", &[]).unwrap();
    }
    let lines = mon.top_lines(5);
    assert!(
        lines
            .iter()
            .any(|l| l.contains("c1.1") && l.contains("@core1")),
        "invoked complet must rank: {lines:?}"
    );
    let frame = mon.render_with_top(5);
    assert!(frame.contains("heavy hitters"), "{frame}");
    assert!(frame.contains("invokes="), "{frame}");
    mon.detach();
    for c in &cores {
        c.stop();
    }
}
