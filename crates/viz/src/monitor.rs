//! The live layout model and its textual renderer.

use std::collections::BTreeMap;
use std::sync::Arc;

use fargo_core::{
    CompletId, Core, EventPayload, FargoError, MetricValue, RemoteSubscription, Result,
};
use parking_lot::Mutex;

/// A point-in-time copy of the monitor's layout model.
pub type LayoutSnapshot = BTreeMap<String, Vec<(CompletId, String)>>;

#[derive(Default)]
struct Model {
    /// core name -> complets (id, type) resident there.
    layout: LayoutSnapshot,
    /// Cores known to have shut down.
    down: Vec<String>,
    /// Recent event lines, newest last (bounded).
    events: Vec<String>,
}

impl Model {
    fn place(&mut self, core: &str, id: CompletId, ty: &str) {
        for complets in self.layout.values_mut() {
            complets.retain(|(cid, _)| *cid != id);
        }
        self.layout
            .entry(core.to_owned())
            .or_default()
            .push((id, ty.to_owned()));
        self.layout.get_mut(core).expect("just inserted").sort();
    }

    fn log(&mut self, line: String) {
        self.events.push(line);
        let overflow = self.events.len().saturating_sub(64);
        if overflow > 0 {
            self.events.drain(..overflow);
        }
    }
}

/// A live, event-driven view of complet layout across a set of Cores —
/// the paper's graphical monitor, textual edition.
pub struct LayoutMonitor {
    core: Core,
    model: Arc<Mutex<Model>>,
    subs: Vec<RemoteSubscription>,
}

impl LayoutMonitor {
    /// Connects to the given Cores: seeds the model with their current
    /// complets and subscribes to their layout events so the view stays
    /// current as complets move.
    ///
    /// # Errors
    ///
    /// Fails if any named Core is unknown or unreachable.
    pub fn attach(core: Core, cores: &[&str]) -> Result<LayoutMonitor> {
        let model = Arc::new(Mutex::new(Model::default()));
        // Seed with the current layout.
        {
            let mut m = model.lock();
            for name in cores {
                let items = core.complets_at(name)?;
                m.layout.insert((*name).to_owned(), {
                    let mut v = items;
                    v.sort();
                    v
                });
            }
        }
        // Subscribe to layout events at every inspected Core.
        let mut subs = Vec::new();
        for name in cores {
            for selector in ["completArrived", "completDeparted", "coreShutdown"] {
                let model2 = model.clone();
                let core2 = core.clone();
                let sub = core.subscribe_at(
                    name,
                    selector,
                    None,
                    true,
                    Arc::new(move |e: &EventPayload| {
                        let mut m = model2.lock();
                        match e {
                            EventPayload::CompletArrived {
                                id,
                                type_name,
                                core,
                            } => {
                                let cname = core2.core_name_of(*core);
                                m.place(&cname, *id, type_name);
                                m.log(format!("{id} arrived at {cname}"));
                            }
                            EventPayload::CompletDeparted { id, dest, core, .. } => {
                                let from = core2.core_name_of(*core);
                                let to = core2.core_name_of(*dest);
                                // Arrival events place it; departure only
                                // logs (avoids races with the arrival).
                                let _ = (from.as_str(), id);
                                m.log(format!("{id} departed {from} -> {to}"));
                            }
                            EventPayload::CoreShutdown { core } => {
                                let cname = core2.core_name_of(*core);
                                if !m.down.contains(&cname) {
                                    m.down.push(cname.clone());
                                }
                                m.log(format!("{cname} shut down"));
                            }
                            EventPayload::MoveFailed {
                                id, dest, error, ..
                            } => {
                                let to = core2.core_name_of(*dest);
                                m.log(format!("{id} failed to reach {to}: {error}"));
                            }
                            EventPayload::Profile { .. } => {}
                        }
                    }),
                )?;
                subs.push(sub);
            }
        }
        Ok(LayoutMonitor { core, model, subs })
    }

    /// A copy of the current layout model.
    pub fn snapshot(&self) -> LayoutSnapshot {
        self.model.lock().layout.clone()
    }

    /// Recent event lines, oldest first.
    pub fn event_log(&self) -> Vec<String> {
        self.model.lock().events.clone()
    }

    /// The Core currently showing a complet, per the model.
    pub fn core_of(&self, id: CompletId) -> Option<String> {
        let m = self.model.lock();
        m.layout
            .iter()
            .find(|(_, cs)| cs.iter().any(|(cid, _)| *cid == id))
            .map(|(name, _)| name.clone())
    }

    /// Drag-and-drop: relocate a complet from the monitor.
    ///
    /// # Errors
    ///
    /// Propagates movement failures.
    pub fn move_complet(&self, id: CompletId, dest: &str) -> Result<()> {
        self.core.move_complet(id, dest, None)
    }

    /// Inspect a reference's relocator (the monitor's reference
    /// properties dialog).
    ///
    /// # Errors
    ///
    /// Fails when the name is unbound at the attached Core.
    pub fn reference_type(&self, bound_name: &str) -> Result<String> {
        self.core
            .lookup(bound_name)
            .map(|r| r.relocator())
            .ok_or_else(|| FargoError::NameNotBound(bound_name.to_owned()))
    }

    /// Retype a bound reference (the monitor's "change reference type").
    ///
    /// # Errors
    ///
    /// Fails when the name is unbound or the relocator unknown.
    pub fn set_reference_type(&self, bound_name: &str, relocator: &str) -> Result<()> {
        let r = self
            .core
            .lookup(bound_name)
            .ok_or_else(|| FargoError::NameNotBound(bound_name.to_owned()))?;
        self.core.meta_ref(&r).set_relocator(relocator)?;
        self.core.bind(bound_name, &r);
        Ok(())
    }

    /// Renders the current model as a text frame: one box per Core with
    /// its complets, followed by the recent event ticker.
    pub fn render(&self) -> String {
        let m = self.model.lock();
        let mut out = String::new();
        out.push_str("== FarGo layout monitor ==\n");
        for (core, complets) in &m.layout {
            let state = if m.down.contains(core) { " [DOWN]" } else { "" };
            out.push_str(&format!("+-- {core}{state} "));
            out.push_str(&"-".repeat(34usize.saturating_sub(core.len())));
            out.push('\n');
            if complets.is_empty() {
                out.push_str("|   (empty)\n");
            }
            for (id, ty) in complets {
                out.push_str(&format!("|   {id:<10} {ty}\n"));
            }
        }
        out.push_str("+--- events ");
        out.push_str(&"-".repeat(28));
        out.push('\n');
        for line in m.events.iter().rev().take(8).rev() {
            out.push_str(&format!("|   {line}\n"));
        }
        out
    }

    /// One line per non-idle metric series of the attached Core's
    /// registry (shared registries show every Core) — the monitor's
    /// telemetry pane. Zero-valued counters and empty histograms are
    /// elided so the pane stays readable.
    pub fn telemetry_lines(&self) -> Vec<String> {
        self.core.refresh_link_metrics();
        let mut lines = Vec::new();
        for s in self.core.telemetry().snapshot() {
            let value = match s.value {
                MetricValue::Counter(0) => continue,
                MetricValue::Histogram { count: 0, .. } => continue,
                MetricValue::Counter(v) => v.to_string(),
                MetricValue::Gauge(v) => format!("{v:.1}"),
                MetricValue::Histogram { sum, count, .. } => {
                    format!(
                        "count={count} sum={sum} avg={:.1}",
                        sum as f64 / count as f64
                    )
                }
            };
            let labels: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
            let label_str = if labels.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", labels.join(","))
            };
            lines.push(format!("{}{label_str} {value}", s.name));
        }
        lines
    }

    /// The layout frame with the telemetry pane appended.
    pub fn render_with_telemetry(&self) -> String {
        let mut out = self.render();
        out.push_str("+--- telemetry ");
        out.push_str(&"-".repeat(25));
        out.push('\n');
        for line in self.telemetry_lines() {
            out.push_str(&format!("|   {line}\n"));
        }
        out
    }

    /// The tail observatory pane: the slowest requests the attached Core
    /// retained, each with its per-hop span breakdown, one line per row.
    pub fn slow_lines(&self) -> Vec<String> {
        let records = self.core.slow_records();
        fargo_core::render_slow_log(&records, true)
            .lines()
            .map(str::to_owned)
            .collect()
    }

    /// The layout frame with the slow-request pane appended — the
    /// monitor view for chasing tail latency.
    pub fn render_with_slow(&self) -> String {
        let mut out = self.render();
        out.push_str("+--- slow requests ");
        out.push_str(&"-".repeat(21));
        out.push('\n');
        for line in self.slow_lines() {
            out.push_str(&format!("|   {line}\n"));
        }
        out
    }

    /// The heavy-hitters pane: the cluster's heaviest complets by
    /// accounted load (exec µs + invokes), one line per row, heaviest
    /// first.
    pub fn top_lines(&self, n: usize) -> Vec<String> {
        let rows = self.core.collect_top(n);
        if rows.is_empty() {
            return vec!["(no accounting data)".to_owned()];
        }
        rows.into_iter()
            .map(|(core, r)| {
                let id = CompletId::new(r.key.0, r.key.1);
                format!(
                    "{id} @{core} load={} invokes={} exec_us={} bytes={}/{}",
                    r.load, r.invokes, r.exec_us, r.bytes_in, r.bytes_out
                )
            })
            .collect()
    }

    /// The layout frame with the heavy-hitters pane appended — the
    /// monitor view for spotting load imbalance before it hurts.
    pub fn render_with_top(&self, n: usize) -> String {
        let mut out = self.render();
        out.push_str("+--- heavy hitters ");
        out.push_str(&"-".repeat(21));
        out.push('\n');
        for line in self.top_lines(n) {
            out.push_str(&format!("|   {line}\n"));
        }
        out
    }

    /// Tracker-table view of the attached Core (reference inspection).
    pub fn tracker_lines(&self) -> Vec<String> {
        self.tracker_lines_at(self.core.name()).unwrap_or_default()
    }

    /// Tracker-table view of *any* inspected Core — the Figure 4 pane
    /// that shows complet references wherever they are held.
    ///
    /// # Errors
    ///
    /// Fails when the Core is unknown or unreachable.
    pub fn tracker_lines_at(&self, core_name: &str) -> Result<Vec<String>> {
        Ok(self
            .core
            .trackers_at(core_name)?
            .into_iter()
            .map(|(id, fwd, hits)| {
                let dir = match fwd {
                    None => "local".to_owned(),
                    Some(n) => format!("-> {}", self.core.core_name_of(n)),
                };
                format!("{id} {dir} hits={hits}")
            })
            .collect())
    }

    /// Disconnects from the inspected Cores.
    pub fn detach(self) {
        for s in self.subs {
            s.cancel();
        }
    }
}

impl std::fmt::Debug for LayoutMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayoutMonitor")
            .field("cores", &self.model.lock().layout.len())
            .finish()
    }
}
