//! # fargo-viz — the layout monitor
//!
//! The paper's graphical monitor (Figure 4) connects to multiple Cores,
//! shows in real time which complets reside in which Cores (listening to
//! layout events at the inspected Cores), and lets the administrator move
//! complets and inspect/retype references.
//!
//! This crate reproduces the monitor's *system-facing* behaviour for a
//! headless environment: the same live, event-driven layout model and the
//! same manipulation operations, rendered as text frames instead of
//! pixels (see DESIGN.md for the substitution rationale).
//!
//! ```
//! # use fargo_core::{Core, CompletRegistry};
//! # use simnet::{Network, NetworkConfig};
//! use fargo_viz::LayoutMonitor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let net = Network::new(NetworkConfig::default());
//! # let registry = CompletRegistry::new();
//! # let core = Core::builder(&net, "everest").registry(&registry).spawn()?;
//! let monitor = LayoutMonitor::attach(core.clone(), &["everest"])?;
//! let frame = monitor.render();
//! assert!(frame.contains("everest"));
//! # monitor.detach(); core.stop();
//! # Ok(())
//! # }
//! ```

mod monitor;
mod observatory;

pub use monitor::{LayoutMonitor, LayoutSnapshot};
pub use observatory::{plan_overlay, render_state, state_to_dot, Observatory};
