//! The layout observatory pane: renders reconstructed layout history
//! (placement, inter-complet reference graph, tracker-chain topology)
//! from the flight-recorder journal, as ASCII frames and DOT export.
//!
//! Unlike [`LayoutMonitor`](crate::LayoutMonitor), which follows *live*
//! events, the observatory works entirely from the merged cluster-wide
//! journal timeline, so it can show the layout as it was at any HLC
//! instant — including states no monitor was attached to witness.

use fargo_core::{Core, Hlc, LayoutHistory, LayoutState};
use fargo_layout::LayoutPlan;

/// A journal-backed view of layout history across the whole cluster.
pub struct Observatory {
    core: Core,
}

impl Observatory {
    /// Attaches the observatory to any Core of the cluster (the journal
    /// is collected from every reachable peer on each query).
    pub fn attach(core: Core) -> Observatory {
        Observatory { core }
    }

    /// The merged cluster-wide history (one journal collection).
    pub fn history(&self) -> LayoutHistory {
        self.core.layout_history()
    }

    /// ASCII frame of the layout at `at` (or the final journaled state
    /// when `None`).
    pub fn render_at(&self, at: Option<Hlc>) -> String {
        let history = self.history();
        let state = match at {
            Some(h) => history.at(h),
            None => history.final_state(),
        };
        let header = match at {
            Some(h) => format!("== layout observatory @ {h} ==\n"),
            None => "== layout observatory (latest) ==\n".to_owned(),
        };
        let core = self.core.clone();
        header + &render_state(&state, |n| core.core_name_of(n))
    }

    /// DOT (Graphviz) export of the layout at `at`: Cores as clusters,
    /// complets as nodes, reference edges solid, tracker forwards dashed.
    pub fn render_dot(&self, at: Option<Hlc>) -> String {
        let history = self.history();
        let state = match at {
            Some(h) => history.at(h),
            None => history.final_state(),
        };
        let core = self.core.clone();
        state_to_dot(&state, |n| core.core_name_of(n))
    }

    /// The latest ASCII frame with an adaptive layout plan drawn over
    /// it: below the placement boxes, one arrow line per pending move,
    /// so an operator can eyeball what the planner intends before (or
    /// while) the executor drains it.
    pub fn render_with_plan(&self, plan: &LayoutPlan) -> String {
        let core = self.core.clone();
        self.render_at(None) + &plan_overlay(plan, |n| core.core_name_of(n))
    }

    /// One line per detected anomaly in the full history, judged with the
    /// attached Core's configured thresholds.
    pub fn anomaly_lines(&self) -> Vec<String> {
        let thresholds = self.core.config().anomaly_thresholds();
        self.history()
            .anomalies_with(&thresholds)
            .into_iter()
            .map(|a| a.to_string())
            .collect()
    }

    /// The last `n` merged journal events, oldest first.
    pub fn timeline_lines(&self, n: usize) -> Vec<String> {
        let events = self.history().events().to_vec();
        let skip = events.len().saturating_sub(n);
        events[skip..].iter().map(|e| e.to_string()).collect()
    }
}

impl std::fmt::Debug for Observatory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Observatory")
            .field("core", &self.core.name())
            .finish()
    }
}

/// Renders a reconstructed [`LayoutState`] as an ASCII frame: one box per
/// Core holding complets, then reference edges, then tracker chains.
pub fn render_state(state: &LayoutState, name_of: impl Fn(u32) -> String) -> String {
    let mut out = String::new();
    let mut by_core: std::collections::BTreeMap<u32, Vec<&str>> = std::collections::BTreeMap::new();
    for (id, node) in &state.placement {
        by_core.entry(*node).or_default().push(id);
    }
    if by_core.is_empty() {
        out.push_str("(no complets placed)\n");
    }
    for (node, ids) in &by_core {
        let name = name_of(*node);
        out.push_str(&format!("+-- {name} "));
        out.push_str(&"-".repeat(34usize.saturating_sub(name.len())));
        out.push('\n');
        for id in ids {
            out.push_str(&format!("|   {id}\n"));
        }
    }
    if !state.refs.is_empty() {
        out.push_str("+--- references ");
        out.push_str(&"-".repeat(24));
        out.push('\n');
        for (src, dst, rel) in &state.refs {
            out.push_str(&format!("|   {src} -{rel}-> {dst}\n"));
        }
    }
    let forwards: Vec<String> = state
        .trackers
        .iter()
        .filter_map(|((node, complet), target)| {
            target.map(|t| format!("|   {complet}: {} -> {}", name_of(*node), name_of(t)))
        })
        .collect();
    if !forwards.is_empty() {
        out.push_str("+--- tracker chains ");
        out.push_str(&"-".repeat(20));
        out.push('\n');
        for line in forwards {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Renders a [`LayoutPlan`] as an overlay section matching the frame
/// style of [`render_state`]: the predicted cost delta, then one arrow
/// per step.
pub fn plan_overlay(plan: &LayoutPlan, name_of: impl Fn(u32) -> String) -> String {
    let mut out = String::new();
    out.push_str("+--- planned moves ");
    out.push_str(&"-".repeat(21));
    out.push('\n');
    if plan.is_empty() {
        out.push_str("|   (none: layout is settled)\n");
        return out;
    }
    out.push_str(&format!(
        "|   plan #{}: cost {:.1} -> {:.1} ({:.0}% gain)\n",
        plan.id,
        plan.current_cost,
        plan.planned_cost,
        plan.relative_gain() * 100.0
    ));
    for s in &plan.steps {
        out.push_str(&format!(
            "|   {} {} ==> {}  (gain {:.1})\n",
            s.complet,
            name_of(s.from),
            name_of(s.to),
            s.predicted_gain
        ));
    }
    out
}

/// Exports a reconstructed [`LayoutState`] as a Graphviz digraph.
pub fn state_to_dot(state: &LayoutState, name_of: impl Fn(u32) -> String) -> String {
    let mut out = String::from("digraph layout {\n  rankdir=LR;\n");
    let mut by_core: std::collections::BTreeMap<u32, Vec<&str>> = std::collections::BTreeMap::new();
    for (id, node) in &state.placement {
        by_core.entry(*node).or_default().push(id);
    }
    for (node, ids) in &by_core {
        let name = name_of(*node);
        out.push_str(&format!(
            "  subgraph \"cluster_{node}\" {{\n    label=\"{name}\";\n"
        ));
        for id in ids {
            out.push_str(&format!("    \"{id}\";\n"));
        }
        out.push_str("  }\n");
    }
    for (src, dst, rel) in &state.refs {
        out.push_str(&format!("  \"{src}\" -> \"{dst}\" [label=\"{rel}\"];\n"));
    }
    for ((node, complet), target) in &state.trackers {
        if let Some(t) = target {
            out.push_str(&format!(
                "  \"trk_{complet}@{node}\" [shape=point];\n  \"trk_{complet}@{node}\" -> \"trk_{complet}@{t}\" [style=dashed, label=\"{complet}\"];\n"
            ));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fargo_core::{JournalEvent, JournalKind};

    fn ev(
        seq: u64,
        core: u32,
        kind: JournalKind,
        subject: &str,
        peer: Option<u32>,
    ) -> JournalEvent {
        JournalEvent {
            hlc: Hlc {
                wall_us: 100 + seq,
                logical: 0,
            },
            core,
            seq,
            kind,
            subject: subject.into(),
            object: "T".into(),
            detail: String::new(),
            peer,
        }
    }

    fn sample_state() -> LayoutState {
        let history = LayoutHistory::from_events(vec![
            ev(0, 0, JournalKind::CompletArrived, "c0.1", None),
            ev(1, 0, JournalKind::TrackerCreated, "c0.1", None),
            ev(2, 0, JournalKind::RefEdgeCreated, "c0.1", None),
            ev(3, 0, JournalKind::CompletDeparted, "c0.1", Some(1)),
            ev(4, 0, JournalKind::TrackerForwarded, "c0.1", Some(1)),
            ev(5, 1, JournalKind::CompletArrived, "c0.1", None),
        ]);
        history.final_state()
    }

    #[test]
    fn ascii_frame_shows_placement_and_chain() {
        let frame = render_state(&sample_state(), |n| format!("core{n}"));
        assert!(frame.contains("+-- core1"), "frame: {frame}");
        assert!(frame.contains("c0.1"));
        assert!(
            frame.contains("core0 -> core1"),
            "tracker chain missing: {frame}"
        );
    }

    #[test]
    fn dot_export_is_wellformed() {
        let dot = state_to_dot(&sample_state(), |n| format!("core{n}"));
        assert!(dot.starts_with("digraph layout {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("subgraph \"cluster_1\""));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn empty_state_renders_placeholder() {
        let state = LayoutHistory::from_events(vec![]).final_state();
        assert!(render_state(&state, |n| n.to_string()).contains("(no complets placed)"));
    }

    #[test]
    fn plan_overlay_draws_moves_and_gain() {
        use fargo_layout::MoveStep;
        use fargo_wire::CompletId;
        let plan = LayoutPlan {
            id: 3,
            steps: vec![MoveStep {
                complet: CompletId::new(0, 7),
                from: 1,
                to: 0,
                predicted_gain: 12.5,
            }],
            current_cost: 20.0,
            planned_cost: 7.5,
        };
        let overlay = plan_overlay(&plan, |n| format!("core{n}"));
        assert!(overlay.contains("planned moves"), "{overlay}");
        assert!(overlay.contains("c0.7 core1 ==> core0"), "{overlay}");
        assert!(overlay.contains("plan #3"), "{overlay}");

        let idle = plan_overlay(&LayoutPlan::default(), |n| n.to_string());
        assert!(idle.contains("layout is settled"), "{idle}");
    }
}
