//! Concurrent-correctness tests: many threads hammering the same
//! counter and histogram series must lose no updates and produce a
//! consistent snapshot.

use std::thread;

use fargo_telemetry::{MetricValue, Registry, BUCKETS_COUNT};

const THREADS: u64 = 8;
const PER_THREAD: u64 = 10_000;

#[test]
fn concurrent_counter_increments_are_lossless() {
    let reg = Registry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            // Every thread resolves the *same* series through the
            // registry, exercising get-or-create under contention.
            let c = reg.counter("fargo_hammer_total", &[("core", "x")]);
            thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let c = reg.counter("fargo_hammer_total", &[("core", "x")]);
    assert_eq!(c.get(), THREADS * PER_THREAD);
    let snaps = reg.snapshot();
    assert_eq!(
        snaps
            .iter()
            .find(|s| s.name == "fargo_hammer_total")
            .unwrap()
            .value,
        MetricValue::Counter(THREADS * PER_THREAD)
    );
}

#[test]
fn concurrent_histogram_observations_are_lossless() {
    let reg = Registry::new();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = reg.histogram("fargo_hammer_us", &[], BUCKETS_COUNT);
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.observe(t * PER_THREAD + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let h = reg.histogram("fargo_hammer_us", &[], BUCKETS_COUNT);
    let n = THREADS * PER_THREAD;
    assert_eq!(h.count(), n);
    // Sum of 0..n-1.
    assert_eq!(h.sum(), n * (n - 1) / 2);
    // Cumulative buckets are monotone and end at the total count.
    let buckets = h.cumulative_buckets();
    let mut prev = 0;
    for (_, cum) in &buckets {
        assert!(*cum >= prev, "cumulative counts must be monotone");
        prev = *cum;
    }
    assert_eq!(buckets.last().unwrap().1, n);
}

#[test]
fn snapshot_under_concurrent_writes_is_internally_consistent() {
    let reg = Registry::new();
    let writer = {
        let c = reg.counter("fargo_live_total", &[]);
        thread::spawn(move || {
            for _ in 0..50_000 {
                c.inc();
            }
        })
    };
    // Snapshots taken mid-flight must never move backwards.
    let mut last = 0;
    for _ in 0..100 {
        let snaps = reg.snapshot();
        if let Some(s) = snaps.iter().find(|s| s.name == "fargo_live_total") {
            if let MetricValue::Counter(v) = s.value {
                assert!(v >= last, "counter went backwards: {v} < {last}");
                last = v;
            }
        }
    }
    writer.join().unwrap();
    assert_eq!(reg.counter("fargo_live_total", &[]).get(), 50_000);
}
