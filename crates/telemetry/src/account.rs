//! Per-complet resource accounting with cardinality safety, plus the
//! Core↔Core traffic matrix — the data layer of the cluster health
//! observatory.
//!
//! Two structures:
//!
//! * [`Accountant`] — attributes exec time, invoke count, and marshaled
//!   bytes to the *executing* complet. Storage is sharded (the shard is
//!   a pure function of the key, so placement is deterministic) and the
//!   hot path is a shard read-lock plus four relaxed atomic adds.
//!   Cardinality is bounded by a Space-Saving heavy-hitter sketch: when
//!   a shard is full, admitting a new complet evicts the minimum-load
//!   entry and the newcomer inherits its load as an error bound, so the
//!   table stays O(capacity) at millions of complets while every true
//!   heavy hitter — any complet whose load exceeds the evicted minimum —
//!   is retained (the classic Space-Saving guarantee, applied per
//!   shard).
//! * [`TrafficMatrix`] — messages and bytes per directed Core pair, fed
//!   from the envelope send path. Cells are registry counters labelled
//!   `src`/`dst`, so the Prometheus/JSON expositions get the matrix for
//!   free; [`render_matrix`] draws the ASCII heatmap.
//!
//! The *load* unit of the sketch is `exec_µs + invokes`: each
//! invocation contributes at least one unit (so the sketch degrades to
//! exact invoke counting under a virtual clock where trivial methods
//! execute in zero measured time) and expensive methods weigh in
//! proportion to their measured exec time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::metrics::{Counter, Registry};

/// Identifies a complet as `(origin node index, sequence)` — the two
/// halves of a `CompletId`, kept as a plain tuple so this crate stays
/// dependency-free.
pub type AccountKey = (u32, u64);

/// Shards of the accountant table. The shard of a key is a pure
/// function of the key, so a given schedule always lands entries in the
/// same shards (determinism) while unrelated complets rarely contend.
const SHARDS: usize = 16;

/// One complet's accumulators. `base` is the load inherited from the
/// entry evicted at admission (zero for entries admitted into a
/// non-full shard) and doubles as the Space-Saving error bound.
struct Cells {
    invokes: AtomicU64,
    exec_us: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    base: u64,
}

impl Cells {
    fn new(base: u64) -> Cells {
        Cells {
            invokes: AtomicU64::new(0),
            exec_us: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            base,
        }
    }

    fn load(&self) -> u64 {
        self.base + self.exec_us.load(Ordering::Relaxed) + self.invokes.load(Ordering::Relaxed)
    }
}

/// A point-in-time copy of one complet's account.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountRecord {
    /// `(origin node, seq)` of the complet.
    pub key: AccountKey,
    /// Invocations executed.
    pub invokes: u64,
    /// Total measured exec time, µs.
    pub exec_us: u64,
    /// Marshaled argument bytes received.
    pub bytes_in: u64,
    /// Marshaled result bytes produced.
    pub bytes_out: u64,
    /// Sketch load (`exec_us + invokes + err`), the heavy-hitter rank
    /// key. An over-estimate by at most `err`.
    pub load: u64,
    /// Space-Saving error bound: load inherited from the entry this one
    /// evicted at admission (0 when admitted into a non-full table).
    pub err: u64,
}

/// Per-complet resource accounting bounded by a Space-Saving sketch.
pub struct Accountant {
    shards: Vec<RwLock<BTreeMap<AccountKey, Arc<Cells>>>>,
    shard_capacity: usize,
}

impl Accountant {
    /// An accountant tracking at most `capacity` complets in total
    /// (rounded up to a multiple of the shard count; minimum one entry
    /// per shard).
    pub fn new(capacity: usize) -> Accountant {
        Accountant {
            shards: (0..SHARDS).map(|_| RwLock::new(BTreeMap::new())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
        }
    }

    fn shard_of(key: AccountKey) -> usize {
        // A multiplicative mix of both halves; pure, so deterministic.
        let h = (u64::from(key.0))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.1.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        (h >> 32) as usize % SHARDS
    }

    /// Attributes one executed invocation to `key`. The common case
    /// (key already tracked) is a shard read-lock and four relaxed
    /// atomic adds; a miss takes the shard write-lock for Space-Saving
    /// admission.
    pub fn record(&self, key: AccountKey, exec_us: u64, bytes_in: u64, bytes_out: u64) {
        let shard = &self.shards[Self::shard_of(key)];
        {
            let map = shard.read().unwrap_or_else(|p| p.into_inner());
            if let Some(cells) = map.get(&key) {
                let cells = cells.clone();
                drop(map);
                Self::bump(&cells, exec_us, bytes_in, bytes_out);
                return;
            }
        }
        let mut map = shard.write().unwrap_or_else(|p| p.into_inner());
        let cells = match map.get(&key) {
            Some(cells) => cells.clone(),
            None => {
                let base = if map.len() >= self.shard_capacity {
                    // Space-Saving: evict the minimum-load entry; ties
                    // break on the smaller key so eviction is a pure
                    // function of table state.
                    let victim = map
                        .iter()
                        .map(|(k, c)| (c.load(), *k))
                        .min()
                        .expect("full shard has a minimum");
                    map.remove(&victim.1);
                    victim.0
                } else {
                    0
                };
                let cells = Arc::new(Cells::new(base));
                map.insert(key, cells.clone());
                cells
            }
        };
        drop(map);
        Self::bump(&cells, exec_us, bytes_in, bytes_out);
    }

    fn bump(cells: &Cells, exec_us: u64, bytes_in: u64, bytes_out: u64) {
        cells.invokes.fetch_add(1, Ordering::Relaxed);
        cells.exec_us.fetch_add(exec_us, Ordering::Relaxed);
        cells.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        cells.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
    }

    /// The top `n` complets by load, heaviest first; ties break on the
    /// smaller key so the order is a pure function of the accounts.
    pub fn top(&self, n: usize) -> Vec<AccountRecord> {
        let mut all = self.records();
        all.sort_by(|a, b| b.load.cmp(&a.load).then(a.key.cmp(&b.key)));
        all.truncate(n);
        all
    }

    /// Every tracked account, in key order.
    pub fn records(&self) -> Vec<AccountRecord> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let map = shard.read().unwrap_or_else(|p| p.into_inner());
            for (key, c) in map.iter() {
                all.push(AccountRecord {
                    key: *key,
                    invokes: c.invokes.load(Ordering::Relaxed),
                    exec_us: c.exec_us.load(Ordering::Relaxed),
                    bytes_in: c.bytes_in.load(Ordering::Relaxed),
                    bytes_out: c.bytes_out.load(Ordering::Relaxed),
                    load: c.load(),
                    err: c.base,
                });
            }
        }
        all.sort_by_key(|r| r.key);
        all
    }

    /// Complets currently tracked (bounded by the sketch capacity).
    pub fn tracked(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }
}

impl std::fmt::Debug for Accountant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Accountant")
            .field("tracked", &self.tracked())
            .field("shard_capacity", &self.shard_capacity)
            .finish()
    }
}

// --- traffic matrix -------------------------------------------------------

/// One directed Core-pair cell of the traffic matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixCell {
    /// Sending Core name.
    pub src: String,
    /// Receiving Core name.
    pub dst: String,
    /// Messages sent `src → dst`.
    pub msgs: u64,
    /// Envelope bytes sent `src → dst`.
    pub bytes: u64,
}

struct MatrixCounters {
    src: String,
    dst: String,
    msgs: Counter,
    bytes: Counter,
}

/// Messages and bytes per directed Core pair, fed from the envelope
/// send path. Cells are registry counters (`fargo_matrix_messages_total`
/// / `fargo_matrix_bytes_total`, labelled `src`/`dst`), so the matrix
/// rides along in every metrics exposition; the first send to a new
/// peer resolves names and registers the pair, every later send is two
/// atomic adds under a read-lock.
pub struct TrafficMatrix {
    registry: Registry,
    cells: RwLock<BTreeMap<(u32, u32), Arc<MatrixCounters>>>,
}

impl TrafficMatrix {
    /// A matrix exposing its cells through `registry`.
    pub fn new(registry: &Registry) -> TrafficMatrix {
        TrafficMatrix {
            registry: registry.clone(),
            cells: RwLock::new(BTreeMap::new()),
        }
    }

    /// Counts one message of `bytes` on the directed pair `src → dst`
    /// (node indices). `names` resolves the pair to Core names; it runs
    /// only on the first message of a pair.
    pub fn record(&self, src: u32, dst: u32, bytes: u64, names: impl FnOnce() -> (String, String)) {
        {
            let map = self.cells.read().unwrap_or_else(|p| p.into_inner());
            if let Some(cell) = map.get(&(src, dst)) {
                cell.msgs.inc();
                cell.bytes.add(bytes);
                return;
            }
        }
        let mut map = self.cells.write().unwrap_or_else(|p| p.into_inner());
        let cell = map.entry((src, dst)).or_insert_with(|| {
            let (src_name, dst_name) = names();
            let l = &[("src", src_name.as_str()), ("dst", dst_name.as_str())][..];
            Arc::new(MatrixCounters {
                msgs: self.registry.counter("fargo_matrix_messages_total", l),
                bytes: self.registry.counter("fargo_matrix_bytes_total", l),
                src: src_name,
                dst: dst_name,
            })
        });
        cell.msgs.inc();
        cell.bytes.add(bytes);
    }

    /// All cells, ordered by `(src, dst)` node index.
    pub fn snapshot(&self) -> Vec<MatrixCell> {
        let map = self.cells.read().unwrap_or_else(|p| p.into_inner());
        map.values()
            .map(|c| MatrixCell {
                src: c.src.clone(),
                dst: c.dst.clone(),
                msgs: c.msgs.get(),
                bytes: c.bytes.get(),
            })
            .collect()
    }
}

impl std::fmt::Debug for TrafficMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficMatrix")
            .field(
                "pairs",
                &self.cells.read().unwrap_or_else(|p| p.into_inner()).len(),
            )
            .finish()
    }
}

/// Renders matrix cells as an ASCII heatmap (rows send, columns
/// receive; intensity scales with the cell's share of the hottest
/// pair's messages), followed by the exact per-pair counts.
pub fn render_matrix(cells: &[MatrixCell]) -> String {
    if cells.is_empty() {
        return "traffic matrix: no inter-Core messages yet\n".to_owned();
    }
    const SCALE: &[u8] = b".:-=+*#%@";
    let mut names: Vec<&str> = Vec::new();
    for c in cells {
        for n in [c.src.as_str(), c.dst.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    names.sort_unstable();
    let max = cells.iter().map(|c| c.msgs).max().unwrap_or(0).max(1);
    let width = names.iter().map(|n| n.len()).max().unwrap_or(4).max(4);
    let cell_of = |src: &str, dst: &str| cells.iter().find(|c| c.src == src && c.dst == dst);
    let mut out = String::new();
    out.push_str("traffic matrix (messages, rows send -> columns receive)\n");
    out.push_str(&format!("{:>width$} ", "-"));
    for dst in &names {
        out.push_str(&format!("{dst:>width$} "));
    }
    out.push('\n');
    for src in &names {
        out.push_str(&format!("{src:>width$} "));
        for dst in &names {
            let mark = if src == dst {
                ' '
            } else {
                match cell_of(src, dst).map_or(0, |c| c.msgs) {
                    0 => ' ',
                    // Linear share of the hottest pair, clamped so any
                    // traffic at all shows the faintest mark.
                    m => {
                        SCALE[(((m * SCALE.len() as u64) / max) as usize).clamp(1, SCALE.len()) - 1]
                            as char
                    }
                }
            };
            out.push_str(&format!("{mark:>width$} "));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "scale {} of max {max} msgs\n",
        std::str::from_utf8(SCALE).expect("ascii scale")
    ));
    let mut sorted: Vec<&MatrixCell> = cells.iter().collect();
    sorted.sort_by(|a, b| (&a.src, &a.dst).cmp(&(&b.src, &b.dst)));
    for c in sorted {
        out.push_str(&format!(
            "{} -> {}: {} msgs, {} bytes\n",
            c.src, c.dst, c.msgs, c.bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_attribute_to_the_right_key() {
        let a = Accountant::new(64);
        a.record((0, 1), 10, 100, 7);
        a.record((0, 1), 5, 50, 3);
        a.record((1, 2), 0, 0, 0);
        let top = a.top(10);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].key, (0, 1));
        assert_eq!(top[0].invokes, 2);
        assert_eq!(top[0].exec_us, 15);
        assert_eq!(top[0].bytes_in, 150);
        assert_eq!(top[0].bytes_out, 10);
        assert_eq!(top[0].load, 17, "load = exec_us + invokes");
        assert_eq!(top[0].err, 0);
        assert_eq!(top[1].key, (1, 2));
        assert_eq!(top[1].load, 1, "zero-duration exec still counts one unit");
    }

    #[test]
    fn sketch_stays_bounded_and_keeps_heavy_hitters() {
        // Capacity 64 (4 entries per shard); stream 500 distinct keys
        // once each, plus two heavy keys many times. The per-shard
        // minimum load ratchets up by roughly arrivals/slots (~8 here),
        // far below the heavy keys' 200, so they must survive.
        let a = Accountant::new(64);
        let heavy = [(9, 1_000), (9, 2_000)];
        for k in heavy {
            for _ in 0..200 {
                a.record(k, 0, 0, 0);
            }
        }
        for i in 0..500u64 {
            a.record((0, 10 + i), 0, 0, 0);
        }
        assert!(a.tracked() <= 64, "tracked {} > capacity", a.tracked());
        let top: Vec<AccountKey> = a.top(2).into_iter().map(|r| r.key).collect();
        assert_eq!(top, vec![(9, 1_000), (9, 2_000)]);
        // A light entry that evicted something carries an error bound.
        assert!(a.records().iter().any(|r| r.err > 0));
    }

    #[test]
    fn eviction_is_deterministic() {
        let run = || {
            let a = Accountant::new(8);
            for i in 0..100u64 {
                a.record((1, i), i % 3, 0, 0);
            }
            a.top(8)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn matrix_counts_pairs_and_exposes_counters() {
        let reg = Registry::new();
        let m = TrafficMatrix::new(&reg);
        let names = |s: u32, d: u32| move || (format!("core{s}"), format!("core{d}"));
        m.record(0, 1, 100, names(0, 1));
        m.record(0, 1, 50, names(0, 1));
        m.record(1, 0, 7, names(1, 0));
        let cells = m.snapshot();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].src, "core0");
        assert_eq!(cells[0].dst, "core1");
        assert_eq!(cells[0].msgs, 2);
        assert_eq!(cells[0].bytes, 150);
        let prom = reg.render_prometheus();
        assert!(
            prom.contains("fargo_matrix_messages_total{dst=\"core1\",src=\"core0\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("fargo_matrix_bytes_total{dst=\"core0\",src=\"core1\"} 7"),
            "{prom}"
        );
    }

    #[test]
    fn heatmap_renders_grid_and_detail() {
        let cells = vec![
            MatrixCell {
                src: "core0".into(),
                dst: "core1".into(),
                msgs: 90,
                bytes: 900,
            },
            MatrixCell {
                src: "core1".into(),
                dst: "core0".into(),
                msgs: 1,
                bytes: 10,
            },
        ];
        let out = render_matrix(&cells);
        assert!(out.contains("core0 -> core1: 90 msgs, 900 bytes"), "{out}");
        assert!(out.contains('@'), "hottest pair renders max glyph: {out}");
        assert!(out.contains('.'), "coolest pair renders min glyph: {out}");
        assert!(render_matrix(&[]).contains("no inter-Core messages"));
    }
}
