//! Cross-Core trace propagation.
//!
//! A [`TraceContext`] is two `u64`s — small enough to ride in every
//! inter-Core request envelope. Each Core records the spans it executes
//! into a bounded [`SpanLog`] ring buffer; a collector gathers the logs
//! of all Cores for one trace id and [`render_span_tree`] reassembles
//! them into a text tree, so a multi-hop chained invocation or a
//! Pull-closure move is visible end to end.
//!
//! Span timestamps are microseconds since a process-wide epoch, so spans
//! recorded on different (in-process) Cores share one clock and can be
//! ordered against each other. The log reads its time through the shared
//! [`Clock`] abstraction: wall time in production, the virtual counter
//! under the deterministic checker — so span timestamps are a pure
//! function of the schedule, exactly like journal HLC stamps.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::clock::Clock;

/// Identifies one request tree (`trace_id`) and the caller's position in
/// it (`span_id`); a callee records its own span with `span_id` as the
/// parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Identifier shared by every span of one logical operation.
    pub trace_id: u64,
    /// The span that caused this request (parent for new spans).
    pub span_id: u64,
}

impl TraceContext {
    /// Starts a fresh trace with a new root span id.
    pub fn new_root() -> Self {
        TraceContext {
            trace_id: next_id(),
            span_id: next_id(),
        }
    }

    /// A context for a child operation of this one.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(),
        }
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique non-zero id (trace or span).
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process-wide trace epoch.
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One completed span, as stored in a [`SpanLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id, or 0 for a root span.
    pub parent_id: u64,
    /// Operation name (e.g. `invoke Printer.print`, `move`).
    pub name: String,
    /// Core that executed the span.
    pub core: String,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub duration_us: u64,
}

/// A bounded ring buffer of completed spans (oldest evicted first).
#[derive(Debug)]
pub struct SpanLog {
    spans: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    clock: Clock,
}

impl SpanLog {
    /// Creates a log holding at most `capacity` spans, timed by wall
    /// clock.
    pub fn new(capacity: usize) -> Self {
        SpanLog::with_clock(capacity, Clock::Wall)
    }

    /// Creates a log that reads span timestamps from `clock` — the
    /// deterministic checker passes its shared virtual clock here so
    /// span start/duration become seed-stable.
    pub fn with_clock(capacity: usize, clock: Clock) -> Self {
        SpanLog {
            spans: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            clock,
        }
    }

    /// Appends a completed span. When the ring is full, the oldest
    /// span's *entire trace* is evicted — never single spans out of the
    /// middle of a trace, which would leave orphan children rendering as
    /// broken root-less trees.
    pub fn record(&self, span: SpanRecord) {
        let mut spans = self.spans.lock().unwrap();
        if spans.len() >= self.capacity {
            if let Some(oldest) = spans.pop_front() {
                spans.retain(|s| s.trace_id != oldest.trace_id);
            }
        }
        spans.push_back(span);
    }

    /// Starts a span timer; record it via [`SpanTimer::finish`].
    pub fn start(&self, ctx: TraceContext, parent_id: u64, name: impl Into<String>) -> SpanTimer {
        SpanTimer {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id,
            name: name.into(),
            start_us: self.clock.now_us(),
        }
    }

    /// The clock this log stamps spans with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Every span currently retained, oldest first.
    pub fn all(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().iter().cloned().collect()
    }

    /// All spans belonging to `trace_id`, oldest first.
    pub fn for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    /// The trace id of the most recently recorded span, if any.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.spans.lock().unwrap().back().map(|s| s.trace_id)
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap().len()
    }

    /// True when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-flight span; finish it against a [`SpanLog`] with the Core name.
#[derive(Debug)]
pub struct SpanTimer {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: String,
    start_us: u64,
}

impl SpanTimer {
    /// Completes the span and records it into `log`, reading the end
    /// instant from the log's [`Clock`] (so virtual-clock runs measure
    /// virtual durations, not host scheduling jitter).
    pub fn finish(self, log: &SpanLog, core: &str) {
        let duration_us = log.clock().now_us().saturating_sub(self.start_us);
        log.record(SpanRecord {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name,
            core: core.to_string(),
            start_us: self.start_us,
            duration_us,
        });
    }
}

/// Reassembles spans (typically gathered from several Cores) into an
/// indented text tree, ordered by start time.
///
/// Spans whose parent is absent from `spans` are treated as roots, so a
/// partial collection (ring buffer evictions, a Core down) still renders.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    if spans.is_empty() {
        return "(no spans)\n".to_string();
    }
    let known: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id, s)).collect();
    // Children sorted by start time; BTreeMap for deterministic traversal.
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for span in spans {
        if span.parent_id != 0 && known.contains_key(&span.parent_id) {
            children.entry(span.parent_id).or_default().push(span);
        } else {
            roots.push(span);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|s| (s.start_us, s.span_id));
    }
    roots.sort_by_key(|s| (s.start_us, s.span_id));

    let mut out = String::new();
    let base = roots.first().map(|s| s.start_us).unwrap_or(0);
    for root in &roots {
        let _ = writeln!(out, "trace {:#x}", root.trace_id);
        render_node(&mut out, root, &children, 0, base);
    }
    out
}

fn render_node(
    out: &mut String,
    span: &SpanRecord,
    children: &BTreeMap<u64, Vec<&SpanRecord>>,
    depth: usize,
    base_us: u64,
) {
    let indent = "  ".repeat(depth + 1);
    let _ = writeln!(
        out,
        "{indent}{name} @{core}  +{offset}us {dur}us",
        name = span.name,
        core = span.core,
        offset = span.start_us.saturating_sub(base_us),
        dur = span.duration_us,
    );
    if let Some(kids) = children.get(&span.span_id) {
        for kid in kids {
            render_node(out, kid, children, depth + 1, base_us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: &str, core: &str, start: u64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: name.into(),
            core: core.into(),
            start_us: start,
            duration_us: 5,
        }
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        let root = TraceContext::new_root();
        let child = root.child();
        assert_eq!(root.trace_id, child.trace_id);
        assert_ne!(root.span_id, child.span_id);
    }

    #[test]
    fn ring_buffer_evicts_oldest_trace_wholesale() {
        // Capacity 3 holding two traces: overflow drops trace 1
        // entirely (both spans), never just its head.
        let log = SpanLog::new(3);
        log.record(span(1, 1, 0, "root", "c", 0));
        log.record(span(1, 2, 1, "child", "c", 5));
        log.record(span(2, 3, 0, "other", "c", 10));
        log.record(span(2, 4, 3, "other-child", "c", 15));
        assert!(
            log.for_trace(1).is_empty(),
            "evicted trace leaves no orphans"
        );
        assert_eq!(log.for_trace(2).len(), 2);
    }

    #[test]
    fn eviction_never_leaves_orphan_subtrees() {
        // A parent evicted while its children survive used to render as
        // a broken tree; whole-trace eviction makes that impossible.
        let log = SpanLog::new(2);
        log.record(span(7, 1, 0, "root", "c", 0));
        log.record(span(7, 2, 1, "mid", "c", 1));
        log.record(span(8, 9, 0, "fresh", "c", 2));
        let seven = log.for_trace(7);
        assert!(seven.is_empty(), "partial trace survived: {seven:?}");
        assert_eq!(log.len(), 1);
        assert_eq!(log.last_trace_id(), Some(8));
    }

    #[test]
    fn timer_measures_and_records() {
        let log = SpanLog::new(8);
        let ctx = TraceContext::new_root();
        let timer = log.start(ctx, 0, "op");
        std::thread::sleep(std::time::Duration::from_millis(2));
        timer.finish(&log, "core0");
        let spans = log.for_trace(ctx.trace_id);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].core, "core0");
        assert!(spans[0].duration_us >= 1_000);
        assert_eq!(log.last_trace_id(), Some(ctx.trace_id));
    }

    #[test]
    fn virtual_clock_makes_span_timing_deterministic() {
        let clock = Clock::new_virtual(1_000);
        let log = SpanLog::with_clock(8, clock.clone());
        let ctx = TraceContext::new_root();
        let timer = log.start(ctx, 0, "op");
        clock.advance(std::time::Duration::from_micros(250));
        timer.finish(&log, "core0");
        let spans = log.for_trace(ctx.trace_id);
        assert_eq!(spans[0].start_us, 1_000);
        assert_eq!(spans[0].duration_us, 250, "duration reads virtual time");
        // Real time must not leak in.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t2 = log.start(ctx.child(), ctx.span_id, "op2");
        t2.finish(&log, "core0");
        let spans = log.for_trace(ctx.trace_id);
        assert_eq!(spans[1].start_us, 1_250);
        assert_eq!(spans[1].duration_us, 0);
    }

    #[test]
    fn tree_renders_nested_structure() {
        let spans = vec![
            span(9, 1, 0, "invoke a.m", "core0", 0),
            span(9, 2, 1, "exec a.m", "core1", 10),
            span(9, 3, 2, "invoke b.n", "core1", 12),
            span(9, 4, 3, "exec b.n", "core2", 20),
        ];
        let text = render_span_tree(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "trace 0x9");
        assert!(lines[1].starts_with("  invoke a.m @core0"));
        assert!(lines[2].starts_with("    exec a.m @core1"));
        assert!(lines[3].starts_with("      invoke b.n @core1"));
        assert!(lines[4].starts_with("        exec b.n @core2"));
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let spans = vec![span(9, 5, 99, "late", "core3", 50)];
        let text = render_span_tree(&spans);
        assert!(text.contains("late @core3"));
    }
}
