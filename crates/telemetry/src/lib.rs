//! Dependency-free telemetry for FarGo-RS.
//!
//! Two halves, both built on `std` only:
//!
//! * [`metrics`] — a registry of lock-free counters, gauges, and
//!   fixed-bucket histograms, registered by name + labels, snapshottable,
//!   and renderable in Prometheus text exposition format. Handles are
//!   cheap `Arc` clones: the hot path touches a single `AtomicU64`
//!   (a few per histogram), never the registry lock.
//! * [`trace`] — cross-Core trace propagation: a [`TraceContext`] small
//!   enough to ride in every inter-Core request envelope, a bounded
//!   per-Core span ring buffer, and a renderer that reassembles spans
//!   gathered from many Cores into one text span tree.
//!
//! The crate deliberately has no dependencies (not even in-workspace
//! ones) so every layer — wire, simnet, core, shell, viz, bench — can
//! use it without cycles.

pub mod metrics;
pub mod trace;

pub use metrics::{
    render_snapshots_json, Counter, Gauge, Histogram, MetricValue, Registry, Snapshot,
    BUCKETS_BYTES, BUCKETS_COUNT, BUCKETS_LATENCY_US,
};
pub use trace::{render_span_tree, SpanLog, SpanRecord, SpanTimer, TraceContext};
