//! Dependency-free telemetry for FarGo-RS.
//!
//! Three parts, all built on `std` only:
//!
//! * [`metrics`] — a registry of lock-free counters, gauges, and
//!   fixed-bucket histograms, registered by name + labels, snapshottable,
//!   and renderable in Prometheus text exposition format. Handles are
//!   cheap `Arc` clones: the hot path touches a single `AtomicU64`
//!   (a few per histogram), never the registry lock.
//! * [`trace`] — cross-Core trace propagation: a [`TraceContext`] small
//!   enough to ride in every inter-Core request envelope, a bounded
//!   per-Core span ring buffer, and a renderer that reassembles spans
//!   gathered from many Cores into one text span tree.
//! * [`journal`] — the distributed flight recorder: a bounded per-Core
//!   ring of structured layout events stamped with a hybrid logical
//!   clock ([`journal::Hlc`]) that piggybacks on every inter-Core
//!   envelope, so per-Core journals merge into one causally-consistent
//!   timeline, reconstructable into a [`journal::LayoutHistory`].
//! * [`clock`] — the [`Clock`] every protocol deadline reads: wall time
//!   in production, a shared virtual counter under the deterministic
//!   checker (`fargo-check`), so one seed replays to one journal.
//! * [`tail`] — tail-based trace retention: a bounded [`SlowLog`] that
//!   keeps full span trees only for the slowest requests, with a
//!   self-adjusting admission threshold (top-K by latency).
//! * [`account`] — per-complet resource accounting bounded by a
//!   Space-Saving heavy-hitter sketch, and the Core↔Core traffic
//!   matrix, both exposed through the metrics registry.
//! * [`health`] — declarative SLO rules evaluated per monitor tick with
//!   multi-window burn-rate alerting.
//!
//! The crate deliberately has no dependencies (not even in-workspace
//! ones) so every layer — wire, simnet, core, shell, viz, bench — can
//! use it without cycles.

pub mod account;
pub mod clock;
pub mod health;
pub mod journal;
pub mod metrics;
pub mod tail;
pub mod trace;

pub use account::{
    render_matrix, AccountKey, AccountRecord, Accountant, MatrixCell, TrafficMatrix,
};
pub use clock::Clock;
pub use health::{
    default_slo_rules, render_health, AlertTransition, HealthEngine, HealthSample, RuleStatus,
    SloKind, SloRule,
};
pub use journal::{
    merge_timelines, render_journal_json, Anomaly, AnomalyThresholds, Hlc, HlcClock, Journal,
    JournalEvent, JournalKind, LayoutHistory, LayoutState,
};
pub use metrics::{
    quantile_from_cumulative, render_snapshots_json, Counter, Gauge, Histogram, MetricValue,
    Registry, Snapshot, WindowedHistogram, BUCKETS_BYTES, BUCKETS_COUNT, BUCKETS_LATENCY_US,
};
pub use tail::{render_slow_log, SlowLog, SlowRecord};
pub use trace::{render_span_tree, SpanLog, SpanRecord, SpanTimer, TraceContext};
