//! Lock-free metrics: counters, gauges, fixed-bucket histograms, and a
//! name+label registry with Prometheus-style text exposition.
//!
//! # Conventions
//!
//! Metric names are `snake_case` with a `fargo_` prefix and a unit
//! suffix (`_total` for counters, `_us` / `_bytes` where applicable).
//! Labels are `(key, value)` pairs; the registry sorts them by key so
//! `[("core", "a"), ("kind", "x")]` and `[("kind", "x"), ("core", "a")]`
//! name the same series. Registering the same name + labels twice
//! returns a handle to the same underlying series.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Histogram bucket preset for micro-second latencies (1µs – 1s).
pub const BUCKETS_LATENCY_US: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
    250_000, 500_000, 1_000_000,
];

/// Histogram bucket preset for payload sizes (16B – 4MiB).
pub const BUCKETS_BYTES: &[u64] = &[
    16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304,
];

/// Histogram bucket preset for small counts (hops, chain lengths, co-moves).
pub const BUCKETS_COUNT: &[u64] = &[0, 1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32];

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding an arbitrary `f64` (stored as bit pattern).
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Vec<u64>,
    /// One slot per bound plus a final `+Inf` overflow slot.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations.
///
/// `observe` touches three atomics and performs a short binary search
/// over the (immutable) bounds — no locks, safe from any thread.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn with_bounds(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let idx = self.inner.bounds.partition_point(|&b| b < value);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a `Duration` in whole microseconds.
    pub fn observe_micros(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Cumulative `(upper_bound, count)` pairs; the final entry is the
    /// `+Inf` bucket (bound `u64::MAX`).
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.inner.buckets.len());
        for (i, slot) in self.inner.buckets.iter().enumerate() {
            acc += slot.load(Ordering::Relaxed);
            let bound = self.inner.bounds.get(i).copied().unwrap_or(u64::MAX);
            out.push((bound, acc));
        }
        out
    }

    /// The finite bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) of all observations so
    /// far by log-interpolating inside the bucket holding the target
    /// rank. `None` while the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_cumulative(&self.cumulative_buckets(), q)
    }
}

/// Estimates a quantile from cumulative `(upper_bound, count)` buckets
/// (the shape [`Histogram::cumulative_buckets`] and histogram snapshots
/// produce; the final bound `u64::MAX` is the `+Inf` overflow bucket).
///
/// The estimate interpolates *geometrically* between a bucket's lower
/// and upper edge — the right interpolation for log-spaced bounds like
/// [`BUCKETS_LATENCY_US`], where the linear midpoint of (100, 250] would
/// systematically overestimate. Values in the overflow bucket clamp to
/// the last finite bound: there is no upper edge to interpolate toward.
///
/// `None` when there are no observations; `q` is clamped to `0.0..=1.0`.
pub fn quantile_from_cumulative(cum: &[(u64, u64)], q: f64) -> Option<f64> {
    let total = cum.last().map(|&(_, c)| c).unwrap_or(0);
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank target: q=0 resolves to the first observation, q=1 to
    // the last.
    let rank = (q * total as f64).ceil().max(1.0);
    let mut prev_bound = 0u64;
    let mut prev_cum = 0u64;
    for &(bound, c) in cum {
        if (c as f64) >= rank {
            if bound == u64::MAX {
                // Overflow: clamp to the largest finite edge we know.
                return Some(prev_bound as f64);
            }
            let in_bucket = (c - prev_cum) as f64;
            let frac = ((rank - prev_cum as f64) / in_bucket).clamp(0.0, 1.0);
            let (lo, hi) = (prev_bound as f64, bound as f64);
            let est = if lo <= 0.0 {
                hi * frac
            } else {
                lo * (hi / lo).powf(frac)
            };
            return Some(est);
        }
        prev_bound = bound;
        prev_cum = c;
    }
    Some(prev_bound as f64)
}

/// A [`Histogram`] paired with a bounded recent window, so tail
/// estimates can distinguish "slow lately" from "slow since boot".
///
/// The window is two epochs of `window_len` observations each: every
/// observation lands in the current epoch, and when it fills, it
/// replaces the previous epoch. Recent quantiles read both epochs, so
/// they always cover between `window_len` and `2 × window_len` of the
/// most recent observations. Rotation is driven by observation count,
/// not wall time, so windowed estimates stay deterministic under the
/// virtual clock.
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    lifetime: Histogram,
    inner: Arc<WindowInner>,
}

#[derive(Debug)]
struct WindowInner {
    window_len: u64,
    state: Mutex<WindowState>,
}

#[derive(Debug)]
struct WindowState {
    current: Vec<u64>,
    previous: Vec<u64>,
    count: u64,
}

impl WindowedHistogram {
    /// Wraps an existing (typically registered) histogram handle; the
    /// lifetime series keeps accumulating through it unchanged.
    pub fn new(lifetime: Histogram, window_len: u64) -> Self {
        let slots = lifetime.bounds().len() + 1;
        WindowedHistogram {
            lifetime,
            inner: Arc::new(WindowInner {
                window_len: window_len.max(1),
                state: Mutex::new(WindowState {
                    current: vec![0; slots],
                    previous: vec![0; slots],
                    count: 0,
                }),
            }),
        }
    }

    /// Records into both the lifetime histogram and the recent window.
    pub fn observe(&self, value: u64) {
        self.lifetime.observe(value);
        let idx = self.lifetime.bounds().partition_point(|&b| b < value);
        let mut st = self.inner.state.lock().unwrap();
        st.current[idx] += 1;
        st.count += 1;
        if st.count >= self.inner.window_len {
            let fresh = vec![0; st.current.len()];
            st.previous = std::mem::replace(&mut st.current, fresh);
            st.count = 0;
        }
    }

    /// The lifetime histogram handle.
    pub fn lifetime(&self) -> &Histogram {
        &self.lifetime
    }

    /// Cumulative buckets over the recent window (both epochs).
    pub fn recent_cumulative(&self) -> Vec<(u64, u64)> {
        let st = self.inner.state.lock().unwrap();
        let bounds = self.lifetime.bounds();
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(st.current.len());
        for i in 0..st.current.len() {
            acc += st.current[i] + st.previous[i];
            out.push((bounds.get(i).copied().unwrap_or(u64::MAX), acc));
        }
        out
    }

    /// Observations inside the recent window.
    pub fn recent_count(&self) -> u64 {
        self.recent_cumulative()
            .last()
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Quantile estimate over the recent window only.
    pub fn quantile_recent(&self, q: f64) -> Option<f64> {
        quantile_from_cumulative(&self.recent_cumulative(), q)
    }

    /// Quantile estimate over every observation since creation.
    pub fn quantile_lifetime(&self, q: f64) -> Option<f64> {
        self.lifetime.quantile(q)
    }
}

/// A point-in-time copy of one metric series.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Metric name (e.g. `fargo_invoke_latency_us`).
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// Sampled value of a metric series.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram: cumulative buckets plus sum and count.
    Histogram {
        /// Cumulative `(upper_bound, count)`; last bound is `u64::MAX` (+Inf).
        buckets: Vec<(u64, u64)>,
        /// Sum of observations.
        sum: u64,
        /// Number of observations.
        count: u64,
    },
}

#[derive(Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

type SeriesKey = (String, Vec<(String, String)>);

/// A registry of metric series, keyed by name + sorted labels.
///
/// Cheap to clone (`Arc` inside); clones share the same series. The
/// registry lock is taken only on registration and snapshot — recorded
/// values flow through the lock-free handles.
#[derive(Clone, Default)]
pub struct Registry {
    series: Arc<RwLock<HashMap<SeriesKey, Series>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (name.to_string(), labels)
    }

    /// Returns the counter registered under `name` + `labels`, creating
    /// it on first use.
    ///
    /// # Panics
    /// Panics if the series already exists with a different type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Self::key(name, labels);
        if let Some(Series::Counter(c)) = self.series.read().unwrap().get(&key) {
            return c.clone();
        }
        let mut map = self.series.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Series::Counter(Counter::default()))
        {
            Series::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Registers an *existing* counter handle under `name` + `labels`,
    /// so a subsystem that owns its counters (e.g. the monitor) can
    /// surface them through the registry without double bookkeeping.
    /// Replaces any previous series under the same key.
    pub fn register_counter(&self, name: &str, labels: &[(&str, &str)], handle: &Counter) {
        let key = Self::key(name, labels);
        self.series
            .write()
            .unwrap()
            .insert(key, Series::Counter(handle.clone()));
    }

    /// Returns the gauge registered under `name` + `labels`, creating it
    /// on first use.
    ///
    /// # Panics
    /// Panics if the series already exists with a different type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Self::key(name, labels);
        if let Some(Series::Gauge(g)) = self.series.read().unwrap().get(&key) {
            return g.clone();
        }
        let mut map = self.series.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Series::Gauge(Gauge::default()))
        {
            Series::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Returns the histogram registered under `name` + `labels`, creating
    /// it with `bounds` on first use (later `bounds` are ignored).
    ///
    /// # Panics
    /// Panics if the series already exists with a different type, or if
    /// `bounds` are not strictly increasing.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let key = Self::key(name, labels);
        if let Some(Series::Histogram(h)) = self.series.read().unwrap().get(&key) {
            return h.clone();
        }
        let mut map = self.series.write().unwrap();
        match map
            .entry(key)
            .or_insert_with(|| Series::Histogram(Histogram::with_bounds(bounds)))
        {
            Series::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Takes a point-in-time snapshot of every series, sorted by name
    /// then labels.
    pub fn snapshot(&self) -> Vec<Snapshot> {
        let map = self.series.read().unwrap();
        let mut out: Vec<Snapshot> = map
            .iter()
            .map(|((name, labels), series)| Snapshot {
                name: name.clone(),
                labels: labels.clone(),
                value: match series {
                    Series::Counter(c) => MetricValue::Counter(c.get()),
                    Series::Gauge(g) => MetricValue::Gauge(g.get()),
                    Series::Histogram(h) => MetricValue::Histogram {
                        buckets: h.cumulative_buckets(),
                        sum: h.sum(),
                        count: h.count(),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out
    }

    /// Renders every series in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        render_snapshots(&self.snapshot())
    }
}

fn format_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Orders series for rendering: families by name, series within a family
/// by label set. [`Registry::snapshot`] already emits this order; sorting
/// again here makes the exposition deterministic for *any* input, so
/// snapshots diff cleanly and tests never depend on map iteration order.
fn ordered(snaps: &[Snapshot]) -> Vec<&Snapshot> {
    let mut v: Vec<&Snapshot> = snaps.iter().collect();
    v.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    v
}

/// Renders a snapshot list (e.g. from [`Registry::snapshot`]) in
/// Prometheus text exposition format. `# TYPE` headers are emitted once
/// per metric name. Output order is deterministic: families sort by
/// name, series by label set.
pub fn render_snapshots(snaps: &[Snapshot]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for snap in ordered(snaps) {
        if last_name != Some(snap.name.as_str()) {
            let ty = match snap.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", snap.name, ty);
            last_name = Some(snap.name.as_str());
        }
        match &snap.value {
            MetricValue::Counter(v) => {
                out.push_str(&snap.name);
                format_labels(&mut out, &snap.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Gauge(v) => {
                out.push_str(&snap.name);
                format_labels(&mut out, &snap.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                for (bound, cum) in buckets {
                    let le = if *bound == u64::MAX {
                        "+Inf".to_string()
                    } else {
                        bound.to_string()
                    };
                    let _ = write!(out, "{}_bucket", snap.name);
                    format_labels(&mut out, &snap.labels, Some(("le", &le)));
                    let _ = writeln!(out, " {cum}");
                }
                let _ = write!(out, "{}_sum", snap.name);
                format_labels(&mut out, &snap.labels, None);
                let _ = writeln!(out, " {sum}");
                let _ = write!(out, "{}_count", snap.name);
                format_labels(&mut out, &snap.labels, None);
                let _ = writeln!(out, " {count}");
            }
        }
    }
    out
}

fn json_escape(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a snapshot list as a JSON array — one object per series with
/// `name`, `labels`, and a `value` whose shape depends on the metric
/// kind (number for counters/gauges, `{buckets, sum, count, p50, p99,
/// p999}` for histograms; the overflow bucket's bound is `null`, and the
/// percentile estimates are `null` while empty). Hand-rolled so
/// the crate stays dependency-free. Series order is deterministic (by
/// name, then label set), matching [`render_snapshots`].
pub fn render_snapshots_json(snaps: &[Snapshot]) -> String {
    let mut out = String::from("[");
    for (i, snap) in ordered(snaps).into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json_escape(&mut out, &snap.name);
        out.push_str(",\"labels\":{");
        for (j, (k, v)) in snap.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            json_escape(&mut out, k);
            out.push(':');
            json_escape(&mut out, v);
        }
        out.push_str("},\"value\":");
        match &snap.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            MetricValue::Histogram {
                buckets,
                sum,
                count,
            } => {
                out.push_str("{\"buckets\":[");
                for (j, (bound, cum)) in buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    if *bound == u64::MAX {
                        let _ = write!(out, "[null,{cum}]");
                    } else {
                        let _ = write!(out, "[{bound},{cum}]");
                    }
                }
                let _ = write!(out, "],\"sum\":{sum},\"count\":{count}");
                for (key, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
                    match quantile_from_cumulative(buckets, q) {
                        Some(v) if v.is_finite() => {
                            let _ = write!(out, ",\"{key}\":{v:.1}");
                        }
                        _ => {
                            let _ = write!(out, ",\"{key}\":null");
                        }
                    }
                }
                out.push('}');
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_identity_by_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("fargo_x_total", &[("core", "a")]);
        let b = reg.counter("fargo_x_total", &[("core", "a")]);
        let other = reg.counter("fargo_x_total", &[("core", "b")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_is_normalised() {
        let reg = Registry::new();
        let a = reg.counter("m", &[("x", "1"), ("a", "2")]);
        let b = reg.counter("m", &[("a", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn gauge_roundtrips_f64() {
        let reg = Registry::new();
        let g = reg.gauge("fargo_load", &[]);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-0.25);
        assert_eq!(g.get(), -0.25);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[], &[10, 20]);
        // A value exactly on a bound lands in that bound's bucket (le
        // semantics), one past it in the next.
        h.observe(10);
        h.observe(11);
        h.observe(20);
        h.observe(21);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets, vec![(10, 1), (20, 3), (u64::MAX, 4)]);
        assert_eq!(h.sum(), 62);
        assert_eq!(h.count(), 4);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic() {
        let reg = Registry::new();
        let _ = reg.counter("same", &[]);
        let _ = reg.gauge("same", &[]);
    }

    #[test]
    fn prometheus_rendering() {
        let reg = Registry::new();
        reg.counter("fargo_msgs_total", &[("kind", "invoke")])
            .add(7);
        reg.gauge("fargo_queue", &[]).set(1.5);
        reg.histogram("fargo_lat_us", &[], &[10]).observe(3);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE fargo_msgs_total counter"));
        assert!(text.contains("fargo_msgs_total{kind=\"invoke\"} 7"));
        assert!(text.contains("fargo_queue 1.5"));
        assert!(text.contains("fargo_lat_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("fargo_lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("fargo_lat_us_sum 3"));
        assert!(text.contains("fargo_lat_us_count 1"));
    }

    #[test]
    fn exposition_is_deterministic_across_registration_orders() {
        let series: &[(&str, &str)] = &[
            ("fargo_b_total", "core1"),
            ("fargo_a_total", "core2"),
            ("fargo_a_total", "core0"),
            ("fargo_b_total", "core0"),
        ];
        let mut reversed: Vec<(&str, &str)> = series.to_vec();
        reversed.reverse();
        let render_both = |order: &[(&str, &str)]| {
            let reg = Registry::new();
            for (i, (name, core)) in order.iter().enumerate() {
                reg.counter(name, &[("core", core)]).add(i as u64 + 1);
            }
            // Same totals regardless of order: re-add to fixed values.
            for (name, core) in order {
                let c = reg.counter(name, &[("core", core)]);
                while c.get() < 10 {
                    c.inc();
                }
            }
            (
                render_snapshots(&reg.snapshot()),
                render_snapshots_json(&reg.snapshot()),
            )
        };
        assert_eq!(render_both(series), render_both(&reversed));
    }

    #[test]
    fn prometheus_histogram_golden_exposition() {
        // The exact conformance contract: one `# TYPE` header, `le`
        // buckets in ascending order ending with `+Inf`, then `_sum`
        // and `_count` — in that order, with labels preserved.
        let reg = Registry::new();
        let h = reg.histogram("fargo_lat_us", &[("core", "c0")], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        assert_eq!(
            reg.render_prometheus(),
            "# TYPE fargo_lat_us histogram\n\
             fargo_lat_us_bucket{core=\"c0\",le=\"10\"} 1\n\
             fargo_lat_us_bucket{core=\"c0\",le=\"100\"} 2\n\
             fargo_lat_us_bucket{core=\"c0\",le=\"+Inf\"} 3\n\
             fargo_lat_us_sum{core=\"c0\"} 555\n\
             fargo_lat_us_count{core=\"c0\"} 3\n"
        );
    }

    #[test]
    fn json_histogram_reports_percentiles() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[], &[10, 100]);
        for _ in 0..100 {
            h.observe(5);
        }
        h.observe(60);
        let json = render_snapshots_json(&reg.snapshot());
        assert!(json.contains("\"p50\":"), "{json}");
        assert!(json.contains("\"p99\":"), "{json}");
        assert!(json.contains("\"p999\":"), "{json}");

        let empty = Registry::new();
        empty.histogram("e", &[], &[10]);
        let json = render_snapshots_json(&empty.snapshot());
        assert!(json.contains("\"p50\":null"), "{json}");
    }

    #[test]
    fn json_histogram_golden_exposition() {
        // The JSON twin of the Prometheus golden test: exact output,
        // including the interpolated quantile fields. p50 of 4
        // observations targets rank 2 — one third into the (10, 100]
        // bucket geometrically, i.e. 10·(100/10)^(1/3) ≈ 21.5 — and
        // p99/p999 target the bucket's top edge, 100.0.
        let reg = Registry::new();
        let h = reg.histogram("fargo_lat_us", &[("core", "c0")], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(50);
        h.observe(50);
        reg.counter("fargo_up_total", &[("core", "c0")]).add(2);
        assert_eq!(
            render_snapshots_json(&reg.snapshot()),
            "[{\"name\":\"fargo_lat_us\",\"labels\":{\"core\":\"c0\"},\"value\":\
             {\"buckets\":[[10,1],[100,4],[null,4]],\"sum\":155,\"count\":4,\
             \"p50\":21.5,\"p99\":100.0,\"p999\":100.0}},\
             {\"name\":\"fargo_up_total\",\"labels\":{\"core\":\"c0\"},\"value\":2}]"
        );
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[], &[10, 100]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(quantile_from_cumulative(&[], 0.5), None);
    }

    #[test]
    fn quantile_interpolates_geometrically() {
        let reg = Registry::new();
        let h = reg.histogram("h", &[], &[10, 100, 1000]);
        // 100 observations in the (10, 100] bucket.
        for _ in 0..100 {
            h.observe(50);
        }
        let p50 = h.quantile(0.5).unwrap();
        // Geometric midpoint of (10, 100] is sqrt(10*100) ≈ 31.6, not
        // the linear 55.
        assert!((10.0..=100.0).contains(&p50), "p50={p50}");
        assert!(p50 < 40.0, "log interpolation expected, got {p50}");
        // Everything in one bucket: quantiles never leave its edges.
        assert!(h.quantile(0.999).unwrap() <= 100.0);
        assert!(h.quantile(0.0).unwrap() >= 10.0 * 0.99);
    }

    #[test]
    fn quantile_edges_single_bucket_overflow_and_bounds() {
        // Single finite bucket.
        let reg = Registry::new();
        let h = reg.histogram("one", &[], &[10]);
        h.observe(3);
        assert!(h.quantile(0.0).unwrap() <= 10.0);
        assert!(h.quantile(1.0).unwrap() <= 10.0);

        // Overflow-only observations clamp to the last finite bound.
        let h = reg.histogram("ovf", &[], &[10, 100]);
        h.observe(5_000);
        assert_eq!(h.quantile(0.5), Some(100.0));
        assert_eq!(h.quantile(1.0), Some(100.0));

        // q outside [0, 1] clamps instead of panicking.
        let h = reg.histogram("clamp", &[], &[10]);
        h.observe(5);
        assert!(h.quantile(-3.0).is_some());
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn windowed_histogram_tracks_recent_vs_lifetime() {
        let reg = Registry::new();
        let h = reg.histogram("w", &[], &[10, 100, 1000, 10_000]);
        let w = WindowedHistogram::new(h.clone(), 8);
        // A slow early era...
        for _ in 0..16 {
            w.observe(5_000);
        }
        // ...then a fast recent one, long enough to rotate the slow
        // epochs fully out of the window.
        for _ in 0..16 {
            w.observe(5);
        }
        let recent = w.quantile_recent(0.99).unwrap();
        let lifetime = w.quantile_lifetime(0.99).unwrap();
        assert!(recent <= 10.0, "recent p99 must be fast: {recent}");
        assert!(
            lifetime > 1_000.0,
            "lifetime p99 keeps the slow era: {lifetime}"
        );
        assert_eq!(h.count(), 32, "lifetime handle still accumulates");
        assert!(w.recent_count() >= 8 && w.recent_count() <= 16);
    }

    #[test]
    fn renderers_sort_unsorted_input() {
        let snaps = vec![
            Snapshot {
                name: "z_total".into(),
                labels: vec![],
                value: MetricValue::Counter(1),
            },
            Snapshot {
                name: "a_total".into(),
                labels: vec![],
                value: MetricValue::Counter(2),
            },
        ];
        let text = render_snapshots(&snaps);
        let a = text.find("a_total").expect("a rendered");
        let z = text.find("z_total").expect("z rendered");
        assert!(a < z, "families must sort by name:\n{text}");
        let json = render_snapshots_json(&snaps);
        assert!(json.find("a_total").unwrap() < json.find("z_total").unwrap());
    }
}
