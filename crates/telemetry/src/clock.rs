//! The time source behind every protocol deadline.
//!
//! Production Cores read wall time (the process-wide trace epoch from
//! [`crate::trace::now_micros`]). Under the deterministic checker the
//! same call reads a shared virtual counter that only moves when the
//! test driver advances it — so hold deadlines, retry budgets, idle
//! retirement, and HLC physical components become pure functions of the
//! schedule rather than of host scheduling jitter.
//!
//! The split that keeps virtual time sound: *protocol deadlines* (what
//! determines a semantic outcome recorded in the journal — hold expiry,
//! RPC timeout, tracker idleness, cache TTL) read this clock, while
//! *liveness bounds* (how long a thread physically blocks on a channel
//! before re-checking) stay on real time. A fault-free virtual run never
//! reaches any deadline, which is exactly what makes one seed replay to
//! one bit-identical journal.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::trace::now_micros;

/// A readable time source: wall time in production, a shared virtual
/// counter under the deterministic checker. Cloning a virtual clock
/// shares the counter, so every Core in a simulated cluster sees the
/// same instant.
#[derive(Clone, Debug, Default)]
pub enum Clock {
    /// Microseconds since the process trace epoch (production).
    #[default]
    Wall,
    /// Microseconds read from a shared counter that only [`Clock::advance`]
    /// moves (deterministic simulation).
    Virtual(Arc<AtomicU64>),
}

impl Clock {
    /// A virtual clock starting at `start_us` microseconds.
    pub fn new_virtual(start_us: u64) -> Clock {
        Clock::Virtual(Arc::new(AtomicU64::new(start_us)))
    }

    /// The current time in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Wall => now_micros(),
            Clock::Virtual(t) => t.load(Ordering::Acquire),
        }
    }

    /// Moves a virtual clock forward by `d`, returning the new now.
    /// On a wall clock this is a no-op (real time cannot be steered).
    pub fn advance(&self, d: Duration) -> u64 {
        match self {
            Clock::Wall => now_micros(),
            Clock::Virtual(t) => {
                t.fetch_add(d.as_micros() as u64, Ordering::AcqRel) + d.as_micros() as u64
            }
        }
    }

    /// Whether this clock is driven by the simulation rather than the OS.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Virtual(_))
    }

    /// `now_us() + d`, saturating — the idiom for protocol deadlines.
    pub fn deadline_us(&self, d: Duration) -> u64 {
        self.now_us().saturating_add(d.as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_moves_on_its_own() {
        let c = Clock::Wall;
        assert!(!c.is_virtual());
        let a = c.now_us();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.now_us() > a);
    }

    #[test]
    fn virtual_clock_only_moves_when_advanced() {
        let c = Clock::new_virtual(1_000);
        assert!(c.is_virtual());
        assert_eq!(c.now_us(), 1_000);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(c.now_us(), 1_000, "real time must not leak in");
        assert_eq!(c.advance(Duration::from_micros(500)), 1_500);
        assert_eq!(c.now_us(), 1_500);
    }

    #[test]
    fn clones_share_the_virtual_counter() {
        let a = Clock::new_virtual(0);
        let b = a.clone();
        a.advance(Duration::from_micros(7));
        assert_eq!(b.now_us(), 7);
    }

    #[test]
    fn deadlines_saturate() {
        let c = Clock::new_virtual(u64::MAX - 10);
        assert_eq!(c.deadline_us(Duration::from_secs(1)), u64::MAX);
    }
}
