//! Tail-based trace retention: a bounded ring that keeps full span
//! trees only for the slowest requests.
//!
//! The sampler is always on and self-thresholding: a finished request is
//! offered to the [`SlowLog`] with its end-to-end latency, and the log
//! retains the top-K slowest it has seen (K = capacity). While the ring
//! has room everything is admitted; once full, a request must beat the
//! fastest retained entry — so the threshold rises and falls with the
//! observed tail, with no static cutoff to tune. Callers can sharpen the
//! gate further by offering only requests above their recent p99
//! (see [`crate::metrics::WindowedHistogram::quantile_recent`]).
//!
//! Each retained entry snapshots the spans the local Core held for the
//! trace at admission time, so the per-hop breakdown survives even after
//! the span ring itself evicts the trace.

use std::sync::Mutex;

use crate::trace::{render_span_tree, SpanRecord};

/// One retained slow request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRecord {
    /// Trace id of the request (for cluster-wide span collection).
    pub trace_id: u64,
    /// Operation name (e.g. `invoke Printer.print`).
    pub name: String,
    /// End-to-end latency in µs as the caller observed it.
    pub total_us: u64,
    /// When the request finished, µs on the shared clock.
    pub at_us: u64,
    /// Local span snapshot taken at admission (per-hop breakdown seed).
    pub spans: Vec<SpanRecord>,
}

/// A bounded top-K-by-latency ring of [`SlowRecord`]s.
#[derive(Debug)]
pub struct SlowLog {
    inner: Mutex<Vec<SlowRecord>>,
    capacity: usize,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest requests.
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            inner: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// Offers a finished request. Returns `true` when retained: always
    /// while the ring has room, otherwise only when slower than the
    /// current fastest retained entry (which is evicted).
    pub fn offer(&self, record: SlowRecord) -> bool {
        let mut g = self.inner.lock().unwrap();
        if g.len() < self.capacity {
            g.push(record);
            g.sort_by_key(|r| std::cmp::Reverse(r.total_us));
            return true;
        }
        // Full: the last entry is the fastest retained (kept sorted).
        let admit = g
            .last()
            .map(|fastest| record.total_us > fastest.total_us)
            .unwrap_or(true);
        if admit {
            g.pop();
            g.push(record);
            g.sort_by_key(|r| std::cmp::Reverse(r.total_us));
        }
        admit
    }

    /// The current admission threshold in µs: a request must exceed this
    /// to be retained. Zero while the ring still has room.
    pub fn threshold_us(&self) -> u64 {
        let g = self.inner.lock().unwrap();
        if g.len() < self.capacity {
            0
        } else {
            g.last().map(|r| r.total_us).unwrap_or(0)
        }
    }

    /// Retained records, slowest first.
    pub fn records(&self) -> Vec<SlowRecord> {
        self.inner.lock().unwrap().clone()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every retained record (shell `slow clear`).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }
}

/// Renders retained slow requests as a numbered list; with `trees`, each
/// entry is followed by its retained span tree (the per-hop breakdown).
pub fn render_slow_log(records: &[SlowRecord], trees: bool) -> String {
    if records.is_empty() {
        return "(no slow requests retained)\n".to_string();
    }
    let mut out = String::new();
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "#{i} {name}  total {total}us  trace {id:#x}\n",
            name = r.name,
            total = r.total_us,
            id = r.trace_id,
        ));
        if trees {
            for line in render_span_tree(&r.spans).lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: u64, total: u64) -> SlowRecord {
        SlowRecord {
            trace_id: trace,
            name: format!("op{trace}"),
            total_us: total,
            at_us: total,
            spans: Vec::new(),
        }
    }

    #[test]
    fn admits_everything_until_full() {
        let log = SlowLog::new(3);
        assert!(log.offer(rec(1, 10)));
        assert!(log.offer(rec(2, 5)));
        assert!(log.offer(rec(3, 20)));
        assert_eq!(log.len(), 3);
        assert_eq!(log.threshold_us(), 5);
    }

    #[test]
    fn full_ring_keeps_only_the_slowest() {
        let log = SlowLog::new(2);
        log.offer(rec(1, 10));
        log.offer(rec(2, 30));
        assert!(!log.offer(rec(3, 5)), "faster than threshold: rejected");
        assert!(log.offer(rec(4, 50)), "slower: admitted, evicts fastest");
        let totals: Vec<u64> = log.records().iter().map(|r| r.total_us).collect();
        assert_eq!(totals, vec![50, 30], "slowest first, fastest evicted");
        assert_eq!(log.threshold_us(), 30, "threshold rises with the tail");
    }

    #[test]
    fn clear_empties_the_ring() {
        let log = SlowLog::new(2);
        log.offer(rec(1, 10));
        assert!(!log.is_empty());
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.threshold_us(), 0);
    }

    #[test]
    fn rendering_lists_and_breaks_down() {
        let mut r = rec(0x2a, 750);
        r.spans.push(SpanRecord {
            trace_id: 0x2a,
            span_id: 1,
            parent_id: 0,
            name: "invoke s.touch".into(),
            core: "core0".into(),
            start_us: 0,
            duration_us: 750,
        });
        let text = render_slow_log(&[r], true);
        assert!(text.contains("#0 op42  total 750us  trace 0x2a"), "{text}");
        assert!(text.contains("invoke s.touch @core0"), "{text}");
        assert_eq!(render_slow_log(&[], false), "(no slow requests retained)\n");
    }
}
