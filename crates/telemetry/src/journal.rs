//! The distributed flight recorder: a bounded per-Core journal of layout
//! events, each stamped with a hybrid logical clock (HLC).
//!
//! FarGo's monitoring subsystem (§4 of the paper) exists so layout
//! decisions can be *explained*: which complet moved where, why a
//! reference chain grew, which invocation paid for a forward. Counters
//! and spans (PR 1) answer "how much"; the journal answers "in what
//! order". Every layout-changing hot path appends a [`JournalEvent`], and
//! because the HLC piggybacks on every inter-Core envelope, journals
//! pulled from different Cores merge into one causally-consistent global
//! timeline: if event `a` happened-before event `b` (same Core, or
//! connected by a message), then `a.hlc < b.hlc`.
//!
//! # Why HLC rather than Lamport clocks
//!
//! A Lamport clock also respects causality, but its values are opaque
//! counters: a merged timeline cannot be related to wall time, and two
//! causally-unrelated events may order arbitrarily far from their real
//! occurrence. The hybrid clock keeps a physical component (microseconds
//! from [`crate::trace::now_micros`], the same clock spans use) that is
//! never *behind* real time, plus a small logical counter that breaks
//! ties and preserves happened-before when physical clocks are close or
//! skewed. Timestamps therefore sort causally *and* read as times, which
//! the layout observatory needs for "layout at <hlc>" queries.
//!
//! # Bounded buffer, eviction policy
//!
//! The journal is a fixed-capacity ring: an append reserves a slot with a
//! single atomic fetch-add and overwrites the oldest event once the ring
//! wraps. Nothing blocks and nothing grows — a busy Core forgets the
//! distant past rather than stalling the invocation path. The monotone
//! per-Core sequence number survives eviction, so a snapshot can report
//! exactly how many events have been dropped.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::clock::Clock;

/// Logical component saturates at 16 bits (the packed-atomic clock word
/// reserves the low 16 bits for it). In practice the physical component
/// advances every microsecond, so the counter stays tiny.
const LOGICAL_MAX: u32 = 0xFFFF;

/// A hybrid logical clock timestamp: physical microseconds plus a logical
/// tie-breaker. Totally ordered; respects happened-before across Cores
/// when every message carries the sender's clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hlc {
    /// Physical component: microseconds from the process epoch
    /// ([`crate::trace::now_micros`]), never behind the local clock.
    pub wall_us: u64,
    /// Logical component: breaks ties among events in the same
    /// microsecond and carries causality across clock skew.
    pub logical: u32,
}

impl Hlc {
    /// A timestamp strictly before every clock-produced one.
    pub const ZERO: Hlc = Hlc {
        wall_us: 0,
        logical: 0,
    };
}

impl fmt::Display for Hlc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.wall_us, self.logical)
    }
}

impl FromStr for Hlc {
    type Err = String;

    fn from_str(s: &str) -> Result<Hlc, String> {
        let (w, l) = s.split_once('.').unwrap_or((s, "0"));
        let wall_us = w
            .parse::<u64>()
            .map_err(|_| format!("bad HLC wall part {w:?}"))?;
        let logical = l
            .parse::<u32>()
            .map_err(|_| format!("bad HLC logical part {l:?}"))?;
        Ok(Hlc { wall_us, logical })
    }
}

/// One Core's hybrid logical clock. A single packed atomic word (48 bits
/// physical µs, 16 bits logical), advanced by compare-and-swap, so ticks
/// from the receiver loop and application threads never block each other.
#[derive(Debug, Default)]
pub struct HlcClock {
    state: AtomicU64,
    /// Where the physical component comes from: wall time in production,
    /// the checker's virtual counter under deterministic simulation.
    source: Clock,
}

fn pack(wall_us: u64, logical: u32) -> u64 {
    (wall_us << 16) | u64::from(logical.min(LOGICAL_MAX))
}

fn unpack(word: u64) -> (u64, u32) {
    (word >> 16, (word & u64::from(LOGICAL_MAX)) as u32)
}

impl HlcClock {
    pub fn new() -> HlcClock {
        HlcClock::default()
    }

    /// A clock whose physical component reads `source` instead of wall
    /// time. With a virtual source, timestamps are pure functions of the
    /// event order plus explicit `advance` calls.
    pub fn with_source(source: Clock) -> HlcClock {
        HlcClock {
            state: AtomicU64::new(0),
            source,
        }
    }

    /// The current value without advancing the clock.
    pub fn peek(&self) -> Hlc {
        let (wall_us, logical) = unpack(self.state.load(Ordering::Acquire));
        Hlc { wall_us, logical }
    }

    fn advance(&self, f: impl Fn(u64, u32) -> (u64, u32)) -> Hlc {
        loop {
            let cur = self.state.load(Ordering::Acquire);
            let (w, l) = unpack(cur);
            let (nw, nl) = f(w, l);
            let next = pack(nw, nl);
            if self
                .state
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Hlc {
                    wall_us: nw,
                    logical: nl.min(LOGICAL_MAX),
                };
            }
        }
    }

    /// Advances for a local event (journal append or message send) and
    /// returns the new timestamp: strictly greater than every timestamp
    /// this clock handed out before.
    pub fn tick(&self) -> Hlc {
        let pt = self.source.now_us();
        self.advance(|w, l| {
            if pt > w {
                (pt, 0)
            } else {
                (w, l.saturating_add(1))
            }
        })
    }

    /// Merges a timestamp received from a remote Core (the HLC receive
    /// rule), so every local event after this one orders *after* the
    /// sender's events.
    pub fn observe(&self, remote: Hlc) -> Hlc {
        let pt = self.source.now_us();
        self.advance(|w, l| {
            if pt > w && pt > remote.wall_us {
                (pt, 0)
            } else if w > remote.wall_us {
                (w, l.saturating_add(1))
            } else if remote.wall_us > w {
                (remote.wall_us, remote.logical.saturating_add(1))
            } else {
                (w, l.max(remote.logical).saturating_add(1))
            }
        })
    }
}

/// What happened, in the vocabulary of the layout subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JournalKind {
    /// A complet became resident on the recording Core (created here,
    /// arrived by move, or restored after a failed move).
    CompletArrived,
    /// A complet was marshalled out of the recording Core, headed for
    /// `peer`.
    CompletDeparted,
    /// A tracker entry was created (pointing local).
    TrackerCreated,
    /// A tracker was repointed to forward to `peer` after a departure.
    TrackerForwarded,
    /// A tracker skipped intermediate hops (chain shortening, §3.1).
    TrackerShortened,
    /// A tracker entry was retired (complet released or entry collected).
    TrackerRetired,
    /// A marshal-time relocator decision for one reference.
    RelocatorDecision,
    /// An inter-complet reference edge was observed or created.
    RefEdgeCreated,
    /// Reference edges involving a complet were dropped.
    RefEdgeDropped,
    /// An invocation was issued through a reference.
    Invoke,
    /// A tracker served a forward for an in-flight invocation.
    Forward,
    /// An invocation executed on the recording Core.
    Exec,
    /// A move transaction was prepared (installed-but-held at the
    /// destination, or sent by the source).
    MovePrepared,
    /// A prepared move transaction was committed (activated).
    MoveCommitted,
    /// A prepared move transaction was aborted (held state discarded,
    /// or the source restored the departing complets).
    MoveAborted,
    /// A reply could not be sent back to its requester (the lost-reply
    /// half of an at-most-once exchange).
    ReplyDropped,
    /// The adaptive layout planner proposed a plan (subject = plan id,
    /// object = step count, detail = predicted cost delta).
    PlanProposed,
    /// One plan step was handed to the move machinery (subject = complet,
    /// object = plan id, peer = destination node).
    PlanStep,
    /// A planning round ended with no moves to make (subject = plan id,
    /// detail = consecutive stable rounds).
    PlanConverged,
    /// A plan step failed and previously executed steps were undone
    /// (subject = complet or plan id, detail = reason).
    PlanRollback,
    /// A tracker update carrying a stale move epoch was rejected
    /// (subject = complet, object = rejected epoch, detail = current
    /// epoch, peer = the target the stale update wanted).
    TrackerStale,
    /// An SLO alert edge from the health engine (subject = rule name,
    /// object = "firing"/"resolved", detail = the window means vs the
    /// threshold).
    Alert,
    /// A location-shard entry was accepted by the recording Core's
    /// shard (subject = complet, object = the placement node or "gone"
    /// for a tombstone, detail = the move epoch of the entry).
    ShardApplied,
    /// A checkpoint skipped a complet that was not at rest (subject =
    /// complet, detail = the slot state that made it unsnapshotable).
    CheckpointSkipped,
    /// An invocation's effect was made durable before the reply left the
    /// Core (subject = complet, object = method, detail = the returned
    /// value when it is an integer). This is the event the
    /// "no acknowledged state lost" oracle audits.
    ExecAcked,
    /// The write-ahead log was compacted (subject = record count kept,
    /// detail = appends folded away).
    WalCompacted,
    /// A restarted Core began recovery: everything it hosted before the
    /// crash is gone until replayed (the layout observatory clears this
    /// Core's placements and trackers at this point).
    RecoveryStarted,
    /// Recovery re-installed one complet from the write-ahead log
    /// (subject = complet, object = type, detail = re-install epoch).
    RecoveryReplayed,
}

impl JournalKind {
    /// Stable wire/display name.
    pub fn as_str(self) -> &'static str {
        match self {
            JournalKind::CompletArrived => "arrive",
            JournalKind::CompletDeparted => "depart",
            JournalKind::TrackerCreated => "trk_create",
            JournalKind::TrackerForwarded => "trk_forward",
            JournalKind::TrackerShortened => "trk_shorten",
            JournalKind::TrackerRetired => "trk_retire",
            JournalKind::RelocatorDecision => "relocator",
            JournalKind::RefEdgeCreated => "ref_add",
            JournalKind::RefEdgeDropped => "ref_drop",
            JournalKind::Invoke => "invoke",
            JournalKind::Forward => "forward",
            JournalKind::Exec => "exec",
            JournalKind::MovePrepared => "move_prepare",
            JournalKind::MoveCommitted => "move_commit",
            JournalKind::MoveAborted => "move_abort",
            JournalKind::ReplyDropped => "reply_drop",
            JournalKind::PlanProposed => "plan_propose",
            JournalKind::PlanStep => "plan_step",
            JournalKind::PlanConverged => "plan_converge",
            JournalKind::PlanRollback => "plan_rollback",
            JournalKind::TrackerStale => "trk_stale",
            JournalKind::Alert => "alert",
            JournalKind::ShardApplied => "shard_apply",
            JournalKind::CheckpointSkipped => "ckpt_skip",
            JournalKind::ExecAcked => "exec_ack",
            JournalKind::WalCompacted => "wal_compact",
            JournalKind::RecoveryStarted => "recovery_start",
            JournalKind::RecoveryReplayed => "recovered",
        }
    }

    /// Inverse of [`JournalKind::as_str`].
    pub fn parse(s: &str) -> Option<JournalKind> {
        Some(match s {
            "arrive" => JournalKind::CompletArrived,
            "depart" => JournalKind::CompletDeparted,
            "trk_create" => JournalKind::TrackerCreated,
            "trk_forward" => JournalKind::TrackerForwarded,
            "trk_shorten" => JournalKind::TrackerShortened,
            "trk_retire" => JournalKind::TrackerRetired,
            "relocator" => JournalKind::RelocatorDecision,
            "ref_add" => JournalKind::RefEdgeCreated,
            "ref_drop" => JournalKind::RefEdgeDropped,
            "invoke" => JournalKind::Invoke,
            "forward" => JournalKind::Forward,
            "exec" => JournalKind::Exec,
            "move_prepare" => JournalKind::MovePrepared,
            "move_commit" => JournalKind::MoveCommitted,
            "move_abort" => JournalKind::MoveAborted,
            "reply_drop" => JournalKind::ReplyDropped,
            "plan_propose" => JournalKind::PlanProposed,
            "plan_step" => JournalKind::PlanStep,
            "plan_converge" => JournalKind::PlanConverged,
            "plan_rollback" => JournalKind::PlanRollback,
            "trk_stale" => JournalKind::TrackerStale,
            "alert" => JournalKind::Alert,
            "shard_apply" => JournalKind::ShardApplied,
            "ckpt_skip" => JournalKind::CheckpointSkipped,
            "exec_ack" => JournalKind::ExecAcked,
            "wal_compact" => JournalKind::WalCompacted,
            "recovery_start" => JournalKind::RecoveryStarted,
            "recovered" => JournalKind::RecoveryReplayed,
            _ => return None,
        })
    }
}

impl fmt::Display for JournalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One journal entry. The telemetry crate stays dependency-free, so the
/// subject/object are strings (complet ids render as `cN.M`) and Cores
/// are network node indices; callers map indices to names for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEvent {
    /// Hybrid timestamp: the merge key of the global timeline.
    pub hlc: Hlc,
    /// Node index of the recording Core.
    pub core: u32,
    /// Monotone per-Core sequence number (survives ring eviction).
    pub seq: u64,
    pub kind: JournalKind,
    /// Primary subject, usually a complet id.
    pub subject: String,
    /// Secondary subject: type name, method, or edge-target complet id.
    pub object: String,
    /// Extra qualifier: relocator kind for edge/relocator events.
    pub detail: String,
    /// The other node involved (move destination, forward target), if any.
    pub peer: Option<u32>,
}

impl fmt::Display for JournalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} n{} {} {}",
            self.hlc, self.core, self.kind, self.subject
        )?;
        if !self.object.is_empty() {
            write!(f, " {}", self.object)?;
        }
        if !self.detail.is_empty() {
            write!(f, " [{}]", self.detail)?;
        }
        if let Some(p) = self.peer {
            write!(f, " -> n{p}")?;
        }
        Ok(())
    }
}

/// The bounded per-Core event ring.
///
/// Appends are wait-free on the shared state: one atomic fetch-add
/// reserves a slot and the monotone counter doubles as the sequence
/// number; only the slot itself is briefly locked (each slot has its own
/// tiny mutex, uncontended except when the ring wraps onto an in-progress
/// reader). When full, the oldest event is overwritten.
pub struct Journal {
    slots: Box<[Mutex<Option<JournalEvent>>]>,
    cursor: AtomicU64,
    base: u64,
}

impl Journal {
    /// A journal holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Journal {
        Journal::with_base(capacity, 0)
    }

    /// A journal whose first event takes sequence number `base`.
    ///
    /// A crash-restarted Core resumes its journal above the last
    /// sequence its previous incarnation emitted, so merged timelines
    /// (deduplicated on `(core, seq)`) never conflate pre-crash and
    /// post-crash events.
    pub fn with_base(capacity: usize, base: u64) -> Journal {
        let cap = capacity.max(1);
        let slots = (0..cap).map(|_| Mutex::new(None)).collect::<Vec<_>>();
        Journal {
            slots: slots.into_boxed_slice(),
            cursor: AtomicU64::new(base),
            base,
        }
    }

    /// Appends one event, assigning its sequence number. Returns the
    /// sequence assigned.
    pub fn append(&self, mut ev: JournalEvent) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::AcqRel);
        ev.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        let mut guard = self.slots[slot]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard = Some(ev);
        seq
    }

    /// Total number of events ever appended to *this* journal instance
    /// (including evicted ones; a restart base does not count).
    pub fn appended(&self) -> u64 {
        self.cursor.load(Ordering::Acquire) - self.base
    }

    /// The sequence number the next appended event will take.
    pub fn next_seq(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Number of events evicted by ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.appended()
            .saturating_sub(self.slots.len() as u64)
            .min(self.appended())
    }

    /// A copy of the retained events, ordered by sequence number.
    pub fn snapshot(&self) -> Vec<JournalEvent> {
        let mut out: Vec<JournalEvent> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .clone()
            })
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.slots.len())
            .field("appended", &self.appended())
            .finish()
    }
}

/// Merges per-Core journal snapshots into one global timeline, ordered by
/// (HLC, core, seq) and de-duplicated on (core, seq) so overlapping pulls
/// are harmless.
pub fn merge_timelines(batches: impl IntoIterator<Item = Vec<JournalEvent>>) -> Vec<JournalEvent> {
    let mut all: Vec<JournalEvent> = batches.into_iter().flatten().collect();
    all.sort_by_key(|a| (a.hlc, a.core, a.seq));
    all.dedup_by_key(|e| (e.core, e.seq));
    all
}

// --- the layout observatory ------------------------------------------------

/// Reconstructed cluster state at one point in the merged timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutState {
    /// complet id -> node currently hosting it. Complets in transit
    /// (departed, not yet arrived) are absent.
    pub placement: BTreeMap<String, u32>,
    /// Inter-complet reference edges: (source, target, relocator).
    pub refs: BTreeSet<(String, String, String)>,
    /// Tracker topology: (node, complet id) -> forward target
    /// (`None` = points local).
    pub trackers: BTreeMap<(u32, String), Option<u32>>,
}

impl LayoutState {
    fn apply(&mut self, ev: &JournalEvent) {
        match ev.kind {
            JournalKind::CompletArrived => {
                self.placement.insert(ev.subject.clone(), ev.core);
            }
            JournalKind::CompletDeparted => {
                if self.placement.get(&ev.subject) == Some(&ev.core) {
                    self.placement.remove(&ev.subject);
                }
            }
            JournalKind::TrackerCreated => {
                self.trackers.insert((ev.core, ev.subject.clone()), None);
            }
            JournalKind::TrackerForwarded | JournalKind::TrackerShortened => {
                self.trackers.insert((ev.core, ev.subject.clone()), ev.peer);
            }
            JournalKind::TrackerRetired => {
                self.trackers.remove(&(ev.core, ev.subject.clone()));
            }
            JournalKind::RefEdgeCreated => {
                self.refs
                    .insert((ev.subject.clone(), ev.object.clone(), ev.detail.clone()));
            }
            JournalKind::RefEdgeDropped => {
                let s = &ev.subject;
                if ev.object == "*" {
                    self.refs.retain(|(a, b, _)| a != s && b != s);
                } else {
                    self.refs.retain(|(a, b, _)| !(a == s && *b == ev.object));
                }
            }
            JournalKind::RelocatorDecision
            | JournalKind::Invoke
            | JournalKind::Forward
            | JournalKind::Exec
            // Two-phase bookkeeping: placement only changes on the
            // arrival/departure entries, which are journaled separately.
            | JournalKind::MovePrepared
            | JournalKind::MoveCommitted
            | JournalKind::MoveAborted
            | JournalKind::ReplyDropped
            // Planner decisions are commentary on the layout, not layout.
            | JournalKind::PlanProposed
            | JournalKind::PlanStep
            | JournalKind::PlanConverged
            | JournalKind::PlanRollback
            // A rejected stale update changes nothing, by design.
            | JournalKind::TrackerStale
            // Health alerts describe the cluster, not its layout.
            | JournalKind::Alert
            // Shard entries are the naming service's *belief* about the
            // layout; ground truth stays with arrive/depart.
            | JournalKind::ShardApplied
            // Durability bookkeeping; layout changes arrive as the
            // subsequent RecoveryStarted / arrive events.
            | JournalKind::CheckpointSkipped
            | JournalKind::ExecAcked
            | JournalKind::WalCompacted
            | JournalKind::RecoveryReplayed => {}
            JournalKind::RecoveryStarted => {
                // A crash-restarted Core lost everything it hosted; the
                // survivors re-announce themselves as arrivals.
                self.placement.retain(|_, node| *node != ev.core);
                self.trackers.retain(|(node, _), _| *node != ev.core);
            }
        }
    }

    /// Follows a forwarding chain from `(node, complet)`. Returns the
    /// nodes visited (excluding the start) and whether the walk reached
    /// the complet's placement.
    pub fn chain_from(&self, node: u32, complet: &str) -> (Vec<u32>, bool) {
        let mut path = Vec::new();
        let mut cur = node;
        loop {
            if self.placement.get(complet) == Some(&cur) {
                return (path, true);
            }
            match self.trackers.get(&(cur, complet.to_owned())) {
                Some(Some(next)) if !path.contains(next) && *next != cur => {
                    path.push(*next);
                    cur = *next;
                }
                // Local tracker but not placed here (in transit), dead
                // end, or a cycle.
                _ => return (path, false),
            }
        }
    }
}

/// A layout problem surfaced by the anomaly pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// A forwarding chain of `hops` hops from `from` to the complet.
    LongChain {
        complet: String,
        from: u32,
        hops: usize,
        path: Vec<u32>,
    },
    /// A complet bouncing between two Cores.
    PingPong {
        complet: String,
        between: (u32, u32),
        bounces: usize,
    },
    /// A tracker whose forwarding chain never reaches the complet.
    OrphanTracker { complet: String, at: u32 },
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Anomaly::LongChain {
                complet,
                from,
                hops,
                path,
            } => {
                let hopstr: Vec<String> = path.iter().map(|n| format!("n{n}")).collect();
                write!(
                    f,
                    "long-chain {complet}: {hops} hops from n{from} ({})",
                    hopstr.join(" -> ")
                )
            }
            Anomaly::PingPong {
                complet,
                between: (a, b),
                bounces,
            } => write!(
                f,
                "ping-pong {complet}: bounced n{a} <-> n{b} {bounces} times"
            ),
            Anomaly::OrphanTracker { complet, at } => {
                write!(f, "orphan-tracker {complet}: chain from n{at} dead-ends")
            }
        }
    }
}

/// Chains of at least this many hops are flagged by the anomaly pass.
pub const LONG_CHAIN_THRESHOLD: usize = 3;

/// Tunable knobs for the anomaly pass. The defaults reproduce the
/// historical hard-coded behaviour; Cores surface these as `CoreConfig`
/// fields so the planner and tests can tighten or relax them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyThresholds {
    /// Forwarding chains of at least this many hops are flagged.
    pub long_chain_hops: usize,
    /// An arrival sequence needs at least this many A-B-A returns to be
    /// flagged as ping-pong.
    pub ping_pong_returns: usize,
    /// A dead-ended tracker is only flagged once its last tracker event
    /// is at least this many microseconds older than the newest event in
    /// the timeline (0 = flag immediately, the historical behaviour).
    /// Young dead ends are usually just a move still in flight.
    pub orphan_min_age_us: u64,
}

impl Default for AnomalyThresholds {
    fn default() -> AnomalyThresholds {
        AnomalyThresholds {
            long_chain_hops: LONG_CHAIN_THRESHOLD,
            ping_pong_returns: 2,
            orphan_min_age_us: 0,
        }
    }
}

/// The merged, causally-ordered timeline plus reconstruction over it.
#[derive(Debug, Clone, Default)]
pub struct LayoutHistory {
    events: Vec<JournalEvent>,
}

impl LayoutHistory {
    /// Builds a history from any mix of per-Core snapshots; they are
    /// merged, HLC-ordered, and de-duplicated.
    pub fn from_events(events: Vec<JournalEvent>) -> LayoutHistory {
        LayoutHistory {
            events: merge_timelines([events]),
        }
    }

    /// The merged timeline, oldest first.
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Replays the timeline up to and including `at`, reconstructing the
    /// placement map, reference graph, and tracker topology at that
    /// instant.
    pub fn at(&self, at: Hlc) -> LayoutState {
        let mut state = LayoutState::default();
        for ev in self.events.iter().take_while(|e| e.hlc <= at) {
            state.apply(ev);
        }
        state
    }

    /// The state after the whole timeline.
    pub fn final_state(&self) -> LayoutState {
        self.events
            .last()
            .map_or_else(LayoutState::default, |last| self.at(last.hlc))
    }

    /// Flags long forwarding chains, movement ping-pong, and orphaned
    /// trackers in the final state / movement record, using the default
    /// thresholds.
    pub fn anomalies(&self) -> Vec<Anomaly> {
        self.anomalies_with(&AnomalyThresholds::default())
    }

    /// The anomaly pass with explicit thresholds.
    pub fn anomalies_with(&self, thresholds: &AnomalyThresholds) -> Vec<Anomaly> {
        let state = self.final_state();
        let mut out = Vec::new();
        let newest_us = self.events.last().map_or(0, |e| e.hlc.wall_us);
        // Last tracker activity per (node, complet), for the orphan age
        // gate: a chain that dead-ends because a move is mid-flight will
        // have fresh tracker events and should not be flagged yet.
        let mut tracker_seen: BTreeMap<(u32, &str), u64> = BTreeMap::new();
        for ev in &self.events {
            if matches!(
                ev.kind,
                JournalKind::TrackerCreated
                    | JournalKind::TrackerForwarded
                    | JournalKind::TrackerShortened
            ) {
                tracker_seen.insert((ev.core, ev.subject.as_str()), ev.hlc.wall_us);
            }
        }

        // Long chains and orphans: walk every forwarding tracker, report
        // the worst chain per complet plus any dead end.
        let complets: BTreeSet<&String> = state.trackers.keys().map(|(_, c)| c).collect();
        for complet in complets {
            let mut worst: Option<(usize, Anomaly)> = None;
            let mut orphan: Option<Anomaly> = None;
            for (n, c) in state.trackers.keys() {
                if c != complet {
                    continue;
                }
                let (path, reached) = state.chain_from(*n, complet);
                if reached {
                    let beats = worst.as_ref().is_none_or(|(hops, _)| path.len() > *hops);
                    if path.len() >= thresholds.long_chain_hops && beats {
                        worst = Some((
                            path.len(),
                            Anomaly::LongChain {
                                complet: complet.clone(),
                                from: *n,
                                hops: path.len(),
                                path,
                            },
                        ));
                    }
                } else if !path.is_empty() && orphan.is_none() {
                    let last = tracker_seen
                        .get(&(*n, complet.as_str()))
                        .copied()
                        .unwrap_or(0);
                    if newest_us.saturating_sub(last) >= thresholds.orphan_min_age_us {
                        orphan = Some(Anomaly::OrphanTracker {
                            complet: complet.clone(),
                            at: *n,
                        });
                    }
                }
            }
            out.extend(worst.map(|(_, a)| a));
            out.extend(orphan);
        }

        // Ping-pong: a complet whose arrival sequence alternates between
        // two Cores (A, B, A, ...) with at least two returns.
        let mut arrivals: BTreeMap<&str, Vec<u32>> = BTreeMap::new();
        for ev in &self.events {
            if ev.kind == JournalKind::CompletArrived {
                arrivals.entry(&ev.subject).or_default().push(ev.core);
            }
        }
        for (complet, seq) in arrivals {
            let returns = seq
                .windows(3)
                .filter(|w| w[0] == w[2] && w[0] != w[1])
                .count();
            if returns >= thresholds.ping_pong_returns.max(1) {
                let n = seq.len();
                out.push(Anomaly::PingPong {
                    complet: complet.to_string(),
                    between: (seq[n - 2].min(seq[n - 1]), seq[n - 2].max(seq[n - 1])),
                    bounces: returns,
                });
            }
        }
        out
    }
}

// --- JSON exposition -------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a merged timeline as a JSON array, for the experiments runner
/// and any external tooling. One object per event, stable key order.
pub fn render_journal_json(events: &[JournalEvent]) -> String {
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"hlc\":\"{}\",\"core\":{},\"seq\":{},\"kind\":\"{}\",\"subject\":\"{}\",\"object\":\"{}\",\"detail\":\"{}\",\"peer\":{}}}",
            e.hlc,
            e.core,
            e.seq,
            e.kind,
            json_escape(&e.subject),
            json_escape(&e.object),
            json_escape(&e.detail),
            e.peer.map_or_else(|| "null".to_owned(), |p| p.to_string()),
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::now_micros;

    fn ev(hlc: (u64, u32), core: u32, seq: u64, kind: JournalKind, subject: &str) -> JournalEvent {
        JournalEvent {
            hlc: Hlc {
                wall_us: hlc.0,
                logical: hlc.1,
            },
            core,
            seq,
            kind,
            subject: subject.to_owned(),
            object: String::new(),
            detail: String::new(),
            peer: None,
        }
    }

    #[test]
    fn hlc_orders_and_displays() {
        let a = Hlc {
            wall_us: 5,
            logical: 1,
        };
        let b = Hlc {
            wall_us: 5,
            logical: 2,
        };
        let c = Hlc {
            wall_us: 6,
            logical: 0,
        };
        assert!(a < b && b < c);
        assert_eq!(a.to_string(), "5.1");
        assert_eq!("5.1".parse::<Hlc>().unwrap(), a);
        assert_eq!("7".parse::<Hlc>().unwrap().wall_us, 7);
        assert!("x.y".parse::<Hlc>().is_err());
    }

    #[test]
    fn clock_ticks_strictly_monotonically() {
        let clock = HlcClock::new();
        let mut prev = clock.tick();
        for _ in 0..10_000 {
            let next = clock.tick();
            assert!(next > prev, "{next} !> {prev}");
            prev = next;
        }
    }

    #[test]
    fn observe_jumps_past_remote() {
        let clock = HlcClock::new();
        let remote = Hlc {
            wall_us: now_micros() + 1_000_000,
            logical: 7,
        };
        let merged = clock.observe(remote);
        assert!(merged > remote, "{merged} must order after {remote}");
        assert!(clock.tick() > merged);
    }

    #[test]
    fn virtual_source_makes_timestamps_deterministic() {
        let run = || {
            let clock = HlcClock::with_source(Clock::new_virtual(1_000));
            let mut out = vec![clock.tick(), clock.tick()];
            out.push(clock.observe(Hlc {
                wall_us: 2_000,
                logical: 3,
            }));
            out.push(clock.tick());
            out
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "same event order must give identical stamps");
        assert_eq!(a[0].wall_us, 1_000, "physical part is the virtual now");
        assert!(a[2].wall_us == 2_000 && a[2].logical == 4, "receive rule");
    }

    #[test]
    fn stale_kind_round_trips() {
        assert_eq!(
            JournalKind::parse(JournalKind::TrackerStale.as_str()),
            Some(JournalKind::TrackerStale)
        );
    }

    #[test]
    fn alert_kind_round_trips() {
        assert_eq!(
            JournalKind::parse(JournalKind::Alert.as_str()),
            Some(JournalKind::Alert)
        );
    }

    #[test]
    fn shard_apply_kind_round_trips() {
        assert_eq!(
            JournalKind::parse(JournalKind::ShardApplied.as_str()),
            Some(JournalKind::ShardApplied)
        );
    }

    #[test]
    fn durability_kinds_round_trip() {
        for kind in [
            JournalKind::CheckpointSkipped,
            JournalKind::ExecAcked,
            JournalKind::WalCompacted,
            JournalKind::RecoveryStarted,
            JournalKind::RecoveryReplayed,
        ] {
            assert_eq!(JournalKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn journal_base_offsets_sequences() {
        let j = Journal::with_base(4, 100);
        assert_eq!(j.next_seq(), 100);
        let seq = j.append(ev((1, 0), 0, 0, JournalKind::Invoke, "c0.1"));
        assert_eq!(seq, 100);
        assert_eq!(j.appended(), 1, "base does not count as appends");
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.next_seq(), 101);
    }

    #[test]
    fn recovery_start_clears_one_core() {
        let history = LayoutHistory::from_events(vec![
            ev((1, 0), 0, 0, JournalKind::CompletArrived, "c0.1"),
            ev((2, 0), 1, 0, JournalKind::CompletArrived, "c1.1"),
            ev((3, 0), 0, 1, JournalKind::RecoveryStarted, ""),
        ]);
        let state = history.final_state();
        assert!(!state.placement.contains_key("c0.1"), "crashed core wiped");
        assert_eq!(state.placement.get("c1.1"), Some(&1), "peer unaffected");
    }

    #[test]
    fn observe_stale_remote_still_advances() {
        let clock = HlcClock::new();
        let t1 = clock.tick();
        let merged = clock.observe(Hlc::ZERO);
        assert!(merged > t1);
    }

    #[test]
    fn journal_ring_evicts_oldest() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.append(ev((i, 0), 0, 0, JournalKind::Invoke, "c0.1"));
        }
        assert_eq!(j.appended(), 10);
        assert_eq!(j.dropped(), 6);
        let snap = j.snapshot();
        assert_eq!(snap.len(), 4);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, order kept");
    }

    #[test]
    fn merge_orders_by_hlc_and_dedups() {
        let a = vec![
            ev((10, 0), 0, 0, JournalKind::Invoke, "x"),
            ev((30, 0), 0, 1, JournalKind::Exec, "x"),
        ];
        let b = vec![
            ev((20, 0), 1, 0, JournalKind::Forward, "x"),
            ev((30, 0), 0, 1, JournalKind::Exec, "x"), // duplicate pull
        ];
        let merged = merge_timelines([a, b]);
        assert_eq!(merged.len(), 3);
        let kinds: Vec<JournalKind> = merged.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![JournalKind::Invoke, JournalKind::Forward, JournalKind::Exec]
        );
    }

    #[test]
    fn layout_history_replays_placement() {
        let events = vec![
            ev((1, 0), 0, 0, JournalKind::CompletArrived, "c0.1"),
            ev((2, 0), 0, 1, JournalKind::CompletDeparted, "c0.1"),
            ev((3, 0), 1, 0, JournalKind::CompletArrived, "c0.1"),
        ];
        let h = LayoutHistory::from_events(events);
        assert_eq!(
            h.at(Hlc {
                wall_us: 1,
                logical: 0
            })
            .placement
            .get("c0.1"),
            Some(&0)
        );
        assert_eq!(
            h.at(Hlc {
                wall_us: 2,
                logical: 0
            })
            .placement
            .get("c0.1"),
            None,
            "in transit"
        );
        assert_eq!(h.final_state().placement.get("c0.1"), Some(&1));
    }

    #[test]
    fn anomaly_flags_long_chain() {
        let mut events = vec![ev((1, 0), 4, 0, JournalKind::CompletArrived, "c0.1")];
        for n in 0..4u32 {
            let mut e = ev(
                (2 + u64::from(n), 0),
                n,
                0,
                JournalKind::TrackerForwarded,
                "c0.1",
            );
            e.peer = Some(n + 1);
            events.push(e);
        }
        let h = LayoutHistory::from_events(events);
        let anomalies = h.anomalies();
        assert!(
            anomalies.iter().any(|a| matches!(
                a,
                Anomaly::LongChain {
                    hops: 4,
                    from: 0,
                    ..
                }
            )),
            "got {anomalies:?}"
        );
    }

    #[test]
    fn anomaly_flags_ping_pong_and_orphan() {
        let mut events = Vec::new();
        for (i, core) in [0u32, 1, 0, 1].iter().enumerate() {
            events.push(ev(
                (i as u64 + 1, 0),
                *core,
                i as u64,
                JournalKind::CompletArrived,
                "c0.9",
            ));
        }
        // Orphan: a tracker for a complet that is nowhere placed.
        let mut orphan = ev((9, 0), 3, 0, JournalKind::TrackerForwarded, "c9.9");
        orphan.peer = Some(4);
        events.push(orphan);
        let anomalies = LayoutHistory::from_events(events).anomalies();
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::PingPong { bounces: 2, .. })));
        assert!(anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::OrphanTracker { at: 3, .. })));
    }

    #[test]
    fn anomaly_thresholds_are_tunable() {
        // A 2-hop chain: below the default threshold, flagged at 2.
        let mut events = vec![ev((1, 0), 2, 0, JournalKind::CompletArrived, "c0.1")];
        for n in 0..2u32 {
            let mut e = ev(
                (2 + u64::from(n), 0),
                n,
                0,
                JournalKind::TrackerForwarded,
                "c0.1",
            );
            e.peer = Some(n + 1);
            events.push(e);
        }
        let h = LayoutHistory::from_events(events);
        assert!(h.anomalies().is_empty(), "default threshold is 3 hops");
        let tight = AnomalyThresholds {
            long_chain_hops: 2,
            ..AnomalyThresholds::default()
        };
        assert!(h
            .anomalies_with(&tight)
            .iter()
            .any(|a| matches!(a, Anomaly::LongChain { hops: 2, .. })));
    }

    #[test]
    fn young_orphans_respect_min_age() {
        // Tracker dead-ends at wall 100; newest event is at wall 150, so
        // the orphan is 50us old.
        let mut orphan = ev((100, 0), 3, 0, JournalKind::TrackerForwarded, "c9.9");
        orphan.peer = Some(4);
        let marker = ev((150, 0), 0, 0, JournalKind::Invoke, "c0.1");
        let h = LayoutHistory::from_events(vec![orphan, marker]);
        assert!(
            h.anomalies()
                .iter()
                .any(|a| matches!(a, Anomaly::OrphanTracker { .. })),
            "age 0 flags immediately"
        );
        let patient = AnomalyThresholds {
            orphan_min_age_us: 1_000,
            ..AnomalyThresholds::default()
        };
        assert!(
            h.anomalies_with(&patient).is_empty(),
            "a 50us-old dead end is likely a move in flight"
        );
    }

    #[test]
    fn plan_kinds_round_trip_and_do_not_disturb_state() {
        for kind in [
            JournalKind::PlanProposed,
            JournalKind::PlanStep,
            JournalKind::PlanConverged,
            JournalKind::PlanRollback,
        ] {
            assert_eq!(JournalKind::parse(kind.as_str()), Some(kind));
        }
        let events = vec![
            ev((1, 0), 0, 0, JournalKind::CompletArrived, "c0.1"),
            ev((2, 0), 0, 1, JournalKind::PlanStep, "c0.1"),
        ];
        let h = LayoutHistory::from_events(events);
        assert_eq!(h.final_state().placement.get("c0.1"), Some(&0));
    }

    #[test]
    fn journal_json_is_well_formed() {
        let mut e = ev((5, 1), 2, 3, JournalKind::CompletDeparted, "c0.1");
        e.object = "Agent\"x\"".to_owned();
        e.peer = Some(1);
        let json = render_journal_json(&[e]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"hlc\":\"5.1\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("\"peer\":1"));
    }
}
