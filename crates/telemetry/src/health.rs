//! Declarative SLO rules with multi-window burn-rate alerting — the
//! health half of the cluster observatory.
//!
//! A Core feeds one [`HealthSample`] of cumulative counters per monitor
//! tick. The engine turns each sample into a per-rule *tick value* (a
//! rate from the counter deltas, or the latency estimate directly) and
//! keeps a bounded ring of them. A rule fires when both its short
//! window ([`SHORT_WINDOW_TICKS`], catches what is burning *now*) and
//! its long window ([`LONG_WINDOW_TICKS`], proves real budget has been
//! consumed rather than a single-tick blip) average above the
//! threshold; it resolves as soon as the short window recovers, so a
//! fixed incident does not stay red for the rest of the long window.
//! Transitions are returned to the caller for journaling.

use std::collections::VecDeque;

/// Ticks in the fast window: the alert's "is it burning now" test.
pub const SHORT_WINDOW_TICKS: usize = 5;
/// Ticks in the slow window: the alert's "has it burned real budget"
/// test (uses however many samples exist early in a Core's life).
pub const LONG_WINDOW_TICKS: usize = 60;

/// What a rule measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// p99 of the recent invoke-latency window, µs. Threshold in µs.
    P99InvokeUs,
    /// Failed invocations per attempted invocation. Threshold a
    /// fraction in `[0, 1]`.
    ErrorRate,
    /// Requests shed by the bounded worker pool per attempted
    /// invocation. Threshold a fraction.
    ShedRate,
    /// Failed moves per attempted move. Threshold a fraction.
    MoveFailureRate,
}

/// One declarative SLO rule.
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Stable rule name; the journal subject and metric label.
    pub name: String,
    /// The measured signal.
    pub kind: SloKind,
    /// Fires when both window means exceed this.
    pub threshold: f64,
}

impl SloRule {
    pub fn new(name: &str, kind: SloKind, threshold: f64) -> SloRule {
        SloRule {
            name: name.to_owned(),
            kind,
            threshold,
        }
    }
}

/// The default rule set every Core starts with: tail latency under
/// 100ms, errors and sheds under 5% of invokes, move failures under
/// half of attempts.
pub fn default_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule::new("p99-latency", SloKind::P99InvokeUs, 100_000.0),
        SloRule::new("error-rate", SloKind::ErrorRate, 0.05),
        SloRule::new("shed-rate", SloKind::ShedRate, 0.05),
        SloRule::new("move-failure-rate", SloKind::MoveFailureRate, 0.5),
    ]
}

/// Cumulative observability counters at one monitor tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthSample {
    /// p99 of the recent invoke window, µs (None before any invoke).
    pub p99_invoke_us: Option<f64>,
    /// Invocations attempted so far.
    pub invokes: u64,
    /// Invocations failed so far.
    pub errors: u64,
    /// Requests shed by the worker pool so far.
    pub sheds: u64,
    /// Moves attempted so far.
    pub moves: u64,
    /// Moves failed so far.
    pub move_failures: u64,
}

/// A rule's current evaluation, as shown by shell `health`.
#[derive(Debug, Clone)]
pub struct RuleStatus {
    pub name: String,
    pub kind: SloKind,
    pub threshold: f64,
    /// Mean tick value over the short window.
    pub short: f64,
    /// Mean tick value over the long window.
    pub long: f64,
    pub firing: bool,
}

/// An alert edge: a rule started or stopped firing this tick.
#[derive(Debug, Clone)]
pub struct AlertTransition {
    pub rule: String,
    /// `true` on fire, `false` on resolve.
    pub firing: bool,
    pub short: f64,
    pub long: f64,
    pub threshold: f64,
}

struct RuleState {
    rule: SloRule,
    values: VecDeque<f64>,
    firing: bool,
}

impl RuleState {
    fn window_mean(&self, n: usize) -> f64 {
        let take = self.values.len().min(n);
        if take == 0 {
            return 0.0;
        }
        self.values.iter().rev().take(take).sum::<f64>() / take as f64
    }
}

/// Evaluates a rule set against the per-tick sample stream.
pub struct HealthEngine {
    rules: Vec<RuleState>,
    prev: Option<HealthSample>,
}

impl HealthEngine {
    pub fn new(rules: Vec<SloRule>) -> HealthEngine {
        HealthEngine {
            rules: rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    values: VecDeque::with_capacity(LONG_WINDOW_TICKS),
                    firing: false,
                })
                .collect(),
            prev: None,
        }
    }

    /// Folds one tick's sample in; returns the alert edges it caused.
    pub fn observe(&mut self, sample: HealthSample) -> Vec<AlertTransition> {
        let prev = self.prev.unwrap_or_default();
        let rate = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let d_invokes = sample.invokes.saturating_sub(prev.invokes);
        let mut out = Vec::new();
        for state in &mut self.rules {
            let value = match state.rule.kind {
                SloKind::P99InvokeUs => sample.p99_invoke_us.unwrap_or(0.0),
                SloKind::ErrorRate => rate(sample.errors.saturating_sub(prev.errors), d_invokes),
                SloKind::ShedRate => rate(sample.sheds.saturating_sub(prev.sheds), d_invokes),
                SloKind::MoveFailureRate => rate(
                    sample.move_failures.saturating_sub(prev.move_failures),
                    sample.moves.saturating_sub(prev.moves),
                ),
            };
            if state.values.len() == LONG_WINDOW_TICKS {
                state.values.pop_front();
            }
            state.values.push_back(value);
            let short = state.window_mean(SHORT_WINDOW_TICKS);
            let long = state.window_mean(LONG_WINDOW_TICKS);
            let edge = if !state.firing {
                (short > state.rule.threshold && long > state.rule.threshold).then_some(true)
            } else {
                (short <= state.rule.threshold).then_some(false)
            };
            if let Some(firing) = edge {
                state.firing = firing;
                out.push(AlertTransition {
                    rule: state.rule.name.clone(),
                    firing,
                    short,
                    long,
                    threshold: state.rule.threshold,
                });
            }
        }
        self.prev = Some(sample);
        out
    }

    /// Every rule's current windows and firing state.
    pub fn status(&self) -> Vec<RuleStatus> {
        self.rules
            .iter()
            .map(|s| RuleStatus {
                name: s.rule.name.clone(),
                kind: s.rule.kind,
                threshold: s.rule.threshold,
                short: s.window_mean(SHORT_WINDOW_TICKS),
                long: s.window_mean(LONG_WINDOW_TICKS),
                firing: s.firing,
            })
            .collect()
    }
}

impl std::fmt::Debug for HealthEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthEngine")
            .field("rules", &self.rules.len())
            .field("firing", &self.rules.iter().filter(|r| r.firing).count())
            .finish()
    }
}

/// Renders rule statuses as the shell `health` pane.
pub fn render_health(statuses: &[RuleStatus]) -> String {
    let mut out = String::new();
    for s in statuses {
        let state = if s.firing { "FIRING" } else { "ok" };
        out.push_str(&format!(
            "{:<20} {:<6} short={:.3} long={:.3} threshold={:.3}\n",
            s.name, state, s.short, s.long, s.threshold
        ));
    }
    if statuses.is_empty() {
        out.push_str("no SLO rules configured\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(invokes: u64, errors: u64) -> HealthSample {
        HealthSample {
            invokes,
            errors,
            ..HealthSample::default()
        }
    }

    #[test]
    fn sustained_burn_fires_and_recovery_resolves() {
        let mut e = HealthEngine::new(vec![SloRule::new("err", SloKind::ErrorRate, 0.05)]);
        // 5 clean ticks, then a sustained 50% error burn.
        let mut invokes = 0;
        let mut errors = 0;
        for _ in 0..5 {
            invokes += 100;
            assert!(e.observe(sample(invokes, errors)).is_empty());
        }
        let mut fired = false;
        for _ in 0..SHORT_WINDOW_TICKS {
            invokes += 100;
            errors += 50;
            for t in e.observe(sample(invokes, errors)) {
                assert!(t.firing, "first edge must be a fire");
                assert!(t.short > 0.05 && t.long > 0.05, "{t:?}");
                fired = true;
            }
        }
        assert!(fired, "sustained 50% errors must fire the 5% rule");
        assert!(e.status()[0].firing);
        // Recovery: clean ticks resolve once the short window drains.
        let mut resolved = false;
        for _ in 0..SHORT_WINDOW_TICKS + 1 {
            invokes += 100;
            for t in e.observe(sample(invokes, errors)) {
                assert!(!t.firing);
                resolved = true;
            }
        }
        assert!(resolved, "clean short window must resolve the alert");
        assert!(!e.status()[0].firing);
    }

    #[test]
    fn single_tick_spike_does_not_fire() {
        let mut e = HealthEngine::new(vec![SloRule::new("err", SloKind::ErrorRate, 0.05)]);
        // A long clean history, then one 100%-error tick: the long
        // window absorbs it (1 bad tick / 60 < 5%), so no alert.
        let mut invokes = 0;
        for _ in 0..LONG_WINDOW_TICKS {
            invokes += 100;
            assert!(e.observe(sample(invokes, 0)).is_empty());
        }
        invokes += 100;
        assert!(
            e.observe(sample(invokes, 100)).is_empty(),
            "one spike must not page"
        );
        assert!(!e.status()[0].firing);
    }

    #[test]
    fn latency_rule_reads_the_p99_estimate() {
        let mut e = HealthEngine::new(vec![SloRule::new("p99", SloKind::P99InvokeUs, 1_000.0)]);
        let slow = HealthSample {
            p99_invoke_us: Some(5_000.0),
            ..HealthSample::default()
        };
        let mut fired = false;
        for _ in 0..SHORT_WINDOW_TICKS {
            fired |= e.observe(slow).iter().any(|t| t.firing);
        }
        assert!(fired, "sustained 5ms p99 breaches the 1ms rule");
    }

    #[test]
    fn move_failure_rate_uses_move_attempts() {
        let mut e = HealthEngine::new(vec![SloRule::new("mv", SloKind::MoveFailureRate, 0.5)]);
        let mut s = HealthSample::default();
        let mut fired = false;
        for _ in 0..SHORT_WINDOW_TICKS {
            s.moves += 2;
            s.move_failures += 2;
            fired |= e.observe(s).iter().any(|t| t.firing);
        }
        assert!(fired, "all moves failing breaches the 50% rule");
        assert!(render_health(&e.status()).contains("FIRING"));
    }

    #[test]
    fn defaults_cover_the_four_signals() {
        let rules = default_slo_rules();
        assert_eq!(rules.len(), 4);
        let mut e = HealthEngine::new(rules);
        assert!(e.observe(HealthSample::default()).is_empty());
        assert!(render_health(&e.status()).contains("p99-latency"));
        assert!(render_health(&[]).contains("no SLO rules"));
    }
}
