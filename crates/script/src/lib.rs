//! # fargo-script — the FarGo layout scripting language
//!
//! The paper's §4.3 describes an external, event-driven scripting
//! interface for relocation programming: scripts are sets of
//! *event–action* rules that administrators attach to a running
//! application — after deployment, without touching application code.
//!
//! This crate implements that language: a lexer, parser, and interpreter
//! whose rules subscribe to Core monitoring events and whose actions
//! issue layout commands. The paper's own example runs verbatim:
//!
//! ```text
//! $coreList = %1
//! $targetCore = %2
//! $comps = %3
//! on shutdown firedby $core
//!  listenAt $coreList do
//!   move completsIn $core to $targetCore
//! end
//! on methodInvokeRate(3)
//!   from $comps[0] to $comps[1] do
//!  move $comps[0] to coreOf $comps[1]
//! end
//! ```
//!
//! ## Language summary
//!
//! * `$name = expr` — bind a script variable; `%1`, `%2`, … are the
//!   positional parameters supplied by the administrator at load time.
//! * `on <event> [modifiers] [listenAt expr] do <actions> end` — a rule.
//!   Events are `shutdown`, `arrived`, `departed`, or any profiling
//!   service (`methodInvokeRate(3)`, `completLoad(10)`,
//!   `bandwidth below(1000) towards $core`, …). `firedby $var` binds the
//!   name of the Core that fired the event inside the action body.
//! * Actions: `move <target> to <dest>` where the target may be
//!   `completsIn $core` and the destination `coreOf $comp`; `unbind`/
//!   custom actions may be registered on the engine
//!   ([`ScriptEngine::register_action`]), mirroring the paper's
//!   user-defined (Java) action classes.
//!
//! ## Example
//!
//! ```
//! # use fargo_core::{Core, CompletRegistry};
//! # use simnet::{Network, NetworkConfig, LinkConfig};
//! use fargo_script::{ScriptEngine, ScriptValue};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let net = Network::new(NetworkConfig::default());
//! # let registry = CompletRegistry::new();
//! # let admin = Core::builder(&net, "admin").registry(&registry).spawn()?;
//! let engine = ScriptEngine::new(admin.clone());
//! let script = engine.load(
//!     "$cores = %1\non arrived firedby $core listenAt $cores do log $core end",
//!     vec![ScriptValue::List(vec![ScriptValue::Str("admin".into())])],
//! )?;
//! script.cancel();
//! # admin.stop();
//! # Ok(())
//! # }
//! ```

mod ast;
mod error;
mod interp;
mod lexer;
mod parser;
mod value;

pub use ast::{Action, EventSpec, Expr, Rule, Script, Stmt};
pub use error::ScriptError;
pub use interp::{ActionCtx, LoadedScript, ScriptEngine};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;
pub use value::ScriptValue;
