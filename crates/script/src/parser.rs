//! Recursive-descent parser for the layout scripting language.
//!
//! Grammar (EBNF-ish):
//!
//! ```text
//! script    := { assign | rule }
//! assign    := VAR '=' expr
//! rule      := 'on' event [ 'listenAt' expr ] 'do' { action } 'end'
//! event     := IDENT [ '(' NUMBER ')' ] [ 'below' '(' NUMBER ')' ]
//!              { 'firedby' VAR | 'from' expr | 'to' expr | 'towards' expr }
//! action    := 'move' expr 'to' expr
//!            | IDENT { expr }
//! expr      := STRING | NUMBER | PARAM
//!            | VAR [ '[' NUMBER ']' ]
//!            | 'completsIn' expr | 'coreOf' expr
//! ```

use crate::ast::{Action, EventSpec, Expr, Rule, Script, Stmt};
use crate::error::ScriptError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a script source into its AST.
///
/// # Errors
///
/// Returns [`ScriptError::Lex`] or [`ScriptError::Parse`] with the source
/// line of the problem.
pub fn parse(src: &str) -> Result<Script, ScriptError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !p.at_end() {
        stmts.push(p.stmt()?);
    }
    Ok(Script { stmts })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err(&self, message: impl Into<String>) -> ScriptError {
        ScriptError::Parse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(TokenKind::Ident(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ScriptError> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), ScriptError> {
        if self.peek() == Some(&kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn number(&mut self) -> Result<f64, ScriptError> {
        match self.next() {
            Some(TokenKind::Number(n)) => Ok(n),
            _ => Err(self.err("expected a number")),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ScriptError> {
        match self.peek() {
            Some(TokenKind::Var(_)) => {
                let Some(TokenKind::Var(name)) = self.next() else {
                    unreachable!("peeked a var");
                };
                self.expect(TokenKind::Equals, "'=' after variable")?;
                let value = self.expr()?;
                Ok(Stmt::Assign { name, value })
            }
            Some(TokenKind::Ident(w)) if w == "on" => {
                self.pos += 1;
                Ok(Stmt::Rule(self.rule()?))
            }
            _ => Err(self.err("expected an assignment or an 'on' rule")),
        }
    }

    fn rule(&mut self) -> Result<Rule, ScriptError> {
        let event = self.event_spec()?;
        let listen_at = if self.eat_ident("listenAt") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_ident("do")?;
        let mut actions = Vec::new();
        while !self.eat_ident("end") {
            if self.at_end() {
                return Err(self.err("rule is missing 'end'"));
            }
            actions.push(self.action()?);
        }
        Ok(Rule {
            event,
            listen_at,
            actions,
        })
    }

    fn event_spec(&mut self) -> Result<EventSpec, ScriptError> {
        let name = match self.next() {
            Some(TokenKind::Ident(w)) => w,
            _ => return Err(self.err("expected an event name after 'on'")),
        };
        let mut spec = EventSpec {
            name,
            threshold: None,
            below: false,
            firedby: None,
            from: None,
            to: None,
            towards: None,
        };
        if self.peek() == Some(&TokenKind::LParen) {
            self.pos += 1;
            spec.threshold = Some(self.number()?);
            self.expect(TokenKind::RParen, "')'")?;
        }
        loop {
            if self.eat_ident("below") {
                self.expect(TokenKind::LParen, "'(' after below")?;
                spec.threshold = Some(self.number()?);
                spec.below = true;
                self.expect(TokenKind::RParen, "')'")?;
            } else if self.eat_ident("firedby") {
                match self.next() {
                    Some(TokenKind::Var(v)) => spec.firedby = Some(v),
                    _ => return Err(self.err("expected a $variable after 'firedby'")),
                }
            } else if self.eat_ident("from") {
                spec.from = Some(self.expr()?);
            } else if self.eat_ident("to") {
                spec.to = Some(self.expr()?);
            } else if self.eat_ident("towards") {
                spec.towards = Some(self.expr()?);
            } else {
                break;
            }
        }
        Ok(spec)
    }

    fn action(&mut self) -> Result<Action, ScriptError> {
        if self.eat_ident("move") {
            let target = self.expr()?;
            self.expect_ident("to")?;
            let dest = self.expr()?;
            return Ok(Action::Move { target, dest });
        }
        let name = match self.next() {
            Some(TokenKind::Ident(w)) => w,
            _ => return Err(self.err("expected an action name")),
        };
        // Arguments run until the next action keyword, 'end', or a
        // non-expression token.
        let mut args = Vec::new();
        while self.starts_expr() {
            args.push(self.expr()?);
        }
        Ok(Action::Custom { name, args })
    }

    fn starts_expr(&self) -> bool {
        match self.peek() {
            Some(TokenKind::Str(_))
            | Some(TokenKind::Number(_))
            | Some(TokenKind::Var(_))
            | Some(TokenKind::Param(_)) => true,
            Some(TokenKind::Ident(w)) => w == "completsIn" || w == "coreOf",
            _ => false,
        }
    }

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        if self.eat_ident("completsIn") {
            return Ok(Expr::CompletsIn(Box::new(self.expr()?)));
        }
        if self.eat_ident("coreOf") {
            return Ok(Expr::CoreOf(Box::new(self.expr()?)));
        }
        match self.next() {
            Some(TokenKind::Str(s)) => Ok(Expr::Str(s)),
            Some(TokenKind::Number(n)) => Ok(Expr::Num(n)),
            Some(TokenKind::Param(n)) => Ok(Expr::Param(n)),
            Some(TokenKind::Var(name)) => {
                if self.peek() == Some(&TokenKind::LBracket) {
                    self.pos += 1;
                    let idx = self.number()? as usize;
                    self.expect(TokenKind::RBracket, "']'")?;
                    Ok(Expr::Index(name, idx))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The verbatim script from the paper's §4.3.
    pub const PAPER_SCRIPT: &str = r#"
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
"#;

    #[test]
    fn parses_the_paper_script() {
        let script = parse(PAPER_SCRIPT).unwrap();
        assert_eq!(script.stmts.len(), 5);
        let Stmt::Rule(r1) = &script.stmts[3] else {
            panic!("stmt 3 must be the reliability rule");
        };
        assert_eq!(r1.event.name, "shutdown");
        assert_eq!(r1.event.firedby.as_deref(), Some("core"));
        assert!(r1.listen_at.is_some());
        assert_eq!(r1.actions.len(), 1);
        assert!(matches!(
            &r1.actions[0],
            Action::Move {
                target: Expr::CompletsIn(_),
                dest: Expr::Var(v)
            } if v == "targetCore"
        ));

        let Stmt::Rule(r2) = &script.stmts[4] else {
            panic!("stmt 4 must be the performance rule");
        };
        assert_eq!(r2.event.name, "methodInvokeRate");
        assert_eq!(r2.event.threshold, Some(3.0));
        assert!(!r2.event.below);
        assert_eq!(r2.event.from, Some(Expr::Index("comps".into(), 0)));
        assert_eq!(r2.event.to, Some(Expr::Index("comps".into(), 1)));
        assert!(matches!(
            &r2.actions[0],
            Action::Move {
                target: Expr::Index(v, 0),
                dest: Expr::CoreOf(_)
            } if v == "comps"
        ));
    }

    #[test]
    fn below_threshold_events() {
        let s = parse("on bandwidth below(1000) towards $peer do log $peer end").unwrap();
        let Stmt::Rule(r) = &s.stmts[0] else { panic!() };
        assert_eq!(r.event.threshold, Some(1000.0));
        assert!(r.event.below);
        assert_eq!(r.event.towards, Some(Expr::Var("peer".into())));
        assert!(
            matches!(&r.actions[0], Action::Custom { name, args } if name == "log" && args.len() == 1)
        );
    }

    #[test]
    fn multiple_actions_per_rule() {
        let s =
            parse("on arrived do log \"got one\" move $a to \"core1\" log \"done\" end").unwrap();
        let Stmt::Rule(r) = &s.stmts[0] else { panic!() };
        assert_eq!(r.actions.len(), 3);
    }

    #[test]
    fn parse_errors_have_lines() {
        match parse("on\n\nmove").unwrap_err() {
            ScriptError::Parse { line, .. } => assert!(line >= 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse("$x 5").is_err());
        assert!(parse("on arrived do move $a end").is_err()); // missing 'to'
        assert!(parse("on arrived do log $a").is_err()); // missing 'end'
        assert!(parse("move $a to $b").is_err()); // action outside a rule
    }

    #[test]
    fn custom_action_argument_boundaries() {
        // Args stop at the next keyword-looking token that isn't an expr.
        let s = parse("on arrived do notify $a 3 \"x\" move $b to $c end").unwrap();
        let Stmt::Rule(r) = &s.stmts[0] else { panic!() };
        assert_eq!(r.actions.len(), 2);
        assert!(
            matches!(&r.actions[0], Action::Custom { name, args } if name == "notify" && args.len() == 3)
        );
    }
}
