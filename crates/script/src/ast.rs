//! Abstract syntax of the layout scripting language.

/// A parsed script: assignments and rules, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct Script {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

/// One top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `$name = expr`
    Assign {
        /// Variable name (without the `$`).
        name: String,
        /// Bound expression.
        value: Expr,
    },
    /// `on … do … end`
    Rule(Rule),
}

/// An event–action rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// What to listen for.
    pub event: EventSpec,
    /// Cores to install the listener at; empty means the engine's own
    /// attached Core (plus, for reference-rate events, the source's host).
    pub listen_at: Option<Expr>,
    /// Actions executed when the event fires.
    pub actions: Vec<Action>,
}

/// The event half of a rule.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Event or profiling-service name (`shutdown`, `arrived`,
    /// `methodInvokeRate`, `completLoad`, …).
    pub name: String,
    /// Threshold for profiling events (`methodInvokeRate(3)`).
    pub threshold: Option<f64>,
    /// `true` for `below(x)` thresholds; default is at-or-above.
    pub below: bool,
    /// `firedby $var`: bind the firing Core's name in the action scope.
    pub firedby: Option<String>,
    /// `from expr`: the reference's source complet (rate events).
    pub from: Option<Expr>,
    /// `to expr`: the reference's target complet (rate events).
    pub to: Option<Expr>,
    /// `towards expr`: the peer core (bandwidth/latency events).
    pub towards: Option<Expr>,
}

/// One action in a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `move <target> to <dest>`
    Move {
        /// What to move.
        target: Expr,
        /// Where to.
        dest: Expr,
    },
    /// Any other action name with positional arguments — dispatched to
    /// built-ins (`log`, `shutdown`) or user-registered handlers.
    Custom {
        /// The action name.
        name: String,
        /// Evaluated arguments.
        args: Vec<Expr>,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// String literal.
    Str(String),
    /// Number literal.
    Num(f64),
    /// `$name`
    Var(String),
    /// `$name[i]`
    Index(String, usize),
    /// `%n` — positional parameter (1-based).
    Param(usize),
    /// `completsIn <expr>` — all complets hosted at a Core.
    CompletsIn(Box<Expr>),
    /// `coreOf <expr>` — the Core currently hosting a complet.
    CoreOf(Box<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_compare_structurally() {
        let a = Expr::CompletsIn(Box::new(Expr::Var("core".into())));
        let b = Expr::CompletsIn(Box::new(Expr::Var("core".into())));
        assert_eq!(a, b);
        assert_ne!(a, Expr::Var("core".into()));
    }
}
