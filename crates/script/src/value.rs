//! Runtime values of the scripting language.

use std::fmt;

use fargo_core::{BoundRef, CompletRef, RefDescriptor};

use crate::error::ScriptError;

/// A value a script expression can evaluate to.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptValue {
    /// A string — Core names, labels.
    Str(String),
    /// A number — thresholds, indices.
    Num(f64),
    /// A list — Core lists, complet lists.
    List(Vec<ScriptValue>),
    /// A complet reference.
    Complet(RefDescriptor),
}

impl ScriptValue {
    /// A human-readable type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ScriptValue::Str(_) => "string",
            ScriptValue::Num(_) => "number",
            ScriptValue::List(_) => "list",
            ScriptValue::Complet(_) => "complet",
        }
    }

    /// Interprets the value as a Core name.
    ///
    /// # Errors
    ///
    /// Fails unless the value is a string.
    pub fn as_core_name(&self) -> Result<&str, ScriptError> {
        match self {
            ScriptValue::Str(s) => Ok(s),
            other => Err(ScriptError::TypeMismatch {
                expected: "a core name",
                got: other.type_name().to_owned(),
            }),
        }
    }

    /// Interprets the value as a complet reference.
    ///
    /// # Errors
    ///
    /// Fails unless the value is a complet.
    pub fn as_complet(&self) -> Result<CompletRef, ScriptError> {
        match self {
            ScriptValue::Complet(d) => Ok(CompletRef::from_descriptor(d.clone())),
            other => Err(ScriptError::TypeMismatch {
                expected: "a complet",
                got: other.type_name().to_owned(),
            }),
        }
    }

    /// The complets inside this value: a single complet, or every complet
    /// in a list. Used by `move`.
    ///
    /// # Errors
    ///
    /// Fails when the value holds no complets.
    pub fn complets(&self) -> Result<Vec<CompletRef>, ScriptError> {
        match self {
            ScriptValue::Complet(d) => Ok(vec![CompletRef::from_descriptor(d.clone())]),
            ScriptValue::List(items) => items.iter().map(ScriptValue::as_complet).collect(),
            other => Err(ScriptError::TypeMismatch {
                expected: "a complet or a list of complets",
                got: other.type_name().to_owned(),
            }),
        }
    }
}

impl fmt::Display for ScriptValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptValue::Str(s) => write!(f, "{s}"),
            ScriptValue::Num(n) => write!(f, "{n}"),
            ScriptValue::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            ScriptValue::Complet(d) => write!(f, "{d}"),
        }
    }
}

impl From<&BoundRef> for ScriptValue {
    fn from(b: &BoundRef) -> Self {
        ScriptValue::Complet(b.complet_ref().descriptor())
    }
}

impl From<&CompletRef> for ScriptValue {
    fn from(r: &CompletRef) -> Self {
        ScriptValue::Complet(r.descriptor())
    }
}

impl From<&str> for ScriptValue {
    fn from(s: &str) -> Self {
        ScriptValue::Str(s.to_owned())
    }
}

impl From<f64> for ScriptValue {
    fn from(n: f64) -> Self {
        ScriptValue::Num(n)
    }
}

/// Builds a core-name list: `ScriptValue::from_names(["core0", "core1"])`.
impl<S: Into<String>> FromIterator<S> for ScriptValue {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        ScriptValue::List(
            iter.into_iter()
                .map(|s| ScriptValue::Str(s.into()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fargo_core::CompletId;

    #[test]
    fn coercions() {
        let name = ScriptValue::from("core1");
        assert_eq!(name.as_core_name().unwrap(), "core1");
        assert!(ScriptValue::Num(1.0).as_core_name().is_err());

        let d = RefDescriptor::link(CompletId::new(0, 1), "T", 0);
        let c = ScriptValue::Complet(d.clone());
        assert_eq!(c.as_complet().unwrap().id(), d.target);
        assert_eq!(c.complets().unwrap().len(), 1);

        let list = ScriptValue::List(vec![c.clone(), c]);
        assert_eq!(list.complets().unwrap().len(), 2);
        assert!(ScriptValue::Num(3.0).complets().is_err());
    }

    #[test]
    fn display_forms() {
        let v: ScriptValue = ["a", "b"].into_iter().collect();
        assert_eq!(v.to_string(), "[a, b]");
    }
}
