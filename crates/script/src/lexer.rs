//! Tokenizer for the layout scripting language.

use crate::error::ScriptError;

/// One lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// 1-based source line, for error reporting.
    pub line: usize,
}

/// The kinds of tokens the language has.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare word: keywords and action/event names (`on`, `move`, …).
    Ident(String),
    /// `$name` — a script variable.
    Var(String),
    /// `%3` — a positional parameter.
    Param(usize),
    /// A number literal (integers and decimals).
    Number(f64),
    /// A quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Equals,
    /// `,`
    Comma,
}

/// Tokenizes a script. Comments run from `//` to end of line.
///
/// # Errors
///
/// Returns [`ScriptError::Lex`] on a character that cannot start a token.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ScriptError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(ScriptError::Lex { line, ch: '/' });
                }
            }
            '(' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RParen,
                    line,
                });
            }
            '[' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::LBracket,
                    line,
                });
            }
            ']' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::RBracket,
                    line,
                });
            }
            '=' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Equals,
                    line,
                });
            }
            ',' => {
                chars.next();
                out.push(Token {
                    kind: TokenKind::Comma,
                    line,
                });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some(other) => s.push(other),
                            None => return Err(ScriptError::Lex { line, ch: '\\' }),
                        },
                        Some('\n') => return Err(ScriptError::Lex { line, ch: '\n' }),
                        Some(other) => s.push(other),
                        None => return Err(ScriptError::Lex { line, ch: '"' }),
                    }
                }
                out.push(Token {
                    kind: TokenKind::Str(s),
                    line,
                });
            }
            '$' => {
                chars.next();
                let name = take_word(&mut chars);
                if name.is_empty() {
                    return Err(ScriptError::Lex { line, ch: '$' });
                }
                out.push(Token {
                    kind: TokenKind::Var(name),
                    line,
                });
            }
            '%' => {
                chars.next();
                let digits = take_digits(&mut chars);
                match digits.parse::<usize>() {
                    Ok(n) if !digits.is_empty() => {
                        out.push(Token {
                            kind: TokenKind::Param(n),
                            line,
                        });
                    }
                    _ => return Err(ScriptError::Lex { line, ch: '%' }),
                }
            }
            c if c.is_ascii_digit() => {
                let mut digits = take_digits(&mut chars);
                if chars.peek() == Some(&'.') {
                    chars.next();
                    digits.push('.');
                    digits.push_str(&take_digits(&mut chars));
                }
                let n = digits
                    .parse::<f64>()
                    .map_err(|_| ScriptError::Lex { line, ch: c })?;
                out.push(Token {
                    kind: TokenKind::Number(n),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let word = take_word(&mut chars);
                out.push(Token {
                    kind: TokenKind::Ident(word),
                    line,
                });
            }
            other => return Err(ScriptError::Lex { line, ch: other }),
        }
    }
    Ok(out)
}

fn take_word(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_alphanumeric() || c == '_' {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s
}

fn take_digits(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut s = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_the_paper_example_line() {
        let got = kinds("on methodInvokeRate(3) from $comps[0] to $comps[1] do");
        assert_eq!(
            got,
            vec![
                TokenKind::Ident("on".into()),
                TokenKind::Ident("methodInvokeRate".into()),
                TokenKind::LParen,
                TokenKind::Number(3.0),
                TokenKind::RParen,
                TokenKind::Ident("from".into()),
                TokenKind::Var("comps".into()),
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::RBracket,
                TokenKind::Ident("to".into()),
                TokenKind::Var("comps".into()),
                TokenKind::LBracket,
                TokenKind::Number(1.0),
                TokenKind::RBracket,
                TokenKind::Ident("do".into()),
            ]
        );
    }

    #[test]
    fn params_vars_strings_numbers() {
        let got = kinds("$a = %2 \"hi there\" 3.5");
        assert_eq!(
            got,
            vec![
                TokenKind::Var("a".into()),
                TokenKind::Equals,
                TokenKind::Param(2),
                TokenKind::Str("hi there".into()),
                TokenKind::Number(3.5),
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = tokenize("// header\non\nend").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\nc""#),
            vec![TokenKind::Str("a\"b\nc".into())]
        );
    }

    #[test]
    fn lex_errors_carry_position() {
        match tokenize("on\n  @").unwrap_err() {
            ScriptError::Lex { line, ch } => {
                assert_eq!(line, 2);
                assert_eq!(ch, '@');
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("%x").is_err());
        assert!(tokenize("$ ").is_err());
    }
}
