//! Script errors, with line information for parse-time failures.

use std::error::Error;
use std::fmt;

use fargo_core::FargoError;

/// Errors from loading or running a layout script.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScriptError {
    /// A character that cannot start any token.
    Lex {
        /// 1-based source line.
        line: usize,
        /// The offending character.
        ch: char,
    },
    /// The token stream does not match the grammar.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A `%n` parameter beyond those supplied at load time.
    MissingParam(usize),
    /// An undefined `$variable`.
    UndefinedVar(String),
    /// Index out of bounds or indexing a non-list.
    BadIndex {
        /// The indexed variable.
        var: String,
        /// The requested index.
        index: usize,
    },
    /// A value had the wrong shape for where it was used.
    TypeMismatch {
        /// What the construct needed.
        expected: &'static str,
        /// What it got.
        got: String,
    },
    /// An action name with no built-in or registered handler.
    UnknownAction(String),
    /// A runtime failure reported by the Core.
    Core(FargoError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Lex { line, ch } => {
                write!(f, "line {line}: unexpected character {ch:?}")
            }
            ScriptError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ScriptError::MissingParam(n) => write!(f, "script parameter %{n} was not supplied"),
            ScriptError::UndefinedVar(v) => write!(f, "undefined variable ${v}"),
            ScriptError::BadIndex { var, index } => {
                write!(f, "${var}[{index}] is out of bounds or not a list")
            }
            ScriptError::TypeMismatch { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            ScriptError::UnknownAction(a) => write!(f, "unknown action {a:?}"),
            ScriptError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl Error for ScriptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScriptError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FargoError> for ScriptError {
    fn from(e: FargoError) -> Self {
        ScriptError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ScriptError::Lex { line: 3, ch: '#' }
            .to_string()
            .contains("line 3"));
        assert!(ScriptError::MissingParam(2).to_string().contains("%2"));
        assert!(ScriptError::UndefinedVar("x".into())
            .to_string()
            .contains("$x"));
    }

    #[test]
    fn core_errors_chain() {
        let e = ScriptError::from(FargoError::Timeout);
        assert!(e.source().is_some());
    }
}
