//! The script interpreter: rule installation and action execution.

use std::collections::HashMap;
use std::sync::Arc;

use fargo_core::{Core, EventPayload, RemoteSubscription, Service};
use parking_lot::{Mutex, RwLock};

use crate::ast::{Action, EventSpec, Expr, Rule, Script, Stmt};
use crate::error::ScriptError;
use crate::parser::parse;
use crate::value::ScriptValue;

/// A user-registered action implementation (the paper's "user-defined
/// class, automatically loaded upon its invocation").
pub type ActionHandler =
    Arc<dyn Fn(&ActionCtx, &[ScriptValue]) -> Result<(), ScriptError> + Send + Sync + 'static>;

/// What an executing action can see and do.
pub struct ActionCtx {
    /// The admin Core the engine is attached to; all layout commands are
    /// issued through it.
    pub core: Core,
    /// Name of the Core that fired the triggering event.
    pub fired_core: String,
    /// The averaged value for profile events.
    pub value: Option<f64>,
    log: Arc<Mutex<Vec<String>>>,
}

impl ActionCtx {
    /// Appends a line to the script's log (also what the `log` built-in
    /// action does).
    pub fn log(&self, line: impl Into<String>) {
        self.log.lock().push(line.into());
    }
}

/// The scripting engine: attach to an admin Core, then [`load`] scripts.
///
/// [`load`]: ScriptEngine::load
pub struct ScriptEngine {
    core: Core,
    actions: Arc<RwLock<HashMap<String, ActionHandler>>>,
    log: Arc<Mutex<Vec<String>>>,
}

impl ScriptEngine {
    /// Creates an engine issuing its commands through `core`.
    pub fn new(core: Core) -> Self {
        ScriptEngine {
            core,
            actions: Arc::new(RwLock::new(HashMap::new())),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Registers a custom action usable from scripts by name.
    pub fn register_action(&self, name: &str, handler: ActionHandler) {
        self.actions.write().insert(name.to_owned(), handler);
    }

    /// Whether a custom action is registered under `name`.
    pub fn has_action(&self, name: &str) -> bool {
        self.actions.read().contains_key(name)
    }

    /// Lines produced by `log` actions and rule failures, oldest first.
    pub fn log_lines(&self) -> Vec<String> {
        self.log.lock().clone()
    }

    /// Parses `src`, evaluates its assignments with the given positional
    /// parameters (`%1` is `params[0]`), and installs its rules as live
    /// event subscriptions.
    ///
    /// # Errors
    ///
    /// Fails on lex/parse errors, unresolvable expressions, or
    /// subscription failures; nothing stays installed on failure.
    pub fn load(&self, src: &str, params: Vec<ScriptValue>) -> Result<LoadedScript, ScriptError> {
        let script = parse(src)?;
        self.install(script, params)
    }

    fn install(
        &self,
        script: Script,
        params: Vec<ScriptValue>,
    ) -> Result<LoadedScript, ScriptError> {
        let mut env: HashMap<String, ScriptValue> = HashMap::new();
        let mut subs: Vec<RemoteSubscription> = Vec::new();
        let mut installed = LoadedScript {
            subs: Vec::new(),
            env: HashMap::new(),
            log: self.log.clone(),
        };
        for stmt in script.stmts {
            match stmt {
                Stmt::Assign { name, value } => {
                    let v = self.eval(&value, &env, &params)?;
                    env.insert(name, v);
                }
                Stmt::Rule(rule) => match self.install_rule(&rule, &env, &params) {
                    Ok(mut s) => subs.append(&mut s),
                    Err(e) => {
                        // Roll back everything installed so far.
                        for s in subs {
                            s.cancel();
                        }
                        return Err(e);
                    }
                },
            }
        }
        installed.subs = subs;
        installed.env = env;
        Ok(installed)
    }

    /// Resolves a rule's event selector, threshold, and listen set, then
    /// subscribes at each Core.
    fn install_rule(
        &self,
        rule: &Rule,
        env: &HashMap<String, ScriptValue>,
        params: &[ScriptValue],
    ) -> Result<Vec<RemoteSubscription>, ScriptError> {
        let (selector, default_listen) = self.resolve_event(&rule.event, env, params)?;

        let listen_cores: Vec<String> = match &rule.listen_at {
            Some(expr) => match self.eval(expr, env, params)? {
                ScriptValue::Str(s) => vec![s],
                ScriptValue::List(items) => items
                    .iter()
                    .map(|v| v.as_core_name().map(str::to_owned))
                    .collect::<Result<Vec<_>, _>>()?,
                other => {
                    return Err(ScriptError::TypeMismatch {
                        expected: "a core name or list of core names",
                        got: other.type_name().to_owned(),
                    })
                }
            },
            None => vec![default_listen],
        };

        let handler = self.rule_handler(rule, env, params);
        let mut subs = Vec::new();
        for core_name in listen_cores {
            let sub = self
                .core
                .subscribe_at(
                    &core_name,
                    &selector,
                    rule.event.threshold,
                    !rule.event.below,
                    handler.clone(),
                )
                .map_err(ScriptError::from)?;
            subs.push(sub);
        }
        Ok(subs)
    }

    /// Maps a script event spec to a Core event selector, and computes
    /// the default Core to listen at.
    fn resolve_event(
        &self,
        event: &EventSpec,
        env: &HashMap<String, ScriptValue>,
        params: &[ScriptValue],
    ) -> Result<(String, String), ScriptError> {
        let my_name = self.core.name().to_owned();
        match event.name.as_str() {
            "shutdown" => Ok(("coreShutdown".to_owned(), my_name)),
            "arrived" => Ok(("completArrived".to_owned(), my_name)),
            "departed" => Ok(("completDeparted".to_owned(), my_name)),
            "methodInvokeRate" => {
                let from = event.from.as_ref().ok_or(ScriptError::TypeMismatch {
                    expected: "a 'from' complet on methodInvokeRate",
                    got: "nothing".to_owned(),
                })?;
                let to = event.to.as_ref().ok_or(ScriptError::TypeMismatch {
                    expected: "a 'to' complet on methodInvokeRate",
                    got: "nothing".to_owned(),
                })?;
                let src = self.eval(from, env, params)?.as_complet()?;
                let dst = self.eval(to, env, params)?.as_complet()?;
                let selector = format!("methodInvokeRate:{}->{}", src.id(), dst.id());
                // The rate along a reference is observed at the Core
                // hosting the reference's source.
                let host = self.core.locate(src.id()).map_err(ScriptError::from)?;
                Ok((selector, self.core.core_name_of(host)))
            }
            "bandwidth" | "latency" => {
                let towards = event.towards.as_ref().ok_or(ScriptError::TypeMismatch {
                    expected: "a 'towards' core on bandwidth/latency",
                    got: "nothing".to_owned(),
                })?;
                let peer_name = self.eval(towards, env, params)?;
                let peer_name = peer_name.as_core_name()?;
                let node = self.core.network().node_by_name(peer_name).ok_or_else(|| {
                    ScriptError::Core(fargo_core::FargoError::UnknownCore(peer_name.to_owned()))
                })?;
                Ok((format!("{}:n{}", event.name, node.index()), my_name))
            }
            // Keyless profile services and raw selectors pass through
            // (completLoad, memoryUse, queueLen, or a pre-built selector).
            other => Ok((other.to_owned(), my_name)),
        }
    }

    /// Builds the event callback for a rule.
    fn rule_handler(
        &self,
        rule: &Rule,
        env: &HashMap<String, ScriptValue>,
        params: &[ScriptValue],
    ) -> fargo_core::EventHandler {
        let engine_core = self.core.clone();
        let actions_reg = self.actions.clone();
        let log = self.log.clone();
        let actions = rule.actions.clone();
        let firedby = rule.event.firedby.clone();
        let env = Arc::new(env.clone());
        let params = Arc::new(params.to_vec());

        Arc::new(move |payload: &EventPayload| {
            let mut scope: HashMap<String, ScriptValue> = (*env).clone();
            let fired_core = engine_core.core_name_of(payload.core());
            if let Some(var) = &firedby {
                scope.insert(var.clone(), ScriptValue::Str(fired_core.clone()));
            }
            if let Some(v) = payload.value() {
                scope.insert("value".to_owned(), ScriptValue::Num(v));
            }
            let engine = ScriptEngine {
                core: engine_core.clone(),
                actions: actions_reg.clone(),
                log: log.clone(),
            };
            let ctx = ActionCtx {
                core: engine_core.clone(),
                fired_core,
                value: payload.value(),
                log: log.clone(),
            };
            for action in &actions {
                if let Err(e) = engine.run_action(action, &scope, &params, &ctx) {
                    log.lock().push(format!("rule action failed: {e}"));
                }
            }
        })
    }

    /// Executes one action.
    fn run_action(
        &self,
        action: &Action,
        scope: &HashMap<String, ScriptValue>,
        params: &[ScriptValue],
        ctx: &ActionCtx,
    ) -> Result<(), ScriptError> {
        match action {
            Action::Move { target, dest } => {
                let complets = self.eval(target, scope, params)?.complets()?;
                let dest = self.eval(dest, scope, params)?;
                let dest = dest.as_core_name()?;
                let mut first_err = None;
                for c in complets {
                    if let Err(e) = self.core.move_complet(c.id(), dest, None) {
                        first_err.get_or_insert(ScriptError::Core(e));
                    }
                }
                match first_err {
                    None => Ok(()),
                    Some(e) => Err(e),
                }
            }
            Action::Custom { name, args } => {
                let values: Vec<ScriptValue> = args
                    .iter()
                    .map(|a| self.eval(a, scope, params))
                    .collect::<Result<Vec<_>, _>>()?;
                match name.as_str() {
                    "log" => {
                        let line = values
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join(" ");
                        ctx.log(line);
                        Ok(())
                    }
                    // `retype <complet> <relocator>` — the monitor's
                    // reference-retyping operation, scriptable.
                    "retype" => {
                        let target = values
                            .first()
                            .ok_or(ScriptError::TypeMismatch {
                                expected: "a complet to retype",
                                got: "nothing".to_owned(),
                            })?
                            .as_complet()?;
                        let relocator = values
                            .get(1)
                            .ok_or(ScriptError::TypeMismatch {
                                expected: "a relocator name",
                                got: "nothing".to_owned(),
                            })?
                            .as_core_name()?;
                        self.core.meta_ref(&target).set_relocator(relocator)?;
                        // Propagate to admin-core bindings of the same
                        // target, so `lookup` observes the new type.
                        for (name, bound) in self.core.bindings() {
                            if bound.id() == target.id() {
                                self.core.bind(&name, &target);
                            }
                        }
                        Ok(())
                    }
                    // `bind <name> <complet>` — bind in the admin Core's
                    // naming service.
                    "bind" => {
                        let name = values
                            .first()
                            .ok_or(ScriptError::TypeMismatch {
                                expected: "a name to bind",
                                got: "nothing".to_owned(),
                            })?
                            .as_core_name()?
                            .to_owned();
                        let target = values
                            .get(1)
                            .ok_or(ScriptError::TypeMismatch {
                                expected: "a complet to bind",
                                got: "nothing".to_owned(),
                            })?
                            .as_complet()?;
                        self.core.bind(&name, &target);
                        Ok(())
                    }
                    other => {
                        let handler = self.actions.read().get(other).cloned();
                        match handler {
                            Some(h) => h(ctx, &values),
                            None => Err(ScriptError::UnknownAction(other.to_owned())),
                        }
                    }
                }
            }
        }
    }

    /// Evaluates an expression.
    fn eval(
        &self,
        expr: &Expr,
        env: &HashMap<String, ScriptValue>,
        params: &[ScriptValue],
    ) -> Result<ScriptValue, ScriptError> {
        match expr {
            Expr::Str(s) => Ok(ScriptValue::Str(s.clone())),
            Expr::Num(n) => Ok(ScriptValue::Num(*n)),
            Expr::Param(n) => params
                .get(n.checked_sub(1).ok_or(ScriptError::MissingParam(0))?)
                .cloned()
                .ok_or(ScriptError::MissingParam(*n)),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| ScriptError::UndefinedVar(name.clone())),
            Expr::Index(name, idx) => {
                let v = env
                    .get(name)
                    .ok_or_else(|| ScriptError::UndefinedVar(name.clone()))?;
                match v {
                    ScriptValue::List(items) => {
                        items.get(*idx).cloned().ok_or(ScriptError::BadIndex {
                            var: name.clone(),
                            index: *idx,
                        })
                    }
                    _ => Err(ScriptError::BadIndex {
                        var: name.clone(),
                        index: *idx,
                    }),
                }
            }
            Expr::CompletsIn(inner) => {
                let v = self.eval(inner, env, params)?;
                let core_name = v.as_core_name()?;
                let node = self.core.network().node_by_name(core_name).ok_or_else(|| {
                    ScriptError::Core(fargo_core::FargoError::UnknownCore(core_name.to_owned()))
                })?;
                let items = self
                    .core
                    .complets_at(core_name)
                    .map_err(ScriptError::from)?;
                Ok(ScriptValue::List(
                    items
                        .into_iter()
                        .map(|(id, ty)| {
                            ScriptValue::Complet(fargo_core::RefDescriptor::link(
                                id,
                                ty,
                                node.index(),
                            ))
                        })
                        .collect(),
                ))
            }
            Expr::CoreOf(inner) => {
                let v = self.eval(inner, env, params)?;
                let c = v.as_complet()?;
                let node = self.core.locate(c.id()).map_err(ScriptError::from)?;
                Ok(ScriptValue::Str(self.core.core_name_of(node)))
            }
        }
    }

    /// Convenience: when the selector of a rule names a profiling service,
    /// expose the parsed service (used by tooling and tests).
    pub fn parse_service(selector: &str) -> Option<Service> {
        Service::parse(selector).ok()
    }
}

impl std::fmt::Debug for ScriptEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptEngine")
            .field("core", &self.core.name())
            .field("custom_actions", &self.actions.read().len())
            .finish()
    }
}

/// A script installed by [`ScriptEngine::load`]; dropping it does **not**
/// cancel the rules — call [`LoadedScript::cancel`].
#[derive(Debug)]
pub struct LoadedScript {
    subs: Vec<RemoteSubscription>,
    env: HashMap<String, ScriptValue>,
    log: Arc<Mutex<Vec<String>>>,
}

impl LoadedScript {
    /// Number of live subscriptions this script installed.
    pub fn subscription_count(&self) -> usize {
        self.subs.len()
    }

    /// Value of a top-level script variable after loading.
    pub fn var(&self, name: &str) -> Option<&ScriptValue> {
        self.env.get(name)
    }

    /// Log lines recorded so far (shared with the engine).
    pub fn log_lines(&self) -> Vec<String> {
        self.log.lock().clone()
    }

    /// Cancels every subscription the script installed.
    pub fn cancel(self) {
        for s in self.subs {
            s.cancel();
        }
    }
}
