//! End-to-end script engine tests against live Cores, including the
//! paper's §4.3 example script run verbatim.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use fargo_core::{define_complet, CompletRegistry, Core, CoreConfig, Value};
use fargo_script::{ScriptEngine, ScriptError, ScriptValue};
use simnet::{LinkConfig, Network, NetworkConfig};

define_complet! {
    pub complet Message {
        state { text: String = "hi".to_owned() }
        fn print(&mut self, _ctx, _args) {
            Ok(Value::from(self.text.as_str()))
        }
    }
}

fn cluster(n: usize) -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    });
    let reg = CompletRegistry::new();
    Message::register(&reg);
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(CoreConfig {
                    monitor_tick: Duration::from_millis(10),
                    ..CoreConfig::default()
                })
                .spawn()
                .unwrap()
        })
        .collect();
    (net, cores)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// The paper's example script, verbatim (§4.3).
const PAPER_SCRIPT: &str = r#"
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
"#;

#[test]
fn the_paper_script_reliability_rule_evacuates_a_dying_core() {
    let (_net, cores) = cluster(3);
    // Two complets live on core1, which will shut down; core2 is safe.
    let a = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let b = cores[0].new_complet_at("core1", "Message", &[]).unwrap();

    let engine = ScriptEngine::new(cores[0].clone());
    let script = engine
        .load(
            PAPER_SCRIPT,
            vec![
                // %1: cores whose shutdown we guard against
                ScriptValue::List(vec![ScriptValue::Str("core1".into())]),
                // %2: the safe core
                ScriptValue::Str("core2".into()),
                // %3: the complets the performance rule watches
                ScriptValue::List(vec![(&a).into(), (&b).into()]),
            ],
        )
        .unwrap();
    assert!(script.subscription_count() >= 2);

    // core1 announces shutdown with a grace period; the rule evacuates.
    let dying = cores[1].clone();
    let announcer = std::thread::spawn(move || dying.shutdown(Duration::from_millis(800)));
    assert!(
        wait_until(Duration::from_secs(5), || {
            cores[2].hosts(a.id()) && cores[2].hosts(b.id())
        }),
        "complets must be moved to the safe core; log: {:?}",
        engine.log_lines()
    );
    // Refresh the references while core1's forwarding tracker is still
    // alive (the grace window): chain shortening teaches the stubs the
    // new location — exactly why the paper shortens on return.
    assert_eq!(a.call("print", &[]).unwrap(), Value::from("hi"));
    assert_eq!(b.call("print", &[]).unwrap(), Value::from("hi"));
    announcer.join().unwrap();
    // core1 is now gone; the shortened references go direct to core2,
    // so the application stayed alive across the Core failure.
    assert_eq!(a.call("print", &[]).unwrap(), Value::from("hi"));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn the_paper_script_performance_rule_colocates_chatty_complets() {
    let (_net, cores) = cluster(3);
    // comps[0] on core1, comps[1] on core2; a chatty reference runs
    // between them, so the rule should move comps[0] to core2.
    let src = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let dst = cores[0].new_complet_at("core2", "Message", &[]).unwrap();

    let engine = ScriptEngine::new(cores[0].clone());
    let _script = engine
        .load(
            PAPER_SCRIPT,
            vec![
                ScriptValue::List(vec![]),
                ScriptValue::Str("core0".into()),
                ScriptValue::List(vec![(&src).into(), (&dst).into()]),
            ],
        )
        .unwrap();

    // Drive invocations along src -> dst at well over 3/s.
    // The rate is profiled at core1 (the source's host).
    let src_host = cores[1].clone();
    let src_ref = src.complet_ref().clone();
    let dst_ref = dst.complet_ref().clone();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let s2 = stop.clone();
    let driver = std::thread::spawn(move || {
        // Invoke dst *through* src's host core with src on the chain, so
        // the profiled reference is src -> dst. Simplest faithful way:
        // call dst from core1 as the application; then the key is the
        // app pseudo-complet, not src. Instead, make src itself call dst
        // by invoking a relay… Message has no relay, so instead we count
        // via direct invocation with an explicit chain through invoke on
        // the host core.
        let _ = src_ref;
        while !s2.load(Ordering::SeqCst) {
            let _ = src_host.invoke(&dst_ref, "print", &[]);
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    // The script watches src->dst; our driver produces app->dst at core1.
    // For the observable effect we need the src->dst key, so also record
    // a matching rate by invoking with the src chain via Ctx is not
    // available here. Accept either trigger: wait for the move or a
    // rate-keyed event failure in the log, then assert movement when the
    // selector matched.
    let moved = wait_until(Duration::from_secs(3), || cores[2].hosts(src.id()));
    stop.store(true, Ordering::SeqCst);
    driver.join().unwrap();
    // The app-level driver cannot produce the src->dst key, so the rule
    // must NOT have fired: this asserts key filtering works.
    assert!(!moved, "rule must only fire for the exact reference key");
    for c in &cores {
        c.stop();
    }
}

define_complet! {
    /// A complet that calls a stored peer, producing a src->dst rate key.
    pub complet Chatter {
        state { peer: Option<fargo_core::CompletRef> = None }
        fn set_peer(&mut self, _ctx, args) {
            let d = args.first().and_then(Value::as_ref_desc).cloned().unwrap();
            self.peer = Some(fargo_core::CompletRef::from_descriptor(d));
            Ok(Value::Null)
        }
        fn chat(&mut self, ctx, _args) {
            let p = self.peer.clone().unwrap();
            ctx.call(&p, "print", &[])
        }
    }
}

#[test]
fn performance_rule_fires_on_the_exact_reference() {
    let (_net, cores) = cluster(3);
    Chatter::register(cores[0].registry());
    let src = cores[0].new_complet_at("core1", "Chatter", &[]).unwrap();
    let dst = cores[0].new_complet_at("core2", "Message", &[]).unwrap();
    src.call("set_peer", &[Value::Ref(dst.complet_ref().descriptor())])
        .unwrap();

    let engine = ScriptEngine::new(cores[0].clone());
    let _script = engine
        .load(
            PAPER_SCRIPT,
            vec![
                ScriptValue::List(vec![]),
                ScriptValue::Str("core0".into()),
                ScriptValue::List(vec![(&src).into(), (&dst).into()]),
            ],
        )
        .unwrap();

    // src chats with dst: the src->dst invocation rate rises above 3/s
    // at core1, the rule fires, and src moves to dst's core (core2).
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cores[2].hosts(src.id()) {
        assert!(
            Instant::now() < deadline,
            "rule never moved the chatty source; log: {:?}",
            engine.log_lines()
        );
        let _ = src.call("chat", &[]);
        std::thread::sleep(Duration::from_millis(2));
    }
    // dst stayed put; src joined it.
    assert!(cores[2].hosts(dst.id()));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn assignments_params_and_vars_are_visible() {
    let (_net, cores) = cluster(1);
    let engine = ScriptEngine::new(cores[0].clone());
    let script = engine
        .load(
            "$a = %1\n$b = \"literal\"\n$c = 4.5",
            vec![ScriptValue::Str("param".into())],
        )
        .unwrap();
    assert_eq!(script.var("a"), Some(&ScriptValue::Str("param".into())));
    assert_eq!(script.var("b"), Some(&ScriptValue::Str("literal".into())));
    assert_eq!(script.var("c"), Some(&ScriptValue::Num(4.5)));
    assert_eq!(script.subscription_count(), 0);
    cores[0].stop();
}

#[test]
fn missing_params_and_bad_indices_fail_to_load() {
    let (_net, cores) = cluster(1);
    let engine = ScriptEngine::new(cores[0].clone());
    assert!(matches!(
        engine.load("$a = %2", vec![ScriptValue::Num(1.0)]),
        Err(ScriptError::MissingParam(2))
    ));
    assert!(matches!(
        engine.load(
            "$l = %1\n$x = $l[5]",
            vec![ScriptValue::List(vec![ScriptValue::Num(0.0)])]
        ),
        Err(ScriptError::BadIndex { .. })
    ));
    assert!(matches!(
        engine.load("$x = $ghost", vec![]),
        Err(ScriptError::UndefinedVar(_))
    ));
    cores[0].stop();
}

#[test]
fn log_action_and_firedby_binding() {
    let (_net, cores) = cluster(2);
    let engine = ScriptEngine::new(cores[0].clone());
    let _script = engine
        .load(
            "on arrived firedby $who listenAt \"core1\" do log \"arrival at\" $who end",
            vec![],
        )
        .unwrap();
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        engine.log_lines().iter().any(|l| l == "arrival at core1")
    }));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn custom_actions_extend_the_language() {
    let (_net, cores) = cluster(2);
    let engine = ScriptEngine::new(cores[0].clone());
    let hits = Arc::new(AtomicUsize::new(0));
    let h = hits.clone();
    assert!(!engine.has_action("alert"));
    engine.register_action(
        "alert",
        Arc::new(move |ctx, args| {
            assert_eq!(args.len(), 1);
            ctx.log(format!("alert from {}", ctx.fired_core));
            h.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }),
    );
    assert!(engine.has_action("alert"));
    let _script = engine
        .load("on arrived listenAt \"core1\" do alert \"x\" end", vec![])
        .unwrap();
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        hits.load(Ordering::SeqCst) == 1
    }));
    assert!(engine.log_lines().iter().any(|l| l.contains("core1")));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn unknown_actions_are_reported_in_the_log() {
    let (_net, cores) = cluster(2);
    let engine = ScriptEngine::new(cores[0].clone());
    let _script = engine
        .load("on arrived listenAt \"core1\" do teleport $x end", vec![])
        .unwrap();
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        engine.log_lines().iter().any(|l| l.contains("failed"))
    }));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn cancelled_scripts_stop_reacting() {
    let (_net, cores) = cluster(2);
    let engine = ScriptEngine::new(cores[0].clone());
    let script = engine
        .load(
            "on arrived firedby $who listenAt \"core1\" do log $who end",
            vec![],
        )
        .unwrap();
    script.cancel();
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    std::thread::sleep(Duration::from_millis(150));
    assert!(engine.log_lines().is_empty());
    for c in &cores {
        c.stop();
    }
}

#[test]
fn retype_and_bind_builtin_actions() {
    let (_net, cores) = cluster(2);
    let engine = ScriptEngine::new(cores[0].clone());
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    // On any arrival at core0, retype the parameter complet to pull and
    // bind it under a name — both built-in actions in one rule.
    let _script = engine
        .load(
            "$m = %1\non arrived listenAt \"core0\" do bind \"the-msg\" $m retype $m \"pull\" end",
            vec![ScriptValue::Complet(msg.complet_ref().descriptor())],
        )
        .unwrap();
    // Trigger the rule.
    cores[0].new_complet("Message", &[]).unwrap();
    assert!(
        wait_until(Duration::from_secs(3), || {
            cores[0]
                .lookup("the-msg")
                .map(|r| r.id() == msg.id() && r.relocator() == "pull")
                .unwrap_or(false)
        }),
        "log: {:?}",
        engine.log_lines()
    );
    for c in &cores {
        c.stop();
    }
}
