//! Shell integration tests against a live cluster.

use std::time::Duration;

use fargo_core::{define_complet, CompletRegistry, Core, Value};
use fargo_shell::{Shell, ShellError};
use simnet::{LinkConfig, Network, NetworkConfig};

define_complet! {
    pub complet Message {
        state { text: String = "hello".to_owned() }
        fn print(&mut self, _ctx, _args) {
            Ok(Value::from(self.text.as_str()))
        }
        fn set_text(&mut self, _ctx, args) {
            self.text = args.first().and_then(Value::as_str).unwrap_or("").to_owned();
            Ok(Value::Null)
        }
    }
}

fn setup() -> (Vec<Core>, Shell) {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    });
    let reg = CompletRegistry::new();
    Message::register(&reg);
    let cores: Vec<Core> = (0..3)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .spawn()
                .unwrap()
        })
        .collect();
    let shell = Shell::new(cores[0].clone());
    (cores, shell)
}

#[test]
fn help_lists_commands() {
    let (cores, shell) = setup();
    let help = shell.exec("help").unwrap();
    for cmd in ["cores", "move", "retype", "profile", "script"] {
        assert!(help.contains(cmd), "help must mention {cmd}");
    }
    for c in &cores {
        c.stop();
    }
}

#[test]
fn cores_ls_new_call_move_whereis_roundtrip() {
    let (cores, shell) = setup();

    let out = shell.exec("cores").unwrap();
    assert!(out.contains("core0") && out.contains("core2"));

    let created = shell.exec("new Message at core1 as postbox").unwrap();
    assert!(created.contains("core1"));

    let ls = shell.exec("ls core1").unwrap();
    assert!(ls.contains("Message"));

    assert_eq!(shell.exec("call postbox print").unwrap(), "\"hello\"");
    shell.exec("call postbox set_text goodbye").unwrap();
    assert_eq!(shell.exec("call postbox print").unwrap(), "\"goodbye\"");

    let moved = shell.exec("move postbox to core2").unwrap();
    assert!(moved.contains("core2"));
    assert!(shell.exec("whereis postbox").unwrap().contains("core2"));
    assert_eq!(shell.exec("call postbox print").unwrap(), "\"goodbye\"");

    for c in &cores {
        c.stop();
    }
}

#[test]
fn bind_lookup_by_id_and_remote_lookup() {
    let (cores, shell) = setup();
    let out = shell.exec("new Message").unwrap();
    // Extract the id (format "created cX.Y (Message) at core0").
    let id = out.split_whitespace().nth(1).unwrap().to_owned();
    shell.exec(&format!("bind mailbox {id}")).unwrap();
    assert!(shell.exec("lookup mailbox").unwrap().contains(&id));
    // Calls through the raw id work too.
    assert_eq!(
        shell.exec(&format!("call {id} print")).unwrap(),
        "\"hello\""
    );
    for c in &cores {
        c.stop();
    }
}

#[test]
fn retype_and_refs() {
    let (cores, shell) = setup();
    shell.exec("new Message as m").unwrap();
    let out = shell.exec("retype m pull").unwrap();
    assert!(out.contains("pull"));
    assert!(matches!(
        shell.exec("retype m warp"),
        Err(ShellError::Core(_))
    ));
    let refs = shell.exec("refs").unwrap();
    assert!(refs.contains("local"));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn profile_and_ping() {
    let (cores, shell) = setup();
    shell.exec("new Message").unwrap();
    std::thread::sleep(Duration::from_millis(120));
    let load = shell.exec("profile completLoad").unwrap();
    assert!(load.contains("completLoad = 1"));
    assert!(shell.exec("ping core1").unwrap().contains("rtt"));
    assert!(shell.exec("ping atlantis").is_err());
    for c in &cores {
        c.stop();
    }
}

#[test]
fn inline_scripts_load_through_the_shell() {
    let (cores, shell) = setup();
    let out = shell
        .exec("script on arrived firedby $c listenAt \"core1\" do log $c end")
        .unwrap();
    assert!(out.contains("1 subscription"));
    shell.exec("new Message at core1").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while !shell.engine().log_lines().iter().any(|l| l == "core1") {
        assert!(std::time::Instant::now() < deadline, "script never logged");
        std::thread::sleep(Duration::from_millis(5));
    }
    for c in &cores {
        c.stop();
    }
}

#[test]
fn errors_are_reported_not_fatal() {
    let (cores, shell) = setup();
    assert!(matches!(
        shell.exec("frobnicate"),
        Err(ShellError::UnknownCommand(_))
    ));
    assert!(matches!(shell.exec("move"), Err(ShellError::Usage(_))));
    assert!(matches!(
        shell.exec("call nobody print"),
        Err(ShellError::NoSuchTarget(_))
    ));
    // Still usable afterwards.
    assert!(shell.exec("cores").is_ok());
    for c in &cores {
        c.stop();
    }
}

#[test]
fn layout_and_stats_commands() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1").unwrap();
    shell.exec("new Message").unwrap();
    let layout = shell.exec("layout").unwrap();
    assert!(layout.contains("core0: c0.1 Message"), "{layout}");
    assert!(layout.contains("core1: c1.1 Message"), "{layout}");
    assert!(layout.contains("core2: (empty)"), "{layout}");
    cores[2].stop();
    let layout = shell.exec("layout").unwrap();
    assert!(layout.contains("core2: (down)"), "{layout}");
    let stats = shell.exec("stats").unwrap();
    assert!(stats.contains("complets      1"), "{stats}");
    assert!(stats.contains("trackers"), "{stats}");
    assert!(stats.contains("reliability:"), "{stats}");
    for c in &cores {
        c.stop();
    }
}

#[test]
fn stats_full_renders_metrics_exposition() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as postbox").unwrap();
    shell.exec("call postbox print").unwrap();
    let metrics = shell.exec("stats full").unwrap();
    assert!(metrics.contains("fargo_invoke_total"), "{metrics}");
    assert!(
        metrics.contains("fargo_invoke_latency_us_bucket"),
        "{metrics}"
    );
    assert!(
        metrics.contains("fargo_link_messages"),
        "remote call must leave link gauges behind: {metrics}"
    );
    for c in &cores {
        c.stop();
    }
}

#[test]
fn trace_renders_span_tree_of_last_invocation() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as postbox").unwrap();
    shell.exec("call postbox print").unwrap();
    let tree = shell.exec("trace").unwrap();
    assert!(tree.contains("invoke Message.print"), "{tree}");
    assert!(tree.contains("@core1"), "remote exec span expected: {tree}");
    for c in &cores {
        c.stop();
    }
}

#[test]
fn stats_reports_per_phase_percentiles() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as postbox").unwrap();
    for _ in 0..5 {
        shell.exec("call postbox print").unwrap();
    }
    let stats = shell.exec("stats").unwrap();
    assert!(stats.contains("latency (us, estimated):"), "{stats}");
    for phase in ["queue", "marshal", "network", "exec", "invoke(recent)"] {
        assert!(stats.contains(phase), "missing {phase} row: {stats}");
    }
    // The invoke rows have observations, so percentiles are numeric.
    let invoke_row = stats
        .lines()
        .find(|l| l.trim_start().starts_with("invoke "))
        .unwrap();
    assert!(!invoke_row.contains("p50=-"), "{invoke_row}");
    assert!(invoke_row.contains("p99="), "{invoke_row}");
    assert!(invoke_row.contains("p999="), "{invoke_row}");
    for c in &cores {
        c.stop();
    }
}

#[test]
fn slow_command_retains_tail_with_per_hop_breakdown() {
    // A cluster with real link delay: every remote call is slow enough
    // that the tail sampler must retain it.
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::new(Duration::from_millis(2))),
        ..NetworkConfig::default()
    });
    let reg = CompletRegistry::new();
    Message::register(&reg);
    let cores: Vec<Core> = (0..2)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .spawn()
                .unwrap()
        })
        .collect();
    let shell = Shell::new(cores[0].clone());
    shell.exec("new Message at core1 as postbox").unwrap();
    shell.exec("call postbox print").unwrap();

    let out = shell.exec("slow").unwrap();
    assert!(out.contains("invoke Message.print"), "{out}");
    assert!(out.contains("trace 0x"), "{out}");
    assert!(
        out.contains("@core1"),
        "per-hop breakdown must show the remote exec hop: {out}"
    );

    // Truncation and clearing.
    assert!(shell.exec("slow 1").unwrap().contains("#0"));
    assert!(shell.exec("slow clear").unwrap().contains("cleared"));
    assert!(shell
        .exec("slow")
        .unwrap()
        .contains("no slow requests retained"));
    assert!(matches!(
        shell.exec("slow nonsense"),
        Err(ShellError::Usage(_))
    ));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn refs_inspects_remote_cores() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as roamer").unwrap();
    shell.exec("move roamer to core2").unwrap();
    // core1's tracker forwards to core2; the shell sees it remotely.
    let refs = shell.exec("refs core1").unwrap();
    assert!(refs.contains("-> core2"), "{refs}");
    let refs = shell.exec("refs core2").unwrap();
    assert!(refs.contains("local"), "{refs}");
    for c in &cores {
        c.stop();
    }
}

#[test]
fn top_and_matrix_report_accounted_load_and_traffic() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as postbox").unwrap();
    for _ in 0..5 {
        shell.exec("call postbox print").unwrap();
    }

    // top: the invoked complet shows up, attributed to its host Core.
    let top = shell.exec("top").unwrap();
    assert!(top.contains("c1.1"), "{top}");
    assert!(top.contains("core1"), "{top}");
    assert!(top.contains("invokes"), "{top}");
    assert!(shell.exec("top 1").unwrap().contains("c1.1"));
    assert!(matches!(shell.exec("top x"), Err(ShellError::Usage(_))));

    // matrix: the remote calls left core0 -> core1 traffic (and the
    // replies the reverse direction).
    let matrix = shell.exec("matrix").unwrap();
    assert!(matrix.contains("core0 -> core1"), "{matrix}");
    assert!(matrix.contains("core1 -> core0"), "{matrix}");
    assert!(matrix.contains("msgs"), "{matrix}");
    for c in &cores {
        c.stop();
    }
}

#[test]
fn health_and_alerts_commands_render_slo_state() {
    let (cores, shell) = setup();
    let health = shell.exec("health").unwrap();
    for rule in [
        "p99-latency",
        "error-rate",
        "shed-rate",
        "move-failure-rate",
    ] {
        assert!(health.contains(rule), "missing {rule} row: {health}");
    }
    assert!(
        !health.contains("FIRING"),
        "idle cluster is healthy: {health}"
    );
    assert_eq!(shell.exec("alerts").unwrap(), "(no alerts recorded)");
    assert!(matches!(shell.exec("alerts x"), Err(ShellError::Usage(_))));
    for c in &cores {
        c.stop();
    }
}

/// Minimal structural JSON check: balanced delimiters outside string
/// literals and a top-level array. Deliberately hand-rolled — the repo
/// has no JSON dependency, and the exposition must stay parseable by
/// real consumers.
fn assert_valid_json_array(s: &str) {
    let s = s.trim();
    assert!(s.starts_with('[') && s.ends_with(']'), "not an array: {s}");
    let mut depth_sq = 0i64;
    let mut depth_br = 0i64;
    let mut in_str = false;
    let mut escape = false;
    for ch in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if ch == '\\' {
                escape = true;
            } else if ch == '"' {
                in_str = false;
            }
            continue;
        }
        match ch {
            '"' => in_str = true,
            '[' => depth_sq += 1,
            ']' => depth_sq -= 1,
            '{' => depth_br += 1,
            '}' => depth_br -= 1,
            _ => {}
        }
        assert!(depth_sq >= 0 && depth_br >= 0, "unbalanced at {ch:?}");
    }
    assert!(!in_str, "unterminated string literal");
    assert_eq!(depth_sq, 0, "unbalanced brackets");
    assert_eq!(depth_br, 0, "unbalanced braces");
}

#[test]
fn stats_json_is_parseable_and_carries_quantiles() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as postbox").unwrap();
    for _ in 0..3 {
        shell.exec("call postbox print").unwrap();
    }
    let json = shell.exec("stats json").unwrap();
    assert_valid_json_array(&json);
    assert!(json.contains("\"name\":\"fargo_invoke_total\""), "{json}");
    assert!(json.contains("\"labels\":{\"core\":\"core0\"}"), "{json}");
    // Histogram values expose estimated quantiles alongside the buckets.
    assert!(json.contains("\"p50\":"), "{json}");
    assert!(json.contains("\"p99\":"), "{json}");
    assert!(json.contains("\"p999\":"), "{json}");
    assert!(matches!(
        shell.exec("stats nope"),
        Err(ShellError::Usage(_))
    ));
    for c in &cores {
        c.stop();
    }
}

#[test]
fn where_command_reports_resolution_path() {
    let (cores, shell) = setup();
    shell.exec("new Message at core1 as postbox").unwrap();
    shell.exec("move postbox to core2").unwrap();
    let out = shell.exec("where postbox").unwrap();
    assert!(out.contains("is at core2"), "{out}");
    assert!(out.contains("(via "), "{out}");
    assert!(
        ["hosted", "cache", "shard", "chain"]
            .iter()
            .any(|l| out.contains(l)),
        "{out}"
    );
    assert!(out.contains("epoch"), "{out}");
    assert!(matches!(shell.exec("where"), Err(ShellError::Usage(_))));

    // The lookup left naming counters behind; `stats json` carries them.
    let json = shell.exec("stats json").unwrap();
    assert!(
        json.contains("\"name\":\"fargo_naming_lookups_total\""),
        "{json}"
    );
    assert!(
        json.contains("\"name\":\"fargo_naming_lookup_hops\""),
        "{json}"
    );
    for c in &cores {
        c.stop();
    }
}

#[test]
fn plan_and_autolayout_commands_drive_the_loop() {
    let (cores, shell) = setup();

    // No traffic yet: the planner has nothing to say.
    let out = shell.exec("plan").unwrap();
    assert!(out.contains("no moves"), "{out}");

    // Skew traffic towards a remote complet, then preview again: the
    // plan proposes pulling it to the shell's Core without moving it.
    shell.exec("new Message at core1 as postbox").unwrap();
    for _ in 0..40 {
        shell.exec("call postbox print").unwrap();
    }
    let out = shell.exec("plan").unwrap();
    assert!(out.contains("-> core0"), "{out}");
    let whereis = shell.exec("whereis postbox").unwrap();
    assert!(whereis.contains("core1"), "plan must not move: {whereis}");

    // rebalance executes the round for real.
    let out = shell.exec("rebalance").unwrap();
    assert!(out.contains("executed 1 step(s)"), "{out}");
    let whereis = shell.exec("whereis postbox").unwrap();
    assert!(whereis.contains("core0"), "{whereis}");

    // The toggle and status surface the loop state.
    assert!(shell.exec("autolayout on").unwrap().contains("enabled"));
    let status = shell.exec("autolayout status").unwrap();
    assert!(status.contains("autolayout on"), "{status}");
    assert!(status.contains("moves=1"), "{status}");
    assert!(shell.exec("autolayout off").unwrap().contains("disabled"));

    // The decision trail landed in the journal.
    let journal = shell.exec("journal 200").unwrap();
    assert!(journal.contains("plan_propose"), "{journal}");
    assert!(journal.contains("plan_step"), "{journal}");

    // And the script engine gained the autolayout action.
    assert!(shell.engine().has_action("autolayout"));
    for c in &cores {
        c.stop();
    }
}
