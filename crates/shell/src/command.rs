//! The shell's command interpreter.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use fargo_core::{
    render_health, render_matrix, render_slow_log, CompletId, CompletRef, Core, FargoError,
    RefDescriptor, Service, Value,
};
use fargo_layout::{register_script_action, AutoLayout};
use fargo_script::{ScriptEngine, ScriptError, ScriptValue};

/// Errors from shell command execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum ShellError {
    /// Empty input or a command the shell does not know.
    UnknownCommand(String),
    /// The command was recognised but its arguments were malformed.
    Usage(&'static str),
    /// A name/id that resolves to nothing.
    NoSuchTarget(String),
    /// A runtime failure from the Core.
    Core(FargoError),
    /// A script failure (from the `script` command).
    Script(ScriptError),
}

impl fmt::Display for ShellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShellError::UnknownCommand(c) => write!(f, "unknown command {c:?}; try 'help'"),
            ShellError::Usage(u) => write!(f, "usage: {u}"),
            ShellError::NoSuchTarget(t) => write!(f, "no complet named or identified by {t:?}"),
            ShellError::Core(e) => write!(f, "{e}"),
            ShellError::Script(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ShellError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ShellError::Core(e) => Some(e),
            ShellError::Script(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FargoError> for ShellError {
    fn from(e: FargoError) -> Self {
        ShellError::Core(e)
    }
}

impl From<ScriptError> for ShellError {
    fn from(e: ScriptError) -> Self {
        ShellError::Script(e)
    }
}

/// An administration shell bound to one Core.
pub struct Shell {
    core: Core,
    engine: ScriptEngine,
    auto: AutoLayout,
}

const HELP: &str = "\
FarGo shell commands:
  help                               this text
  cores                              list cores and their complet load
  ls [<core>]                        complets at a core (default: here)
  new <type> [at <core>] [as <name>] instantiate a complet
  call <target> <method> [args...]   invoke a method (args: int/float/str)
  move <target> to <core>            relocate a complet
  bind <name> <target>               bind a logical name here
  lookup <name> [at <core>]          resolve a logical name
  refs [<core>]                      tracker table of a core (default: here)
  retype <target> <relocator>        change a named reference's relocator
  whereis <target>                   locate a complet
  where <target>                     locate with the resolution path
                                     (hosted/cache/shard/chain, hops,
                                     move epoch)
  profile <service>                  instant profiling (e.g. completLoad)
  layout [at <hlc>]                  complets across every core; with
                                     'at', reconstructed from the journal
                                     at an HLC instant (e.g. 1234.0)
  journal [<n>]                      merged cluster-wide layout journal
                                     (last n events; default 20)
  anomalies                          layout anomaly pass over the journal
  plan                               preview the adaptive layout plan the
                                     planner would execute right now
  rebalance                          plan and execute one layout round
  autolayout on|off|status           closed-loop adaptive relocation
  stats [full|json]                  runtime counters; 'full' renders the
                                     whole metrics exposition (incl. links),
                                     'json' the same as JSON
  top [<n>]                          heaviest complets cluster-wide by
                                     accounted load (default 10)
  matrix                             core-to-core traffic heatmap
  health                             SLO rule status (burn-rate windows)
  alerts [<n>]                       journaled alert transitions
                                     (last n; default 20)
  trace [<id>]                       span tree of a trace (default: the
                                     most recent one recorded here)
  slow [<n>|clear]                   slowest retained requests with
                                     per-hop breakdown (default: all)
  ping <core>                        round-trip probe
  script <source...>                 load an inline layout script

<target> is a logical name or a complet id like c0.3.";

impl Shell {
    /// Binds a shell to an admin Core.
    pub fn new(core: Core) -> Self {
        let engine = ScriptEngine::new(core.clone());
        let auto = AutoLayout::attach(core.clone());
        register_script_action(&engine, &auto);
        Shell { core, engine, auto }
    }

    /// The script engine backing the `script` command (register custom
    /// actions here).
    pub fn engine(&self) -> &ScriptEngine {
        &self.engine
    }

    /// The adaptive layout loop backing `plan`/`rebalance`/`autolayout`.
    pub fn autolayout(&self) -> &AutoLayout {
        &self.auto
    }

    /// Executes one command line and returns its output.
    ///
    /// # Errors
    ///
    /// Returns a [`ShellError`] describing what went wrong; the shell
    /// remains usable.
    pub fn exec(&self, line: &str) -> Result<String, ShellError> {
        let mut words = line.split_whitespace();
        let cmd = words
            .next()
            .ok_or_else(|| ShellError::UnknownCommand(String::new()))?;
        let rest: Vec<&str> = words.collect();
        match cmd {
            "help" => Ok(HELP.to_owned()),
            "cores" => self.cmd_cores(),
            "ls" => self.cmd_ls(rest.first().copied()),
            "new" => self.cmd_new(&rest),
            "call" => self.cmd_call(&rest),
            "move" => self.cmd_move(&rest),
            "bind" => self.cmd_bind(&rest),
            "lookup" => self.cmd_lookup(&rest),
            "refs" => self.cmd_refs(rest.first().copied()),
            "retype" => self.cmd_retype(&rest),
            "whereis" => self.cmd_whereis(&rest),
            "where" => self.cmd_where(&rest),
            "profile" => self.cmd_profile(&rest),
            "layout" => self.cmd_layout(&rest),
            "journal" => self.cmd_journal(&rest),
            "anomalies" => self.cmd_anomalies(),
            "plan" => self.cmd_plan(),
            "rebalance" => self.cmd_rebalance(),
            "autolayout" => self.cmd_autolayout(&rest),
            "stats" => self.cmd_stats(&rest),
            "top" => self.cmd_top(&rest),
            "matrix" => self.cmd_matrix(),
            "health" => self.cmd_health(),
            "alerts" => self.cmd_alerts(&rest),
            "trace" => self.cmd_trace(&rest),
            "slow" => self.cmd_slow(&rest),
            "ping" => self.cmd_ping(&rest),
            "script" => self.cmd_script(line),
            other => Err(ShellError::UnknownCommand(other.to_owned())),
        }
    }

    fn cmd_cores(&self) -> Result<String, ShellError> {
        let net = self.core.network();
        let mut out = String::new();
        for node in net.node_ids() {
            let name = net.node_name(node).unwrap_or_else(|_| node.to_string());
            let up = net.node_up(node).unwrap_or(false);
            let load = if up {
                self.core
                    .complets_at(&name)
                    .map(|c| c.len().to_string())
                    .unwrap_or_else(|_| "?".into())
            } else {
                "-".into()
            };
            let state = if up { "up" } else { "down" };
            writeln!(out, "{name:<16} {state:<5} complets={load}").expect("write to string");
        }
        Ok(out)
    }

    fn cmd_ls(&self, core: Option<&str>) -> Result<String, ShellError> {
        let core_name = core.unwrap_or_else(|| self.core.name());
        let items = self.core.complets_at(core_name)?;
        if items.is_empty() {
            return Ok(format!("{core_name}: (no complets)"));
        }
        let mut out = String::new();
        for (id, ty) in items {
            writeln!(out, "{id:<10} {ty}").expect("write to string");
        }
        Ok(out)
    }

    fn cmd_new(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "new <type> [at <core>] [as <name>]";
        let ty = args.first().ok_or(ShellError::Usage(usage))?;
        let mut at: Option<&str> = None;
        let mut name: Option<&str> = None;
        let mut i = 1;
        while i + 1 < args.len() + 1 {
            match args.get(i) {
                Some(&"at") => {
                    at = Some(args.get(i + 1).ok_or(ShellError::Usage(usage))?);
                    i += 2;
                }
                Some(&"as") => {
                    name = Some(args.get(i + 1).ok_or(ShellError::Usage(usage))?);
                    i += 2;
                }
                Some(_) => return Err(ShellError::Usage(usage)),
                None => break,
            }
        }
        let target_core = at.unwrap_or_else(|| self.core.name());
        let b = self.core.new_complet_at(target_core, ty, &[])?;
        if let Some(n) = name {
            self.core.bind(n, b.complet_ref());
        }
        Ok(format!("created {} ({ty}) at {target_core}", b.id()))
    }

    fn cmd_call(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "call <target> <method> [args...]";
        let target = args.first().ok_or(ShellError::Usage(usage))?;
        let method = args.get(1).ok_or(ShellError::Usage(usage))?;
        let call_args: Vec<Value> = args[2..].iter().map(|a| parse_arg(a)).collect();
        let r = self.resolve(target)?;
        let result = self.core.invoke(&r, method, &call_args)?;
        Ok(result.to_string())
    }

    fn cmd_move(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "move <target> to <core>";
        let target = args.first().ok_or(ShellError::Usage(usage))?;
        if args.get(1) != Some(&"to") {
            return Err(ShellError::Usage(usage));
        }
        let dest = args.get(2).ok_or(ShellError::Usage(usage))?;
        let r = self.resolve(target)?;
        self.core.move_complet(r.id(), dest, None)?;
        Ok(format!("moved {} to {dest}", r.id()))
    }

    fn cmd_bind(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "bind <name> <target>";
        let name = args.first().ok_or(ShellError::Usage(usage))?;
        let target = args.get(1).ok_or(ShellError::Usage(usage))?;
        let r = self.resolve(target)?;
        self.core.bind(name, &r);
        Ok(format!("{name} -> {}", r.id()))
    }

    fn cmd_lookup(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "lookup <name> [at <core>]";
        let name = args.first().ok_or(ShellError::Usage(usage))?;
        let found = match (args.get(1), args.get(2)) {
            (Some(&"at"), Some(core)) => self.core.lookup_at(core, name)?,
            (None, _) => self.core.lookup_stub(name)?,
            _ => return Err(ShellError::Usage(usage)),
        };
        Ok(format!("{name} -> {}", found.complet_ref()))
    }

    fn cmd_refs(&self, core: Option<&str>) -> Result<String, ShellError> {
        let core_name = core.unwrap_or_else(|| self.core.name());
        let mut out = String::new();
        for (id, fwd, hits) in self.core.trackers_at(core_name)? {
            let target = match fwd {
                None => "local".to_owned(),
                Some(n) => format!("-> {}", self.core.core_name_of(n)),
            };
            writeln!(out, "{:<10} {:<16} hits={}", id.to_string(), target, hits)
                .expect("write to string");
        }
        if out.is_empty() {
            out.push_str("(no trackers)");
        }
        Ok(out)
    }

    fn cmd_retype(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "retype <target> <relocator>";
        let target = args.first().ok_or(ShellError::Usage(usage))?;
        let relocator = args.get(1).ok_or(ShellError::Usage(usage))?;
        let r = self.resolve(target)?;
        self.core.meta_ref(&r).set_relocator(relocator)?;
        // Persist the retype when the target is a bound name.
        self.core.bind(target, &r);
        Ok(format!("{} is now [{relocator}]", r.id()))
    }

    fn cmd_whereis(&self, args: &[&str]) -> Result<String, ShellError> {
        let target = args.first().ok_or(ShellError::Usage("whereis <target>"))?;
        let r = self.resolve(target)?;
        let node = self.core.locate(r.id())?;
        Ok(format!("{} is at {}", r.id(), self.core.core_name_of(node)))
    }

    /// Like `whereis`, but shows which layer of the naming stack answered
    /// (hosted / cache / shard / chain), how many network hops the
    /// resolution spent, and the winning move epoch.
    fn cmd_where(&self, args: &[&str]) -> Result<String, ShellError> {
        let target = args.first().ok_or(ShellError::Usage("where <target>"))?;
        let r = self.resolve(target)?;
        let report = self.core.locate_explain(r.id())?;
        Ok(format!(
            "{} is at {} (via {}, {} hop{}, epoch {})",
            r.id(),
            self.core.core_name_of(report.node),
            report.via.label(),
            report.hops,
            if report.hops == 1 { "" } else { "s" },
            report.epoch,
        ))
    }

    fn cmd_profile(&self, args: &[&str]) -> Result<String, ShellError> {
        let spec = args
            .first()
            .ok_or(ShellError::Usage("profile <service[:key]>"))?;
        let service = Service::parse(spec).map_err(ShellError::Core)?;
        let v = self.core.profile_instant(&service)?;
        Ok(format!("{service} = {v}"))
    }

    fn cmd_layout(&self, args: &[&str]) -> Result<String, ShellError> {
        match args {
            [] => self.cmd_layout_live(),
            ["at", hlc] => self.cmd_layout_at(hlc),
            _ => Err(ShellError::Usage("layout [at <hlc>]")),
        }
    }

    /// Reconstructs the cluster-wide placement at an HLC instant from the
    /// merged journal timeline (the layout observatory).
    fn cmd_layout_at(&self, hlc: &str) -> Result<String, ShellError> {
        let at: fargo_core::Hlc = hlc
            .parse()
            .map_err(|_| ShellError::Usage("layout [at <hlc>]"))?;
        let state = self.core.layout_history().at(at);
        let mut out = format!("layout at {at} (journal reconstruction)\n");
        let mut by_core: std::collections::BTreeMap<u32, Vec<&str>> =
            std::collections::BTreeMap::new();
        for (id, node) in &state.placement {
            by_core.entry(*node).or_default().push(id);
        }
        if by_core.is_empty() {
            out.push_str("(no complets placed)\n");
        }
        for (node, ids) in by_core {
            writeln!(out, "{}: {}", self.core.core_name_of(node), ids.join(", "))
                .expect("write to string");
        }
        if !state.refs.is_empty() {
            let edges: Vec<String> = state
                .refs
                .iter()
                .map(|(src, dst, rel)| format!("{src} -{rel}-> {dst}"))
                .collect();
            writeln!(out, "refs: {}", edges.join(", ")).expect("write to string");
        }
        Ok(out)
    }

    /// The merged cluster-wide journal, newest events last.
    fn cmd_journal(&self, args: &[&str]) -> Result<String, ShellError> {
        let n: usize = match args {
            [] => 20,
            [n] => n.parse().map_err(|_| ShellError::Usage("journal [<n>]"))?,
            _ => return Err(ShellError::Usage("journal [<n>]")),
        };
        let events = self.core.collect_journal();
        if events.is_empty() {
            return Ok("(journal empty)".to_owned());
        }
        let mut out = String::new();
        let skip = events.len().saturating_sub(n);
        if skip > 0 {
            writeln!(out, "... {skip} earlier events omitted").expect("write to string");
        }
        for ev in &events[skip..] {
            writeln!(out, "{ev}").expect("write to string");
        }
        Ok(out)
    }

    /// Runs the anomaly pass (long chains, ping-pong, orphans) over the
    /// merged journal.
    fn cmd_anomalies(&self) -> Result<String, ShellError> {
        let thresholds = self.core.config().anomaly_thresholds();
        let anomalies = self.core.layout_history().anomalies_with(&thresholds);
        if anomalies.is_empty() {
            return Ok("(no layout anomalies)".to_owned());
        }
        let mut out = String::new();
        for a in anomalies {
            writeln!(out, "{a}").expect("write to string");
        }
        Ok(out)
    }

    /// Previews the plan the adaptive planner would execute right now,
    /// without moving anything.
    fn cmd_plan(&self) -> Result<String, ShellError> {
        let plan = self.auto.preview();
        Ok(plan.render(&|n| self.core.core_name_of(n)))
    }

    /// One synchronous planning round: plan, execute, verify.
    fn cmd_rebalance(&self) -> Result<String, ShellError> {
        let (plan, report) = self.auto.run_once();
        let mut out = plan.render(&|n| self.core.core_name_of(n));
        if !plan.is_empty() {
            writeln!(
                out,
                "executed {} step(s), {} rolled back",
                report.executed, report.rolled_back
            )
            .expect("write to string");
            for f in &report.failures {
                writeln!(out, "failed: {f}").expect("write to string");
            }
        }
        Ok(out)
    }

    fn cmd_autolayout(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "autolayout on|off|status";
        match args {
            ["on"] => {
                self.auto.enable();
                Ok("autolayout enabled".to_owned())
            }
            ["off"] => {
                self.auto.disable();
                Ok("autolayout disabled".to_owned())
            }
            ["status"] | [] => {
                let s = self.auto.status();
                Ok(format!(
                    "autolayout {}: rounds={} moves={} rollbacks={} stable_rounds={} converged={}",
                    if s.enabled { "on" } else { "off" },
                    s.rounds,
                    s.moves_executed,
                    s.rollbacks,
                    s.stable_rounds,
                    s.converged(),
                ))
            }
            _ => Err(ShellError::Usage(usage)),
        }
    }

    fn cmd_layout_live(&self) -> Result<String, ShellError> {
        let net = self.core.network();
        let mut out = String::new();
        for node in net.node_ids() {
            let name = net.node_name(node).unwrap_or_else(|_| node.to_string());
            if !net.node_up(node).unwrap_or(false) {
                writeln!(out, "{name}: (down)").expect("write to string");
                continue;
            }
            match self.core.complets_at(&name) {
                Ok(items) if items.is_empty() => {
                    writeln!(out, "{name}: (empty)").expect("write to string");
                }
                Ok(items) => {
                    let list: Vec<String> =
                        items.iter().map(|(id, ty)| format!("{id} {ty}")).collect();
                    writeln!(out, "{name}: {}", list.join(", ")).expect("write to string");
                }
                Err(e) => {
                    writeln!(out, "{name}: unreachable ({e})").expect("write to string");
                }
            }
        }
        Ok(out)
    }

    fn cmd_stats(&self, args: &[&str]) -> Result<String, ShellError> {
        match args.first() {
            Some(&"full") => Ok(self.core.render_metrics()),
            Some(&"json") => Ok(self.core.render_metrics_json()),
            Some(_) => Err(ShellError::Usage("stats [full|json]")),
            None => {
                let m = self.core.monitor();
                let (retries, dedup_hits, lost_replies, indoubt) = self.core.reliability_stats();
                let mut out = format!(
                    "core {}
 complets      {}
 trackers      {}
 bindings      {}
 subscriptions {}
 monitor: {} sampler evals, {} cache hits, {} events
 reliability: {} retransmits, {} dedup replays, {} lost replies, {} in-doubt moves
 latency (us, estimated):
",
                    self.core.name(),
                    self.core.complet_count(),
                    self.core.tracker_count(),
                    self.core.bindings().len(),
                    self.core.subscription_count(),
                    m.samples(),
                    m.cache_hits(),
                    m.events_emitted(),
                    retries,
                    dedup_hits,
                    lost_replies,
                    indoubt,
                );
                let fmt_q = |q: Option<f64>| match q {
                    Some(v) => format!("{v:.0}"),
                    None => "-".to_owned(),
                };
                for s in self.core.latency_summaries() {
                    let _ = writeln!(
                        out,
                        "  {phase:<15} n={count:<6} p50={p50:<8} p99={p99:<8} p999={p999}",
                        phase = s.phase,
                        count = s.count,
                        p50 = fmt_q(s.p50),
                        p99 = fmt_q(s.p99),
                        p999 = fmt_q(s.p999),
                    );
                }
                out.push_str("(use 'stats full' for the complete metrics exposition)");
                Ok(out)
            }
        }
    }

    /// The cluster-wide heavy hitters: per-complet accounted load from
    /// every reachable Core, merged and re-ranked.
    fn cmd_top(&self, args: &[&str]) -> Result<String, ShellError> {
        let n: usize = match args {
            [] => 10,
            [n] => n.parse().map_err(|_| ShellError::Usage("top [<n>]"))?,
            _ => return Err(ShellError::Usage("top [<n>]")),
        };
        let rows = self.core.collect_top(n);
        if rows.is_empty() {
            return Ok("(no accounting data)".to_owned());
        }
        let mut out = format!(
            "{:<10} {:<12} {:>10} {:>8} {:>10} {:>10} {:>10} {:>6}\n",
            "complet", "core", "load", "invokes", "exec_us", "bytes_in", "bytes_out", "err"
        );
        for (core, r) in rows {
            let id = CompletId::new(r.key.0, r.key.1);
            writeln!(
                out,
                "{:<10} {:<12} {:>10} {:>8} {:>10} {:>10} {:>10} {:>6}",
                id.to_string(),
                core,
                r.load,
                r.invokes,
                r.exec_us,
                r.bytes_in,
                r.bytes_out,
                r.err
            )
            .expect("write to string");
        }
        Ok(out)
    }

    /// ASCII heatmap of the cluster-wide Core-to-Core traffic matrix.
    fn cmd_matrix(&self) -> Result<String, ShellError> {
        Ok(render_matrix(&self.core.collect_matrix()))
    }

    /// Current SLO rule status on this Core.
    fn cmd_health(&self) -> Result<String, ShellError> {
        Ok(render_health(&self.core.health_status()))
    }

    /// Journaled alert transitions, cluster-wide, newest last.
    fn cmd_alerts(&self, args: &[&str]) -> Result<String, ShellError> {
        let n: usize = match args {
            [] => 20,
            [n] => n.parse().map_err(|_| ShellError::Usage("alerts [<n>]"))?,
            _ => return Err(ShellError::Usage("alerts [<n>]")),
        };
        let events: Vec<_> = self.core.collect_alerts();
        if events.is_empty() {
            return Ok("(no alerts recorded)".to_owned());
        }
        let mut out = String::new();
        let skip = events.len().saturating_sub(n);
        if skip > 0 {
            writeln!(out, "... {skip} earlier alerts omitted").expect("write to string");
        }
        for ev in &events[skip..] {
            writeln!(out, "{ev}").expect("write to string");
        }
        Ok(out)
    }

    /// Renders the (multi-Core) span tree of a trace. Without an id, the
    /// most recent trace recorded at this Core is shown.
    fn cmd_trace(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "trace [<id>]";
        let trace_id = match args.first() {
            Some(word) => {
                let digits = word.strip_prefix("0x").unwrap_or(word);
                u64::from_str_radix(digits, if word.starts_with("0x") { 16 } else { 10 })
                    .map_err(|_| ShellError::Usage(usage))?
            }
            None => self
                .core
                .last_trace_id()
                .ok_or_else(|| ShellError::NoSuchTarget("(no traces recorded)".into()))?,
        };
        Ok(self.core.render_trace(trace_id))
    }

    /// The tail observatory: the slowest requests this Core retained,
    /// each with its per-hop breakdown — the span snapshot taken at
    /// admission, enriched with whatever the cluster still holds for
    /// the trace (remote hops the local ring never saw).
    fn cmd_slow(&self, args: &[&str]) -> Result<String, ShellError> {
        let usage = "slow [<n>|clear]";
        let mut records = self.core.slow_records();
        match args.first() {
            Some(&"clear") => {
                self.core.clear_slow_log();
                return Ok(format!(
                    "cleared {} retained slow request(s)",
                    records.len()
                ));
            }
            Some(word) => {
                let n: usize = word.parse().map_err(|_| ShellError::Usage(usage))?;
                records.truncate(n);
            }
            None => {}
        }
        for r in &mut records {
            if r.trace_id == 0 {
                continue;
            }
            let mut spans = std::mem::take(&mut r.spans);
            spans.extend(self.core.collect_trace(r.trace_id));
            spans.sort_by_key(|s| (s.span_id, s.start_us));
            spans.dedup_by_key(|s| s.span_id);
            spans.sort_by_key(|s| (s.start_us, s.span_id));
            r.spans = spans;
        }
        Ok(render_slow_log(&records, true))
    }

    fn cmd_ping(&self, args: &[&str]) -> Result<String, ShellError> {
        let core = args.first().ok_or(ShellError::Usage("ping <core>"))?;
        let rtt = self.core.ping(core)?;
        Ok(format!("{core}: rtt {rtt:?}"))
    }

    fn cmd_script(&self, line: &str) -> Result<String, ShellError> {
        let src = line
            .strip_prefix("script")
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .ok_or(ShellError::Usage("script <source...>"))?;
        let loaded = self.engine.load(src, Vec::<ScriptValue>::new())?;
        Ok(format!(
            "script loaded: {} subscription(s)",
            loaded.subscription_count()
        ))
    }

    /// Resolves a target word: a bound name first, then a complet id.
    fn resolve(&self, word: &str) -> Result<CompletRef, ShellError> {
        if let Some(r) = self.core.lookup(word) {
            return Ok(r);
        }
        if let Some(id) = parse_complet_id(word) {
            // Unknown type is fine for invocation and movement.
            return Ok(CompletRef::from_descriptor(RefDescriptor::link(
                id, "", id.origin,
            )));
        }
        Err(ShellError::NoSuchTarget(word.to_owned()))
    }
}

impl fmt::Debug for Shell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shell")
            .field("core", &self.core.name())
            .finish()
    }
}

fn parse_complet_id(s: &str) -> Option<CompletId> {
    let rest = s.strip_prefix('c')?;
    let (origin, seq) = rest.split_once('.')?;
    Some(CompletId::new(origin.parse().ok()?, seq.parse().ok()?))
}

/// Shell argument literals: integers, floats, then strings.
fn parse_arg(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::I64(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::F64(f);
    }
    Value::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing_prefers_numbers() {
        assert_eq!(parse_arg("42"), Value::I64(42));
        assert_eq!(parse_arg("2.5"), Value::F64(2.5));
        assert_eq!(parse_arg("two"), Value::from("two"));
    }

    #[test]
    fn complet_id_parsing() {
        assert_eq!(parse_complet_id("c2.9"), Some(CompletId::new(2, 9)));
        assert_eq!(parse_complet_id("x2.9"), None);
        assert_eq!(parse_complet_id("c29"), None);
    }
}
