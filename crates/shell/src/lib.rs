//! # fargo-shell — Core administration from the command line
//!
//! The paper ships "a command-line shell for administering remote Cores"
//! (§5), itself a system complet living outside the Core. This crate is
//! that tool: a command interpreter bound to an admin Core, suitable for
//! embedding in a REPL binary (see `examples/shell.rs` at the workspace
//! root) or driving programmatically.
//!
//! ```
//! # use fargo_core::{Core, CompletRegistry};
//! # use simnet::{Network, NetworkConfig};
//! use fargo_shell::Shell;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let net = Network::new(NetworkConfig::default());
//! # let registry = CompletRegistry::new();
//! # let admin = Core::builder(&net, "admin").registry(&registry).spawn()?;
//! let shell = Shell::new(admin.clone());
//! let out = shell.exec("cores")?;
//! assert!(out.contains("admin"));
//! # admin.stop();
//! # Ok(())
//! # }
//! ```

mod command;

pub use command::{Shell, ShellError};
