//! The delivery scheduler: a thread that holds in-flight packets in a
//! time-ordered heap and delivers each into its destination queue when its
//! delivery instant arrives.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::message::Incoming;

/// A packet scheduled for future delivery.
#[derive(Debug)]
pub(crate) struct Scheduled {
    pub deliver_at: Instant,
    pub msg: Incoming,
    pub to: Sender<Incoming>,
}

/// Heap entry ordered so the *earliest* delivery is the heap maximum
/// (`BinaryHeap` is a max-heap), ties broken by submission sequence.
#[derive(Debug)]
struct Entry {
    at: Instant,
    seq: u64,
    item: Box<Scheduled>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earlier instants compare greater.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle to the scheduler thread.
#[derive(Debug)]
pub(crate) struct Scheduler {
    tx: Sender<Scheduled>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Spawns the delivery thread. `in_flight` is decremented once per
    /// packet after it lands in its destination queue (including the
    /// shutdown flush), pairing with the increment the sender performs at
    /// submission time.
    pub fn spawn(in_flight: Arc<AtomicU64>) -> Self {
        let (tx, rx) = channel::unbounded::<Scheduled>();
        let handle = thread::Builder::new()
            .name("simnet-scheduler".into())
            .spawn(move || run(rx, &in_flight))
            .expect("failed to spawn simnet scheduler thread");
        Scheduler {
            tx,
            handle: Some(handle),
        }
    }

    /// Enqueues a packet for delivery. Returns `false` if the scheduler has
    /// shut down.
    pub fn submit(&self, item: Scheduled) -> bool {
        self.tx.send(item).is_ok()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        // Closing the channel makes `run` drain and exit.
        let (closed_tx, _) = channel::unbounded();
        self.tx = closed_tx;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run(rx: Receiver<Scheduled>, in_flight: &AtomicU64) {
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    loop {
        // Deliver everything that is due.
        let now = Instant::now();
        while heap.peek().is_some_and(|e| e.at <= now) {
            let entry = heap.pop().expect("peeked entry must exist");
            // A closed receiver just means the endpoint is gone.
            let _ = entry.item.to.send(entry.item.msg);
            in_flight.fetch_sub(1, AtomicOrdering::SeqCst);
        }
        // Wait for the next due time or a new submission.
        let wait = heap
            .peek()
            .map(|e| e.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_secs(3600));
        match rx.recv_timeout(wait) {
            Ok(item) => {
                seq += 1;
                heap.push(Entry {
                    at: item.deliver_at,
                    seq,
                    item: Box::new(item),
                });
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Waiting out the due times would block shutdown;
                // flush remaining packets immediately, earliest first.
                while let Some(entry) = heap.pop() {
                    let _ = entry.item.to.send(entry.item.msg);
                    in_flight.fetch_sub(1, AtomicOrdering::SeqCst);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::NodeId;
    use bytes::Bytes;

    fn msg(seq: u64) -> Incoming {
        Incoming {
            src: NodeId(0),
            dst: NodeId(1),
            payload: Bytes::from_static(b"x"),
            delivered_at: Instant::now(),
            seq,
        }
    }

    fn counter(n: u64) -> Arc<AtomicU64> {
        Arc::new(AtomicU64::new(n))
    }

    #[test]
    fn delivers_in_time_order() {
        let sched = Scheduler::spawn(counter(2));
        let (tx, rx) = channel::unbounded();
        let now = Instant::now();
        sched.submit(Scheduled {
            deliver_at: now + Duration::from_millis(30),
            msg: msg(2),
            to: tx.clone(),
        });
        sched.submit(Scheduled {
            deliver_at: now + Duration::from_millis(5),
            msg: msg(1),
            to: tx,
        });
        let first = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first.seq, 1);
        assert_eq!(second.seq, 2);
    }

    #[test]
    fn immediate_delivery() {
        let sched = Scheduler::spawn(counter(1));
        let (tx, rx) = channel::unbounded();
        sched.submit(Scheduled {
            deliver_at: Instant::now(),
            msg: msg(7),
            to: tx,
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap().seq, 7);
    }

    #[test]
    fn drop_flushes_pending() {
        let (tx, rx) = channel::unbounded();
        let pending = counter(1);
        {
            let sched = Scheduler::spawn(pending.clone());
            sched.submit(Scheduled {
                deliver_at: Instant::now() + Duration::from_secs(30),
                msg: msg(9),
                to: tx,
            });
            // Dropping the scheduler must not hang and must flush.
        }
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)).unwrap().seq, 9);
        assert_eq!(pending.load(AtomicOrdering::SeqCst), 0);
    }
}
