//! Per-link configuration: latency, bandwidth, loss, and admin state.

use std::time::Duration;

/// Transmission characteristics of one directed link.
///
/// A link's delivery time for a packet of `n` bytes is
/// `serialisation + latency + jitter`, where `serialisation = n / bandwidth`
/// also occupies the link (back-to-back packets queue behind each other),
/// while latency and jitter are pure propagation delay and do not occupy
/// the link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: Duration,
    /// Maximum extra random delay, uniformly distributed in `[0, jitter]`.
    pub jitter: Duration,
    /// Link throughput in bytes per second; `None` means infinite.
    pub bandwidth: Option<u64>,
    /// Probability in `[0, 1]` that a packet is silently dropped.
    pub loss: f64,
    /// Administrative state; a down link rejects sends.
    pub up: bool,
}

impl LinkConfig {
    /// A new link with the given one-way latency, no jitter, infinite
    /// bandwidth, no loss.
    pub fn new(latency: Duration) -> Self {
        LinkConfig {
            latency,
            jitter: Duration::ZERO,
            bandwidth: None,
            loss: 0.0,
            up: true,
        }
    }

    /// Typical LAN link: 0.5 ms latency, ~1 Gbit/s.
    pub fn lan() -> Self {
        LinkConfig::new(Duration::from_micros(500)).with_bandwidth(125_000_000)
    }

    /// Typical campus/metro link: 5 ms latency, ~100 Mbit/s.
    pub fn campus() -> Self {
        LinkConfig::new(Duration::from_millis(5)).with_bandwidth(12_500_000)
    }

    /// Typical 1999-era WAN link: 80 ms latency, ~1 Mbit/s, 2 ms jitter.
    pub fn wan() -> Self {
        LinkConfig::new(Duration::from_millis(80))
            .with_bandwidth(125_000)
            .with_jitter(Duration::from_millis(2))
    }

    /// An instantaneous, lossless link (useful in unit tests).
    pub fn instant() -> Self {
        LinkConfig::new(Duration::ZERO)
    }

    /// Sets the bandwidth in bytes per second.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Sets the jitter bound.
    pub fn with_jitter(mut self, jitter: Duration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Serialisation delay for a packet of `bytes` on this link.
    pub fn serialisation_delay(&self, bytes: usize) -> Duration {
        match self.bandwidth {
            Some(bw) if bw > 0 => Duration::from_secs_f64(bytes as f64 / bw as f64),
            _ => Duration::ZERO,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialisation_delay_scales_with_size() {
        let link = LinkConfig::new(Duration::ZERO).with_bandwidth(1000);
        assert_eq!(link.serialisation_delay(1000), Duration::from_secs(1));
        assert_eq!(link.serialisation_delay(500), Duration::from_millis(500));
    }

    #[test]
    fn infinite_bandwidth_has_no_serialisation_delay() {
        let link = LinkConfig::new(Duration::from_millis(1));
        assert_eq!(link.serialisation_delay(1 << 30), Duration::ZERO);
    }

    #[test]
    fn loss_is_clamped() {
        assert_eq!(LinkConfig::instant().with_loss(7.0).loss, 1.0);
        assert_eq!(LinkConfig::instant().with_loss(-1.0).loss, 0.0);
    }

    #[test]
    fn presets_are_ordered_by_latency() {
        assert!(LinkConfig::lan().latency < LinkConfig::campus().latency);
        assert!(LinkConfig::campus().latency < LinkConfig::wan().latency);
    }
}
