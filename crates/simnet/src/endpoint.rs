//! A node's attachment point to the network.

use std::fmt;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};

use crate::error::NetError;
use crate::message::{Incoming, NodeId};
use crate::network::Network;

/// A node's handle for sending and receiving messages.
///
/// Returned by [`Network::add_node`]; owns the node's receive queue. See
/// the [crate-level documentation](crate) for an example.
pub struct Endpoint {
    net: Network,
    id: NodeId,
    rx: Receiver<Incoming>,
}

impl Endpoint {
    pub(crate) fn new(net: Network, id: NodeId, rx: Receiver<Incoming>) -> Self {
        Endpoint { net, id, rx }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The network this endpoint is attached to.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Sends `payload` to `dst` subject to the link model.
    ///
    /// # Errors
    ///
    /// See [`Network::send`].
    pub fn send(&self, dst: NodeId, payload: impl Into<Bytes>) -> Result<(), NetError> {
        self.net.send(self.id, dst, payload.into())
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if the network has shut down.
    pub fn recv(&self) -> Result<Incoming, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::RecvTimeout`] on timeout and
    /// [`NetError::Closed`] if the network has shut down.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::RecvTimeout,
            RecvTimeoutError::Disconnected => NetError::Closed,
        })
    }

    /// Returns a pending message if one is queued, without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Closed`] if the network has shut down; a merely
    /// empty queue yields `Ok(None)`.
    pub fn try_recv(&self) -> Result<Option<Incoming>, NetError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Number of messages waiting in the receive queue.
    pub fn queue_len(&self) -> usize {
        self.rx.len()
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("id", &self.id)
            .field("queued", &self.rx.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;

    #[test]
    fn try_recv_and_queue_len() {
        let net = Network::new(NetworkConfig::default());
        let a = net.add_node("a").unwrap();
        assert_eq!(a.try_recv().unwrap(), None);
        a.send(a.id(), b"one".to_vec()).unwrap();
        a.send(a.id(), b"two".to_vec()).unwrap();
        assert_eq!(a.queue_len(), 2);
        let first = a.try_recv().unwrap().unwrap();
        assert_eq!(first.payload.as_ref(), b"one");
    }

    #[test]
    fn recv_timeout_expires() {
        let net = Network::new(NetworkConfig::default());
        let a = net.add_node("a").unwrap();
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            NetError::RecvTimeout
        );
    }
}
