//! The [`Network`]: node registry, link table, and send path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{self, Sender};
use parking_lot::{Mutex, RwLock};

use crate::endpoint::Endpoint;
use crate::error::NetError;
use crate::link::LinkConfig;
use crate::message::{Incoming, NodeId};
use crate::scheduler::{Scheduled, Scheduler};
use crate::stats::{LinkStats, StatsWindow};

/// Global configuration for a [`Network`].
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Multiplier applied to every configured delay (latency, jitter, and
    /// serialisation). A scale of `0.1` runs a model ten times faster than
    /// its nominal timings.
    pub time_scale: f64,
    /// Link used between node pairs that have no explicit configuration;
    /// `None` means sends between unconfigured pairs fail with
    /// [`NetError::NoLink`].
    pub default_link: Option<LinkConfig>,
    /// Width of the sliding window used for observed-throughput statistics.
    pub stats_window: Duration,
    /// Seed for the loss/jitter random generator (deterministic tests).
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            time_scale: 1.0,
            default_link: Some(LinkConfig::lan()),
            stats_window: Duration::from_secs(1),
            seed: 0x5eed_f00d,
        }
    }
}

#[derive(Debug)]
struct NodeRecord {
    name: String,
    up: bool,
    tx: Sender<Incoming>,
}

#[derive(Debug)]
struct LinkState {
    config: LinkConfig,
    /// Instant until which the link's serialiser is occupied (bandwidth
    /// queueing): a packet starts serialising at `max(now, busy_until)`.
    busy_until: Instant,
    stats: StatsWindow,
}

#[derive(Debug)]
pub(crate) struct Inner {
    config: NetworkConfig,
    nodes: RwLock<Vec<NodeRecord>>,
    names: RwLock<HashMap<String, NodeId>>,
    links: Mutex<HashMap<(NodeId, NodeId), LinkState>>,
    scheduler: Scheduler,
    rng: Mutex<crate::rng::Rng>,
    seq: AtomicU64,
    /// Packets accepted by [`Network::send`] but not yet placed in their
    /// destination queue. Self-sends bypass the scheduler and never count.
    in_flight: Arc<AtomicU64>,
}

/// An in-process simulated network.
///
/// Cloning a `Network` yields another handle to the same network. See the
/// [crate-level documentation](crate) for an example.
#[derive(Debug, Clone)]
pub struct Network {
    inner: Arc<Inner>,
}

impl Network {
    /// Creates an empty network and starts its delivery scheduler.
    pub fn new(config: NetworkConfig) -> Self {
        let seed = config.seed;
        let in_flight = Arc::new(AtomicU64::new(0));
        Network {
            inner: Arc::new(Inner {
                config,
                nodes: RwLock::new(Vec::new()),
                names: RwLock::new(HashMap::new()),
                links: Mutex::new(HashMap::new()),
                scheduler: Scheduler::spawn(in_flight.clone()),
                rng: Mutex::new(crate::rng::Rng::seed_from_u64(seed)),
                seq: AtomicU64::new(0),
                in_flight,
            }),
        }
    }

    /// Registers a node and returns its [`Endpoint`].
    ///
    /// # Errors
    ///
    /// Returns [`NetError::DuplicateName`] if the name is taken.
    pub fn add_node(&self, name: &str) -> Result<Endpoint, NetError> {
        let mut names = self.inner.names.write();
        if names.contains_key(name) {
            return Err(NetError::DuplicateName(name.to_owned()));
        }
        let mut nodes = self.inner.nodes.write();
        let id = NodeId(nodes.len() as u32);
        let (tx, rx) = channel::unbounded();
        nodes.push(NodeRecord {
            name: name.to_owned(),
            up: true,
            tx,
        });
        names.insert(name.to_owned(), id);
        Ok(Endpoint::new(self.clone(), id, rx))
    }

    /// Crash-restarts a node: its old inbox (and any [`Endpoint`] still
    /// holding it) is abandoned, a fresh queue is installed, the node is
    /// marked up, and a new [`Endpoint`] for the same id and name is
    /// returned. Packets already scheduled toward the old queue are lost —
    /// exactly what a process crash does to its socket buffers. The name
    /// registration is unchanged, so peers keep addressing the node by the
    /// same id.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for an id not in this network.
    pub fn restart_node(&self, id: NodeId) -> Result<Endpoint, NetError> {
        let mut nodes = self.inner.nodes.write();
        let rec = nodes
            .get_mut(id.0 as usize)
            .ok_or(NetError::UnknownNode(id))?;
        let (tx, rx) = channel::unbounded();
        rec.tx = tx;
        rec.up = true;
        Ok(Endpoint::new(self.clone(), id, rx))
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.inner.names.read().get(name).copied()
    }

    /// Returns the name a node was registered under.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownNode`] for an id not in this network.
    pub fn node_name(&self, id: NodeId) -> Result<String, NetError> {
        self.inner
            .nodes
            .read()
            .get(id.0 as usize)
            .map(|n| n.name.clone())
            .ok_or(NetError::UnknownNode(id))
    }

    /// All node ids currently registered.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.inner.nodes.read().len() as u32)
            .map(NodeId)
            .collect()
    }

    /// Marks a node up or down. Sends to or from a down node fail.
    pub fn set_node_up(&self, id: NodeId, up: bool) -> Result<(), NetError> {
        let mut nodes = self.inner.nodes.write();
        let rec = nodes
            .get_mut(id.0 as usize)
            .ok_or(NetError::UnknownNode(id))?;
        rec.up = up;
        Ok(())
    }

    /// Whether a node is currently up.
    pub fn node_up(&self, id: NodeId) -> Result<bool, NetError> {
        self.inner
            .nodes
            .read()
            .get(id.0 as usize)
            .map(|n| n.up)
            .ok_or(NetError::UnknownNode(id))
    }

    /// Configures the link between `a` and `b` **in both directions**.
    pub fn set_link(&self, a: NodeId, b: NodeId, config: LinkConfig) -> Result<(), NetError> {
        self.set_link_directed(a, b, config.clone())?;
        self.set_link_directed(b, a, config)
    }

    /// Configures only the `src → dst` direction of a link.
    pub fn set_link_directed(
        &self,
        src: NodeId,
        dst: NodeId,
        config: LinkConfig,
    ) -> Result<(), NetError> {
        self.check_node(src)?;
        self.check_node(dst)?;
        let mut links = self.inner.links.lock();
        let now = Instant::now();
        let window = self.inner.config.stats_window;
        links
            .entry((src, dst))
            .and_modify(|l| l.config = config.clone())
            .or_insert_with(|| LinkState {
                config,
                busy_until: now,
                stats: StatsWindow::new(window),
            });
        Ok(())
    }

    /// Takes the link between `a` and `b` down in both directions
    /// (a network partition between the pair).
    pub fn partition(&self, a: NodeId, b: NodeId) -> Result<(), NetError> {
        self.set_link_up(a, b, false)
    }

    /// Restores a previously partitioned pair.
    pub fn heal(&self, a: NodeId, b: NodeId) -> Result<(), NetError> {
        self.set_link_up(a, b, true)
    }

    fn set_link_up(&self, a: NodeId, b: NodeId, up: bool) -> Result<(), NetError> {
        for (s, d) in [(a, b), (b, a)] {
            let mut cfg = self.link_config(s, d)?;
            cfg.up = up;
            self.set_link_directed(s, d, cfg)?;
        }
        Ok(())
    }

    /// Effective configuration of the `src → dst` link (explicit or the
    /// network default).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NoLink`] when the pair is unconfigured and the
    /// network has no default link.
    pub fn link_config(&self, src: NodeId, dst: NodeId) -> Result<LinkConfig, NetError> {
        if let Some(l) = self.inner.links.lock().get(&(src, dst)) {
            return Ok(l.config.clone());
        }
        self.inner
            .config
            .default_link
            .clone()
            .ok_or(NetError::NoLink(src, dst))
    }

    /// Traffic statistics of the `src → dst` link.
    pub fn link_stats(&self, src: NodeId, dst: NodeId) -> LinkStats {
        let mut links = self.inner.links.lock();
        match links.get_mut(&(src, dst)) {
            Some(l) => l.stats.snapshot(Instant::now()),
            None => LinkStats::default(),
        }
    }

    /// Feeds one receiver-measured one-way delivery latency (µs) back
    /// into the `src → dst` link's statistics. The transport itself
    /// cannot see queueing and jitter as the application experiences
    /// them, so the application layer reports what its envelope timing
    /// stamps actually measured; consumers (e.g. layout cost models)
    /// read it back through [`Network::link_stats`] as
    /// `observed_latency_us`. Unknown nodes are ignored.
    pub fn record_observed_latency(&self, src: NodeId, dst: NodeId, us: u64) {
        if self.check_node(src).is_err() || self.check_node(dst).is_err() || src == dst {
            return;
        }
        let Ok(cfg) = self.link_config(src, dst) else {
            return;
        };
        let mut links = self.inner.links.lock();
        let now = Instant::now();
        let window = self.inner.config.stats_window;
        let link = links.entry((src, dst)).or_insert_with(|| LinkState {
            config: cfg,
            busy_until: now,
            stats: StatsWindow::new(window),
        });
        link.stats.record_observed_latency(us);
    }

    /// The model's one-way latency between two nodes, after time scaling.
    ///
    /// This is what a zero-byte probe would observe (excluding jitter); the
    /// FarGo monitor exposes it as the `latency` system profiling service.
    pub fn model_latency(&self, src: NodeId, dst: NodeId) -> Result<Duration, NetError> {
        let cfg = self.link_config(src, dst)?;
        Ok(self.scaled(cfg.latency))
    }

    /// The model's bandwidth between two nodes in bytes/second (unscaled;
    /// `None` means unlimited). The FarGo monitor exposes it as the
    /// `bandwidth` system profiling service.
    pub fn model_bandwidth(&self, src: NodeId, dst: NodeId) -> Result<Option<u64>, NetError> {
        Ok(self.link_config(src, dst)?.bandwidth)
    }

    fn scaled(&self, d: Duration) -> Duration {
        d.mul_f64(self.inner.config.time_scale.max(0.0))
    }

    fn check_node(&self, id: NodeId) -> Result<(), NetError> {
        if (id.0 as usize) < self.inner.nodes.read().len() {
            Ok(())
        } else {
            Err(NetError::UnknownNode(id))
        }
    }

    /// Sends `payload` from `src` to `dst`, subject to the link model.
    ///
    /// Local sends (`src == dst`) bypass the link model and deliver
    /// immediately. Lost packets (loss model) are dropped silently, as on a
    /// real network: the send itself still succeeds.
    ///
    /// # Errors
    ///
    /// Fails if either node is unknown or down, or the link is down or
    /// missing (with no default configured).
    pub fn send(&self, src: NodeId, dst: NodeId, payload: Bytes) -> Result<(), NetError> {
        let (dst_tx, seq) = {
            let nodes = self.inner.nodes.read();
            let s = nodes
                .get(src.0 as usize)
                .ok_or(NetError::UnknownNode(src))?;
            if !s.up {
                return Err(NetError::NodeDown(src));
            }
            let d = nodes
                .get(dst.0 as usize)
                .ok_or(NetError::UnknownNode(dst))?;
            if !d.up {
                return Err(NetError::NodeDown(dst));
            }
            (d.tx.clone(), self.inner.seq.fetch_add(1, Ordering::Relaxed))
        };

        let now = Instant::now();
        let msg = Incoming {
            src,
            dst,
            payload,
            delivered_at: now,
            seq,
        };

        if src == dst {
            let _ = dst_tx.send(msg);
            return Ok(());
        }

        let cfg = self.link_config(src, dst)?;
        if !cfg.up {
            return Err(NetError::LinkDown(src, dst));
        }

        let size = msg.payload.len();
        let deliver_at = {
            let mut links = self.inner.links.lock();
            let window = self.inner.config.stats_window;
            let link = links.entry((src, dst)).or_insert_with(|| LinkState {
                config: cfg.clone(),
                busy_until: now,
                stats: StatsWindow::new(window),
            });

            // Loss model.
            if cfg.loss > 0.0 && self.inner.rng.lock().gen_f64() < cfg.loss {
                link.stats.record_drop();
                return Ok(());
            }
            link.stats.record(now, size as u64);

            // Bandwidth queueing: serialisation occupies the link.
            let ser = self.scaled(cfg.serialisation_delay(size));
            let start = link.busy_until.max(now);
            link.busy_until = start + ser;

            // Propagation: latency plus uniform jitter.
            let jitter = if cfg.jitter.is_zero() {
                Duration::ZERO
            } else {
                cfg.jitter.mul_f64(self.inner.rng.lock().gen_f64())
            };
            start + ser + self.scaled(cfg.latency) + self.scaled(jitter)
        };

        self.inner.in_flight.fetch_add(1, Ordering::SeqCst);
        if !self.inner.scheduler.submit(Scheduled {
            deliver_at,
            msg,
            to: dst_tx,
        }) {
            self.inner.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Control-plane admission check for out-of-band transports.
    ///
    /// When envelopes travel over a real transport (e.g. TCP loopback),
    /// the simnet network stays attached as the cluster's fault-injection
    /// control plane: the transport consults `offer` before putting a
    /// payload on the wire. `offer` applies the same admission rules and
    /// bookkeeping as [`Network::send`] — node/link up checks, the loss
    /// model, link statistics — but never schedules a delivery.
    ///
    /// Returns `Ok(true)` if the payload may be transmitted, `Ok(false)`
    /// if the loss model dropped it (the caller must discard it silently,
    /// exactly like a lost packet).
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Network::send`]: unknown or
    /// down node, down or missing link.
    pub fn offer(&self, src: NodeId, dst: NodeId, len: usize) -> Result<bool, NetError> {
        {
            let nodes = self.inner.nodes.read();
            let s = nodes
                .get(src.0 as usize)
                .ok_or(NetError::UnknownNode(src))?;
            if !s.up {
                return Err(NetError::NodeDown(src));
            }
            let d = nodes
                .get(dst.0 as usize)
                .ok_or(NetError::UnknownNode(dst))?;
            if !d.up {
                return Err(NetError::NodeDown(dst));
            }
        }

        if src == dst {
            return Ok(true);
        }

        let cfg = self.link_config(src, dst)?;
        if !cfg.up {
            return Err(NetError::LinkDown(src, dst));
        }

        let now = Instant::now();
        let mut links = self.inner.links.lock();
        let window = self.inner.config.stats_window;
        let link = links.entry((src, dst)).or_insert_with(|| LinkState {
            config: cfg.clone(),
            busy_until: now,
            stats: StatsWindow::new(window),
        });
        if cfg.loss > 0.0 && self.inner.rng.lock().gen_f64() < cfg.loss {
            link.stats.record_drop();
            return Ok(false);
        }
        link.stats.record(now, len as u64);
        Ok(true)
    }

    /// Packets currently travelling through the link model: accepted by
    /// [`Network::send`] but not yet delivered into their destination
    /// queue. Reaching zero (with all endpoint queues drained) is the
    /// network half of a quiescence check.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(NetworkConfig {
            default_link: Some(LinkConfig::instant()),
            ..NetworkConfig::default()
        })
    }

    #[test]
    fn duplicate_names_rejected() {
        let n = net();
        n.add_node("a").unwrap();
        assert!(matches!(n.add_node("a"), Err(NetError::DuplicateName(_))));
    }

    #[test]
    fn name_lookup_roundtrip() {
        let n = net();
        let a = n.add_node("alpha").unwrap();
        assert_eq!(n.node_by_name("alpha"), Some(a.id()));
        assert_eq!(n.node_name(a.id()).unwrap(), "alpha");
        assert_eq!(n.node_by_name("nope"), None);
    }

    #[test]
    fn basic_delivery() {
        let n = net();
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        a.send(b.id(), b"hi".to_vec()).unwrap();
        let m = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload.as_ref(), b"hi");
        assert_eq!(m.src, a.id());
    }

    #[test]
    fn self_send_is_immediate() {
        let n = net();
        let a = n.add_node("a").unwrap();
        a.send(a.id(), b"loop".to_vec()).unwrap();
        let m = a.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload.as_ref(), b"loop");
    }

    #[test]
    fn latency_is_respected() {
        let n = Network::new(NetworkConfig::default());
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_link(a.id(), b.id(), LinkConfig::new(Duration::from_millis(50)))
            .unwrap();
        let t0 = Instant::now();
        a.send(b.id(), b"x".to_vec()).unwrap();
        b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn bandwidth_delays_large_messages() {
        let n = Network::new(NetworkConfig::default());
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        // 10 KB/s: a 1 KB message takes ~100 ms to serialise.
        n.set_link(
            a.id(),
            b.id(),
            LinkConfig::new(Duration::ZERO).with_bandwidth(10_000),
        )
        .unwrap();
        let t0 = Instant::now();
        a.send(b.id(), vec![0u8; 1000]).unwrap();
        b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn partition_blocks_and_heal_restores() {
        let n = net();
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_link(a.id(), b.id(), LinkConfig::instant()).unwrap();
        n.partition(a.id(), b.id()).unwrap();
        assert!(matches!(
            a.send(b.id(), b"x".to_vec()),
            Err(NetError::LinkDown(_, _))
        ));
        n.heal(a.id(), b.id()).unwrap();
        a.send(b.id(), b"y".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn down_node_rejects_traffic() {
        let n = net();
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_node_up(b.id(), false).unwrap();
        assert!(matches!(
            a.send(b.id(), b"x".to_vec()),
            Err(NetError::NodeDown(_))
        ));
        assert!(!n.node_up(b.id()).unwrap());
    }

    #[test]
    fn restart_replaces_queue_and_revives_node() {
        let n = net();
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        // Message sitting in b's old queue is lost across the restart.
        a.send(b.id(), b"pre-crash".to_vec()).unwrap();
        n.set_node_up(b.id(), false).unwrap();
        assert!(matches!(
            a.send(b.id(), b"while-down".to_vec()),
            Err(NetError::NodeDown(_))
        ));
        let b2 = n.restart_node(b.id()).unwrap();
        assert_eq!(b2.id(), b.id());
        assert!(n.node_up(b.id()).unwrap());
        assert_eq!(n.node_name(b2.id()).unwrap(), "b");
        a.send(b.id(), b"post-restart".to_vec()).unwrap();
        let m = b2.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(m.payload.as_ref(), b"post-restart");
        // The fresh queue never saw the pre-crash packet.
        assert!(b2.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn restart_unknown_node_fails() {
        let n = net();
        assert!(matches!(
            n.restart_node(NodeId(9)),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn total_loss_drops_silently() {
        let n = net();
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_link(a.id(), b.id(), LinkConfig::instant().with_loss(1.0))
            .unwrap();
        a.send(b.id(), b"x".to_vec()).unwrap();
        assert!(b.recv_timeout(Duration::from_millis(50)).is_err());
        assert_eq!(n.link_stats(a.id(), b.id()).dropped, 1);
    }

    #[test]
    fn in_flight_drains_to_zero() {
        let n = Network::new(NetworkConfig::default());
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_link(a.id(), b.id(), LinkConfig::new(Duration::from_millis(20)))
            .unwrap();
        a.send(b.id(), b"x".to_vec()).unwrap();
        assert_eq!(n.in_flight(), 1);
        b.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(n.in_flight(), 0);
        // Self-sends never enter the scheduler.
        a.send(a.id(), b"y".to_vec()).unwrap();
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    fn stats_account_bytes_and_messages() {
        let n = net();
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        a.send(b.id(), vec![0u8; 10]).unwrap();
        a.send(b.id(), vec![0u8; 30]).unwrap();
        let s = n.link_stats(a.id(), b.id());
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 40);
    }

    #[test]
    fn time_scale_shrinks_latency() {
        let n = Network::new(NetworkConfig {
            time_scale: 0.0,
            ..NetworkConfig::default()
        });
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_link(a.id(), b.id(), LinkConfig::new(Duration::from_secs(10)))
            .unwrap();
        a.send(b.id(), b"x".to_vec()).unwrap();
        // With scale 0, the 10 s link delivers immediately.
        assert!(b.recv_timeout(Duration::from_millis(500)).is_ok());
    }

    #[test]
    fn no_default_link_means_no_route() {
        let n = Network::new(NetworkConfig {
            default_link: None,
            ..NetworkConfig::default()
        });
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        assert!(matches!(
            a.send(b.id(), b"x".to_vec()),
            Err(NetError::NoLink(_, _))
        ));
    }

    #[test]
    fn model_probes_reflect_config() {
        let n = Network::new(NetworkConfig::default());
        let a = n.add_node("a").unwrap();
        let b = n.add_node("b").unwrap();
        n.set_link(
            a.id(),
            b.id(),
            LinkConfig::new(Duration::from_millis(7)).with_bandwidth(42),
        )
        .unwrap();
        assert_eq!(
            n.model_latency(a.id(), b.id()).unwrap(),
            Duration::from_millis(7)
        );
        assert_eq!(n.model_bandwidth(a.id(), b.id()).unwrap(), Some(42));
    }
}
