//! Per-link traffic statistics.
//!
//! The FarGo monitoring layer's system-profiling services (`bandwidth`,
//! `latency`) are computed from these counters.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Sliding-window traffic accounting for one directed link.
#[derive(Debug)]
pub(crate) struct StatsWindow {
    /// Total messages ever sent on this link.
    pub messages: u64,
    /// Total payload bytes ever sent on this link.
    pub bytes: u64,
    /// Total messages dropped by the loss model.
    pub dropped: u64,
    /// Sum of receiver-observed one-way delivery latencies (µs), fed
    /// back by the application layer from envelope timing stamps.
    observed_latency_us_sum: u64,
    /// Number of observed-latency samples behind the sum.
    observed_samples: u64,
    /// Recent (send instant, byte count) samples, pruned to `window`.
    recent: VecDeque<(Instant, u64)>,
    window: Duration,
}

impl StatsWindow {
    pub fn new(window: Duration) -> Self {
        StatsWindow {
            messages: 0,
            bytes: 0,
            dropped: 0,
            observed_latency_us_sum: 0,
            observed_samples: 0,
            recent: VecDeque::new(),
            window,
        }
    }

    pub fn record(&mut self, now: Instant, bytes: u64) {
        self.messages += 1;
        self.bytes += bytes;
        self.recent.push_back((now, bytes));
        self.prune(now);
    }

    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Accounts one receiver-measured delivery latency for this link.
    pub fn record_observed_latency(&mut self, us: u64) {
        self.observed_latency_us_sum = self.observed_latency_us_sum.saturating_add(us);
        self.observed_samples += 1;
    }

    fn prune(&mut self, now: Instant) {
        while let Some(&(t, _)) = self.recent.front() {
            if now.duration_since(t) > self.window {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Observed throughput in bytes/second over the sliding window.
    pub fn throughput(&mut self, now: Instant) -> f64 {
        self.prune(now);
        let total: u64 = self.recent.iter().map(|&(_, b)| b).sum();
        let secs = self.window.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            total as f64 / secs
        }
    }

    pub fn snapshot(&mut self, now: Instant) -> LinkStats {
        LinkStats {
            messages: self.messages,
            bytes: self.bytes,
            dropped: self.dropped,
            throughput: self.throughput(now),
            observed_samples: self.observed_samples,
            observed_latency_us: if self.observed_samples == 0 {
                None
            } else {
                Some(self.observed_latency_us_sum as f64 / self.observed_samples as f64)
            },
        }
    }
}

/// A point-in-time snapshot of one directed link's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Total messages sent.
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Messages dropped by the loss model.
    pub dropped: u64,
    /// Observed throughput (bytes/s) over the recent window.
    pub throughput: f64,
    /// Receiver-measured delivery latency samples fed back so far.
    pub observed_samples: u64,
    /// Mean receiver-measured one-way latency in µs (`None` until the
    /// application layer feeds samples via
    /// [`Network::record_observed_latency`](crate::Network::record_observed_latency)).
    pub observed_latency_us: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut w = StatsWindow::new(Duration::from_secs(10));
        let now = Instant::now();
        w.record(now, 100);
        w.record(now, 50);
        w.record_drop();
        let snap = w.snapshot(now);
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 150);
        assert_eq!(snap.dropped, 1);
    }

    #[test]
    fn throughput_reflects_window() {
        let mut w = StatsWindow::new(Duration::from_secs(1));
        let now = Instant::now();
        w.record(now, 1000);
        assert!((w.throughput(now) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn observed_latency_averages_fed_samples() {
        let mut w = StatsWindow::new(Duration::from_secs(1));
        let now = Instant::now();
        assert_eq!(w.snapshot(now).observed_latency_us, None);
        w.record_observed_latency(100);
        w.record_observed_latency(300);
        let snap = w.snapshot(now);
        assert_eq!(snap.observed_samples, 2);
        assert_eq!(snap.observed_latency_us, Some(200.0));
    }

    #[test]
    fn old_samples_are_pruned() {
        let mut w = StatsWindow::new(Duration::from_millis(1));
        let t0 = Instant::now();
        w.record(t0, 1000);
        let later = t0 + Duration::from_millis(50);
        assert_eq!(w.throughput(later), 0.0);
        // Totals are not pruned.
        assert_eq!(w.bytes, 1000);
    }
}
