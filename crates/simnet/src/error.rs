//! Error type for network operations.

use std::error::Error;
use std::fmt;

use crate::message::NodeId;

/// Errors produced by [`crate::Network`] and [`crate::Endpoint`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The referenced node does not exist in this network.
    UnknownNode(NodeId),
    /// A node with the given name already exists.
    DuplicateName(String),
    /// The destination node exists but is currently down.
    NodeDown(NodeId),
    /// There is no link configured between the two nodes.
    NoLink(NodeId, NodeId),
    /// The link exists but is administratively down (partitioned).
    LinkDown(NodeId, NodeId),
    /// A blocking receive timed out.
    RecvTimeout,
    /// The endpoint's queue is closed (network shut down).
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::DuplicateName(name) => write!(f, "node name {name:?} already registered"),
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::NoLink(a, b) => write!(f, "no link between {a} and {b}"),
            NetError::LinkDown(a, b) => write!(f, "link between {a} and {b} is down"),
            NetError::RecvTimeout => write!(f, "receive timed out"),
            NetError::Closed => write!(f, "network is shut down"),
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            NetError::UnknownNode(NodeId(1)),
            NetError::DuplicateName("x".into()),
            NetError::NodeDown(NodeId(2)),
            NetError::NoLink(NodeId(1), NodeId(2)),
            NetError::LinkDown(NodeId(1), NodeId(2)),
            NetError::RecvTimeout,
            NetError::Closed,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
