//! Node identifiers and the incoming-message envelope.

use std::fmt;
use std::time::Instant;

use bytes::Bytes;

/// Identifier of a node (a host) attached to a [`crate::Network`].
///
/// `NodeId`s are small, copyable handles issued by
/// [`crate::Network::add_node`]; they are unique within one network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of the node within its network.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Reconstructs a `NodeId` from a raw index.
    ///
    /// Only meaningful for indices previously obtained from
    /// [`NodeId::index`] on the same network.
    pub fn from_index(index: u32) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A message delivered to an [`crate::Endpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct Incoming {
    /// The node that sent the message.
    pub src: NodeId,
    /// The node the message was addressed to (the receiver).
    pub dst: NodeId,
    /// Message body.
    pub payload: Bytes,
    /// Wall-clock instant at which the network handed the message over.
    pub delivered_at: Instant,
    /// Monotonically increasing per-network sequence number.
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert_eq!(NodeId::from_index(3), NodeId::from_index(3));
    }
}
