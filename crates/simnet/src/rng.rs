//! Small deterministic PRNG for the loss/jitter models.
//!
//! SplitMix64: a fast, well-distributed 64-bit generator that needs only a
//! `u64` of state. Used instead of an external `rand` dependency; the
//! network only needs uniform `f64`s in `[0, 1)` for loss decisions and
//! jitter scaling, and determinism under a fixed seed for tests.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub(crate) struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    pub(crate) fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Rng::seed_from_u64(7);
        let mut below_half = 0u32;
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        // Roughly balanced around 0.5 — catches constant/degenerate output.
        assert!((300..700).contains(&below_half), "skewed: {below_half}");
    }
}
