//! Ready-made network topologies for experiments.

use crate::error::NetError;
use crate::link::LinkConfig;
use crate::message::NodeId;
use crate::network::{Network, NetworkConfig};

/// A builder for common experiment topologies.
///
/// ```
/// # fn main() -> Result<(), simnet::NetError> {
/// let topo = simnet::Topology::lan(3).build()?;
/// assert_eq!(topo.endpoints.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Topology {
    config: NetworkConfig,
    names: Vec<String>,
    /// Pairwise links applied after all default links: `(a, b, config)`.
    overrides: Vec<(usize, usize, LinkConfig)>,
    default_link: LinkConfig,
}

/// The materialised result of [`Topology::build`].
#[derive(Debug)]
pub struct BuiltTopology {
    /// The network itself.
    pub network: Network,
    /// One endpoint per requested node, in declaration order.
    pub endpoints: Vec<crate::Endpoint>,
}

impl Topology {
    /// `n` nodes, all pairs connected with [`LinkConfig::lan`].
    pub fn lan(n: usize) -> Self {
        Topology::uniform(n, LinkConfig::lan())
    }

    /// `n` nodes, all pairs connected with [`LinkConfig::wan`].
    pub fn wan(n: usize) -> Self {
        Topology::uniform(n, LinkConfig::wan())
    }

    /// `n` nodes, all pairs connected with the given link.
    pub fn uniform(n: usize, link: LinkConfig) -> Self {
        Topology {
            config: NetworkConfig::default(),
            names: (0..n).map(|i| format!("core{i}")).collect(),
            overrides: Vec::new(),
            default_link: link,
        }
    }

    /// Two LAN clusters of `a` and `b` nodes joined by a WAN bottleneck.
    ///
    /// Nodes `0..a` form the first cluster, `a..a+b` the second. Every
    /// cross-cluster pair uses [`LinkConfig::wan`].
    pub fn two_clusters(a: usize, b: usize) -> Self {
        let mut t = Topology::uniform(a + b, LinkConfig::lan());
        for i in 0..a {
            for j in a..a + b {
                t.overrides.push((i, j, LinkConfig::wan()));
            }
        }
        t
    }

    /// Replaces the network configuration.
    pub fn with_config(mut self, config: NetworkConfig) -> Self {
        self.config = config;
        self
    }

    /// Renames the nodes (must match the node count).
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the node count.
    pub fn with_names<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert_eq!(
            names.len(),
            self.names.len(),
            "topology has {} nodes but {} names given",
            self.names.len(),
            names.len()
        );
        self.names = names;
        self
    }

    /// Overrides the link between nodes `a` and `b` (by declaration index).
    pub fn with_link(mut self, a: usize, b: usize, link: LinkConfig) -> Self {
        self.overrides.push((a, b, link));
        self
    }

    /// Creates the network, registers the nodes, and wires the links.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetError`] from node or link registration.
    pub fn build(self) -> Result<BuiltTopology, NetError> {
        let network = Network::new(self.config);
        let mut endpoints = Vec::with_capacity(self.names.len());
        for name in &self.names {
            endpoints.push(network.add_node(name)?);
        }
        let ids: Vec<NodeId> = endpoints.iter().map(|e| e.id()).collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                network.set_link(ids[i], ids[j], self.default_link.clone())?;
            }
        }
        for (a, b, link) in self.overrides {
            network.set_link(ids[a], ids[b], link)?;
        }
        Ok(BuiltTopology { network, endpoints })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn lan_builds_fully_connected() {
        let t = Topology::lan(4).build().unwrap();
        assert_eq!(t.endpoints.len(), 4);
        let ids: Vec<_> = t.endpoints.iter().map(|e| e.id()).collect();
        for &i in &ids {
            for &j in &ids {
                if i != j {
                    assert!(t.network.link_config(i, j).is_ok());
                }
            }
        }
    }

    #[test]
    fn two_clusters_have_wan_in_between() {
        let t = Topology::two_clusters(2, 2).build().unwrap();
        let ids: Vec<_> = t.endpoints.iter().map(|e| e.id()).collect();
        let intra = t.network.link_config(ids[0], ids[1]).unwrap();
        let inter = t.network.link_config(ids[0], ids[2]).unwrap();
        assert!(inter.latency > intra.latency);
    }

    #[test]
    fn custom_names_and_links() {
        let t = Topology::lan(2)
            .with_names(["left", "right"])
            .with_link(0, 1, LinkConfig::new(Duration::from_millis(33)))
            .build()
            .unwrap();
        let ids: Vec<_> = t.endpoints.iter().map(|e| e.id()).collect();
        assert_eq!(t.network.node_name(ids[0]).unwrap(), "left");
        assert_eq!(
            t.network.link_config(ids[0], ids[1]).unwrap().latency,
            Duration::from_millis(33)
        );
    }

    #[test]
    #[should_panic(expected = "names given")]
    fn wrong_name_count_panics() {
        let _ = Topology::lan(3).with_names(["only-one"]);
    }
}
