//! # simnet — an in-process simulated network
//!
//! `simnet` is the communication substrate underneath the FarGo-RS runtime
//! (the paper's *Peer Interface* layer). It provides a datagram service
//! between named [`NodeId`]s with configurable per-link characteristics:
//!
//! * **latency** (base + random jitter),
//! * **bandwidth** (serialisation delay and queueing on the link),
//! * **loss** (probabilistic drops),
//! * **partitions** (links or whole nodes taken down),
//!
//! plus per-link **statistics** (bytes, messages, observed throughput) that
//! the FarGo monitoring layer exposes as its system-profiling services.
//!
//! The network is *real-threaded*: a scheduler thread holds a time-ordered
//! heap of in-flight packets and delivers each one into the destination
//! endpoint's queue when its delivery time arrives. Time is wall-clock time
//! scaled by [`NetworkConfig::time_scale`], so experiments can model a slow
//! WAN while running quickly.
//!
//! ## Example
//!
//! ```
//! # use simnet::{Network, NetworkConfig, LinkConfig};
//! # use std::time::Duration;
//! # fn main() -> Result<(), simnet::NetError> {
//! let net = Network::new(NetworkConfig::default());
//! let a = net.add_node("a")?;
//! let b = net.add_node("b")?;
//! net.set_link(a.id(), b.id(), LinkConfig::lan())?;
//! a.send(b.id(), b"hello".to_vec())?;
//! let msg = b.recv_timeout(Duration::from_secs(1))?;
//! assert_eq!(msg.payload.as_ref(), b"hello");
//! # Ok(())
//! # }
//! ```

mod endpoint;
mod error;
mod link;
mod message;
mod network;
mod rng;
mod scheduler;
mod stats;
mod topology;

pub use endpoint::Endpoint;
pub use error::NetError;
pub use link::LinkConfig;
pub use message::{Incoming, NodeId};
pub use network::{Network, NetworkConfig};
pub use stats::LinkStats;
pub use topology::Topology;
