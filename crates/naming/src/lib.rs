//! # fargo-naming — the sharded location service
//!
//! The paper (§7) names *location-independent naming* as the successor to
//! tracker chains: instead of every departure growing a forwarding chain
//! rooted at wherever a reference happens to live, the **home-registry
//! role itself is sharded across Cores** by a consistent-hash ring. Each
//! Core runs one [`LocationShard`] holding the authoritative
//! `(complet → Core, move_epoch)` entries for the slice of the id space
//! it owns, and layout deltas gossip between Cores so remote lookups
//! resolve in one hop with lazy invalidation (a stale hint is detected by
//! a move-epoch mismatch and repaired on the reply path).
//!
//! This crate is the pure data-structure layer — no I/O, no clocks, no
//! threads beyond a mutex:
//!
//! * [`HashRing`] — a deterministic consistent-hash ring with virtual
//!   nodes. Determinism matters: every Core must compute the *same*
//!   owner for an id from the same membership list, including under the
//!   checker's virtual clock, so the hash is a fixed splitmix64 mix with
//!   no per-process state.
//! * [`LocationShard`] — the epoch-guarded authoritative map. Updates
//!   carrying an older move epoch are rejected (the same guard the
//!   tracker table applies); at equal epochs a tombstone wins, so a
//!   release cannot be resurrected by a delayed publish.
//! * [`DeltaLog`] — a bounded sequence-numbered ring of recent
//!   [`Delta`]s, the feed for piggybacked gossip. Per-peer cursors read
//!   "everything since seq N"; a cursor that fell off the retained
//!   window simply resumes at the window start (anti-entropy republish
//!   covers the gap).

use std::collections::BTreeMap;
use std::sync::Mutex;

use fargo_wire::CompletId;

// --- hashing ---------------------------------------------------------------

/// splitmix64: a fixed, high-quality 64-bit mixer. Chosen over a hasher
/// from std because `DefaultHasher` is explicitly unstable across
/// releases, and ring placement must agree across every Core (and every
/// toolchain) forever.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_vnode(node: u32, vnode: u32) -> u64 {
    splitmix64((u64::from(node) << 32) | u64::from(vnode))
}

fn hash_id(id: CompletId) -> u64 {
    splitmix64(splitmix64(u64::from(id.origin)) ^ id.seq)
}

// --- the ring --------------------------------------------------------------

/// Consistent-hash ring mapping complet ids to owning Cores.
///
/// Each member contributes `vnodes` points; an id is owned by the first
/// point clockwise from its hash. Adding or removing one Core therefore
/// moves only ~1/N of the id space — the property that makes shard
/// handoff on membership change cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, node)` sorted by point.
    points: Vec<(u64, u32)>,
    /// The membership the ring was built from, sorted.
    nodes: Vec<u32>,
    vnodes: u32,
}

impl HashRing {
    /// Builds a ring over `nodes` with `vnodes` virtual nodes each
    /// (clamped to at least 1). Duplicate members are collapsed.
    pub fn new(nodes: &[u32], vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1) as u32;
        let mut members: Vec<u32> = nodes.to_vec();
        members.sort_unstable();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * vnodes as usize);
        for &n in &members {
            for v in 0..vnodes {
                points.push((hash_vnode(n, v), n));
            }
        }
        // Ties between vnode points are broken by node index so every
        // Core sorts to the identical ring.
        points.sort_unstable();
        HashRing {
            points,
            nodes: members,
            vnodes,
        }
    }

    /// The Core owning `id`'s slice of the ring, or `None` on an empty
    /// ring.
    pub fn owner_of(&self, id: CompletId) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_id(id);
        let i = self.points.partition_point(|&(p, _)| p < h);
        Some(self.points[i % self.points.len()].1)
    }

    /// The membership this ring was built from, sorted ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// Whether `members` (in any order, duplicates allowed) differs from
    /// the membership this ring was built from.
    pub fn membership_changed(&self, members: &[u32]) -> bool {
        let mut m: Vec<u32> = members.to_vec();
        m.sort_unstable();
        m.dedup();
        m != self.nodes
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes as usize
    }
}

// --- the shard -------------------------------------------------------------

/// One authoritative location record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// Node index of the Core hosting the complet.
    pub node: u32,
    /// Move epoch that put it there (0 = never moved).
    pub epoch: u64,
    /// `false` = tombstone: the complet was released at this epoch.
    pub alive: bool,
}

/// What [`LocationShard::apply`] did with an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The entry was inserted or replaced.
    Applied,
    /// The update repeated what the shard already holds (anti-entropy
    /// republish); nothing changed, nothing to journal or re-gossip.
    Unchanged,
    /// The update carried a stale epoch (or lost an equal-epoch tie to a
    /// tombstone) and was rejected.
    Stale {
        /// The epoch the shard keeps.
        current_epoch: u64,
    },
}

/// The epoch-guarded authoritative `(complet → Core)` map one Core holds
/// for its slice of the ring.
///
/// A `BTreeMap` keeps snapshots in id order, so everything derived from
/// a snapshot (handoff streams, shard listings, journal entries) is a
/// pure function of the content — the deterministic checker compares
/// such artifacts byte-for-byte across replays.
#[derive(Debug, Default)]
pub struct LocationShard {
    entries: Mutex<BTreeMap<CompletId, ShardEntry>>,
}

impl LocationShard {
    pub fn new() -> LocationShard {
        LocationShard::default()
    }

    /// Applies one location delta under the epoch guard: a higher epoch
    /// always wins; at equal epochs a tombstone beats a live entry (a
    /// release is final for that incarnation) and everything else is
    /// kept as-is.
    pub fn apply(&self, id: CompletId, update: ShardEntry) -> ApplyOutcome {
        let mut map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        match map.entry(id) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let cur = *e.get();
                if cur == update {
                    return ApplyOutcome::Unchanged;
                }
                let wins = update.epoch > cur.epoch
                    || (update.epoch == cur.epoch && !update.alive && cur.alive);
                if wins {
                    e.insert(update);
                    ApplyOutcome::Applied
                } else {
                    ApplyOutcome::Stale {
                        current_epoch: cur.epoch,
                    }
                }
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(update);
                ApplyOutcome::Applied
            }
        }
    }

    /// The entry for `id`, tombstones included.
    pub fn lookup(&self, id: CompletId) -> Option<ShardEntry> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&id)
            .copied()
    }

    /// Every entry, id-ordered, tombstones included.
    pub fn snapshot(&self) -> Vec<(CompletId, ShardEntry)> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(&id, &e)| (id, e))
            .collect()
    }

    /// Live entries only (the view lookups and the planner want).
    pub fn alive(&self) -> Vec<(CompletId, ShardEntry)> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .filter(|(_, e)| e.alive)
            .map(|(&id, &e)| (id, e))
            .collect()
    }

    /// Removes and returns every entry whose id is no longer owned by
    /// `me` under `ring` — the handoff stream after a membership change.
    pub fn drain_not_owned(&self, ring: &HashRing, me: u32) -> Vec<(CompletId, ShardEntry)> {
        let mut map = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = Vec::new();
        map.retain(|&id, e| {
            let keep = ring.owner_of(id) == Some(me);
            if !keep {
                out.push((id, *e));
            }
            keep
        });
        out
    }

    /// Number of entries held (tombstones included).
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// --- the gossip feed -------------------------------------------------------

/// One gossiped location delta (the wire form lives in `fargo-core`'s
/// protocol; this is the in-memory record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delta {
    pub id: CompletId,
    pub node: u32,
    pub epoch: u64,
    pub alive: bool,
}

/// A bounded, sequence-numbered ring of recent deltas.
///
/// `push` assigns consecutive sequence numbers; `since(cursor)` returns
/// the retained deltas at or after `cursor` plus the next cursor value.
/// A cursor older than the retained window resumes at the window start —
/// gossip is a hint channel, and the periodic anti-entropy republish
/// (plus the authoritative publish on every layout change) covers
/// anything the window dropped.
#[derive(Debug)]
pub struct DeltaLog {
    inner: Mutex<DeltaLogInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct DeltaLogInner {
    buf: std::collections::VecDeque<Delta>,
    /// Sequence number of `buf[0]`.
    first_seq: u64,
}

impl DeltaLog {
    /// A log retaining at most `capacity` deltas (minimum 1).
    pub fn new(capacity: usize) -> DeltaLog {
        DeltaLog {
            inner: Mutex::new(DeltaLogInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends one delta, evicting the oldest past capacity. Returns the
    /// sequence number assigned.
    pub fn push(&self, delta: Delta) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let seq = inner.first_seq + inner.buf.len() as u64;
        inner.buf.push_back(delta);
        if inner.buf.len() > self.capacity {
            inner.buf.pop_front();
            inner.first_seq += 1;
        }
        seq
    }

    /// Deltas at or after `cursor` (capped at `max`), and the cursor to
    /// use next time.
    pub fn since(&self, cursor: u64, max: usize) -> (Vec<Delta>, u64) {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let start = cursor.max(inner.first_seq);
        let skip = (start - inner.first_seq) as usize;
        let out: Vec<Delta> = inner.buf.iter().skip(skip).take(max).copied().collect();
        let next = start + out.len() as u64;
        (out, next)
    }

    /// Sequence number the next push will get.
    pub fn next_seq(&self) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.first_seq + inner.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(origin: u32, seq: u64) -> CompletId {
        CompletId::new(origin, seq)
    }

    #[test]
    fn ring_is_deterministic_and_total() {
        let a = HashRing::new(&[0, 1, 2], 16);
        let b = HashRing::new(&[2, 1, 0, 1], 16); // order/dupes irrelevant
        assert_eq!(a, b);
        for o in 0..3u32 {
            for s in 0..50u64 {
                let owner = a.owner_of(id(o, s)).unwrap();
                assert_eq!(b.owner_of(id(o, s)), Some(owner));
                assert!(a.nodes().contains(&owner));
            }
        }
        assert!(HashRing::new(&[], 16).owner_of(id(0, 1)).is_none());
    }

    #[test]
    fn ring_spreads_ownership_roughly_evenly() {
        let ring = HashRing::new(&[0, 1, 2, 3, 4, 5, 6, 7], 16);
        let mut counts = [0usize; 8];
        for o in 0..4u32 {
            for s in 0..2_000u64 {
                counts[ring.owner_of(id(o, s)).unwrap() as usize] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 8_000);
        for (n, &c) in counts.iter().enumerate() {
            // 1/8th is 1000; 16 vnodes keeps every share within a loose
            // 3x band — the point is "no starved Core", not perfection.
            assert!(c > 300 && c < 3_000, "node {n} owns {c} of {total}");
        }
    }

    #[test]
    fn membership_change_moves_a_minority_of_ids() {
        let before = HashRing::new(&[0, 1, 2, 3], 16);
        let after = HashRing::new(&[0, 1, 2, 3, 4], 16);
        assert!(before.membership_changed(&[0, 1, 2, 3, 4]));
        assert!(!before.membership_changed(&[3, 2, 1, 0]));
        let mut moved = 0usize;
        let total = 4_000usize;
        for s in 0..total as u64 {
            if before.owner_of(id(0, s)) != after.owner_of(id(0, s)) {
                moved += 1;
            }
        }
        // Consistent hashing: adding one of five members should move
        // about 1/5th of the space, certainly well under half.
        assert!(moved < total / 2, "moved {moved}/{total}");
        assert!(moved > 0, "a new member must take over something");
    }

    #[test]
    fn shard_applies_under_epoch_guard() {
        let shard = LocationShard::new();
        let e = |node, epoch, alive| ShardEntry { node, epoch, alive };
        assert_eq!(shard.apply(id(0, 1), e(2, 1, true)), ApplyOutcome::Applied);
        // Stale epoch is rejected.
        assert_eq!(
            shard.apply(id(0, 1), e(9, 0, true)),
            ApplyOutcome::Stale { current_epoch: 1 }
        );
        // Re-publishing the identical entry is a no-op.
        assert_eq!(
            shard.apply(id(0, 1), e(2, 1, true)),
            ApplyOutcome::Unchanged
        );
        // Equal epoch: a tombstone wins over a live entry ...
        assert_eq!(shard.apply(id(0, 1), e(2, 1, false)), ApplyOutcome::Applied);
        // ... and a live entry never resurrects the same epoch.
        assert_eq!(
            shard.apply(id(0, 1), e(2, 1, true)),
            ApplyOutcome::Stale { current_epoch: 1 }
        );
        // A higher epoch resurrects (new incarnation of the id space).
        assert_eq!(shard.apply(id(0, 1), e(3, 2, true)), ApplyOutcome::Applied);
        assert_eq!(shard.lookup(id(0, 1)), Some(e(3, 2, true)));
        assert_eq!(shard.alive().len(), 1);
    }

    #[test]
    fn shard_drains_entries_lost_on_membership_change() {
        let shard = LocationShard::new();
        for s in 0..200u64 {
            shard.apply(
                id(0, s),
                ShardEntry {
                    node: 1,
                    epoch: 0,
                    alive: true,
                },
            );
        }
        let ring = HashRing::new(&[0, 1], 16);
        let lost = shard.drain_not_owned(&ring, 0);
        assert_eq!(lost.len() + shard.len(), 200);
        assert!(!lost.is_empty(), "node 1 must own part of the ring");
        for (i, _) in &lost {
            assert_eq!(ring.owner_of(*i), Some(1));
        }
        for (i, _) in shard.snapshot() {
            assert_eq!(ring.owner_of(i), Some(0));
        }
    }

    #[test]
    fn delta_log_windows_and_cursors() {
        let log = DeltaLog::new(4);
        let d = |seq| Delta {
            id: id(0, seq),
            node: 1,
            epoch: seq,
            alive: true,
        };
        for s in 0..6u64 {
            assert_eq!(log.push(d(s)), s);
        }
        // Cursor 0 fell off the window; it resumes at the window start.
        let (got, next) = log.since(0, 10);
        assert_eq!(got.len(), 4);
        assert_eq!(got[0].epoch, 2);
        assert_eq!(next, 6);
        // A caught-up cursor reads nothing.
        let (got, next) = log.since(next, 10);
        assert!(got.is_empty());
        assert_eq!(next, 6);
        // `max` caps a batch without losing the remainder.
        log.push(d(6));
        let (got, next) = log.since(next, 0);
        assert!(got.is_empty(), "zero max reads nothing");
        let (got, next2) = log.since(next, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(next2, 7);
        assert_eq!(log.next_seq(), 7);
    }
}
