//! Typed-stub generation tests: the `stub <Name>` macro section.

mod common;

use common::{cluster, teardown};
use fargo_core::{define_complet, Value};

define_complet! {
    /// An anchor with a generated typed stub.
    pub complet Greeter stub GreeterStub {
        state { greeting: String = "hello".to_owned() }
        fn greet(&mut self, _ctx, args) {
            let who = args.first().and_then(Value::as_str).unwrap_or("world");
            Ok(Value::from(format!("{} {}", self.greeting, who)))
        }
        fn set_greeting(&mut self, _ctx, args) {
            self.greeting = args.first().and_then(Value::as_str).unwrap_or("").to_owned();
            Ok(Value::Null)
        }
    }
}

#[test]
fn typed_stub_forwards_methods() {
    let (_net, reg, cores) = cluster(2);
    Greeter::register(&reg);
    let stub = GreeterStub::new(cores[0].new_complet("Greeter", &[]).unwrap());
    assert_eq!(stub.greet(&[]).unwrap(), Value::from("hello world"));
    stub.set_greeting(&[Value::from("shalom")]).unwrap();
    assert_eq!(
        stub.greet(&[Value::from("fargo")]).unwrap(),
        Value::from("shalom fargo")
    );
    teardown(&cores);
}

#[test]
fn typed_stub_keeps_working_after_moves() {
    let (_net, reg, cores) = cluster(2);
    Greeter::register(&reg);
    let stub: GreeterStub = cores[0].new_complet("Greeter", &[]).unwrap().into();
    // Deref gives the full BoundRef surface (move_to, meta, …).
    stub.move_to("core1").unwrap();
    assert!(cores[1].hosts(stub.id()));
    assert_eq!(stub.greet(&[]).unwrap(), Value::from("hello world"));
    assert_eq!(stub.meta().relocator_name(), "link");
    // Unknown methods still fail through the dynamic path.
    assert!(stub.bound().call("nope", &[]).is_err());
    teardown(&cores);
}
