//! Flight-recorder integration: journal capture across Cores, HLC
//! causality under message delay/reordering, layout reconstruction at
//! timeline points, the anomaly pass, and journal-driven event replay.

mod common;

use std::time::Duration;

use common::{cluster, cluster_with_config, registry, teardown, test_config};
use fargo_core::{define_complet, Anomaly, Core, Hlc, JournalEvent, JournalKind, Value};
use simnet::{LinkConfig, Network, NetworkConfig};

/// A cluster whose links add 1–5 ms of seeded random jitter, so messages
/// between different Core pairs genuinely arrive out of order. Location
/// gossip is pinned off: the scenario asserts chain-routed forwarding,
/// which piggybacked shard deltas would otherwise repair away.
fn jittery_cluster(n: usize) -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig {
        default_link: Some(
            LinkConfig::new(Duration::from_millis(1)).with_jitter(Duration::from_millis(4)),
        ),
        seed: 42,
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(test_config().with_naming_gossip_batch(0))
                .spawn()
                .expect("core must spawn")
        })
        .collect();
    (net, cores)
}

fn find<'a>(
    events: &'a [JournalEvent],
    kind: JournalKind,
    core: u32,
    subject: &str,
) -> &'a JournalEvent {
    events
        .iter()
        .find(|e| e.kind == kind && e.core == core && e.subject == subject)
        .unwrap_or_else(|| panic!("no {kind:?} for {subject} at core {core}"))
}

/// The acceptance scenario: a 3-Core run with two movements and a
/// chain-routed invocation, over jittery links. The merged timeline must
/// order causally-related events correctly — each departure before its
/// arrival, and invoke before forward before exec — even though wall-time
/// delivery was reordered.
#[test]
fn merged_timeline_respects_causality_under_jitter() {
    let (_net, cores) = jittery_cluster(3);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id().to_string();
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    // core0 still believes core1; the invocation is forwarded 0 -> 1 -> 2.
    msg.call("print", &[]).unwrap();

    let events = cores[0].collect_journal();
    assert!(
        events.windows(2).all(|w| w[0].hlc <= w[1].hlc),
        "merged timeline must be HLC-sorted"
    );

    // Movement causality: departure strictly precedes the arrival it
    // causes, for both hops.
    let departures: Vec<&JournalEvent> = events
        .iter()
        .filter(|e| e.kind == JournalKind::CompletDeparted && e.subject == id)
        .collect();
    assert_eq!(departures.len(), 2, "two movements journaled");
    for dep in departures {
        let dest = dep.peer.expect("move departure records destination");
        let arr = find(&events, JournalKind::CompletArrived, dest, &id);
        assert!(
            dep.hlc < arr.hlc,
            "departure {} at core{} must precede arrival {} at core{}",
            dep.hlc,
            dep.core,
            arr.hlc,
            arr.core
        );
    }

    // Invocation causality: issue at core0, tracker forward at core1,
    // execution at core2.
    let invoke = find(&events, JournalKind::Invoke, 0, &id);
    let forward = find(&events, JournalKind::Forward, 1, &id);
    let exec = find(&events, JournalKind::Exec, 2, &id);
    assert!(invoke.hlc < forward.hlc, "invoke before forward");
    assert!(forward.hlc < exec.hlc, "forward before exec");
    teardown(&cores);
}

/// `layout at <hlc>` semantics: checkpoints taken between movements
/// reconstruct the placement that held at each boundary.
#[test]
fn layout_at_reconstructs_each_movement_boundary() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id().to_string();
    // Each checkpoint is taken *after* the previous step's reply merged
    // the remote clock, so it dominates every event journaled so far.
    let at_creation = cores[0].hlc_now();
    msg.move_to("core1").unwrap();
    let after_first = cores[0].hlc_now();
    msg.move_to("core2").unwrap();
    let after_second = cores[0].hlc_now();

    let history = cores[0].layout_history();
    assert_eq!(history.at(at_creation).placement.get(&id), Some(&0));
    assert_eq!(history.at(after_first).placement.get(&id), Some(&1));
    assert_eq!(history.at(after_second).placement.get(&id), Some(&2));
    assert_eq!(
        history.at(Hlc::ZERO).placement.get(&id),
        None,
        "before creation the complet is placed nowhere"
    );
    teardown(&cores);
}

/// The anomaly pass must flag an artificially induced 4-hop forwarding
/// chain: sequential moves 0 -> 1 -> 2 -> 3 -> 4 with no invocations, so
/// no return ever shortens the chain.
#[test]
fn anomaly_pass_flags_long_forwarding_chain() {
    // Gossip off: piggybacked shard deltas would shorten the chain this
    // scenario deliberately grows.
    let (_net, _reg, cores) = cluster_with_config(5, test_config().with_naming_gossip_batch(0));
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id().to_string();
    for dest in ["core1", "core2", "core3", "core4"] {
        msg.move_to(dest).unwrap();
    }
    let anomalies = cores[0].layout_history().anomalies();
    let chain = anomalies
        .iter()
        .find_map(|a| match a {
            Anomaly::LongChain { complet, hops, .. } if *complet == id => Some(*hops),
            _ => None,
        })
        .unwrap_or_else(|| panic!("long chain not flagged; anomalies: {anomalies:?}"));
    assert_eq!(chain, 4, "chain 0->1->2->3->4 is four hops");
    teardown(&cores);
}

/// Repeated back-and-forth movement is flagged as ping-pong.
#[test]
fn anomaly_pass_flags_ping_pong_movement() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id().to_string();
    for _ in 0..3 {
        msg.move_to("core1").unwrap();
        msg.move_to("core0").unwrap();
    }
    let anomalies = cores[0].layout_history().anomalies();
    assert!(
        anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::PingPong { complet, .. } if *complet == id)),
        "ping-pong not flagged; anomalies: {anomalies:?}"
    );
    teardown(&cores);
}

/// With journaling off, nothing is recorded and no envelope carries an
/// HLC — the cluster behaves exactly as before the flight recorder.
#[test]
fn journaling_disabled_records_nothing() {
    let (_net, _reg, cores) = cluster_with_config(2, test_config().with_journaling(false));
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    msg.call("print", &[]).unwrap();
    assert!(cores[0].collect_journal().is_empty());
    assert_eq!(cores[0].hlc_now(), Hlc::ZERO, "clock never ticked");
    teardown(&cores);
}

define_complet! {
    /// Counts `on_event` notifications, for replay-delivery checks.
    pub complet Recorder {
        state { hits: i64 = 0 }
        fn on_event(&mut self, _ctx, _args) {
            self.hits += 1;
            Ok(Value::Null)
        }
        fn hits(&mut self, _ctx, _args) {
            Ok(Value::I64(self.hits))
        }
        fn watch(&mut self, ctx, _args) {
            ctx.subscribe_self("completArrived", None, true);
            Ok(Value::Null)
        }
    }
}

/// Journal-originated layout events flow through the same hub and the
/// same remote-listener delivery as live events: a complet that
/// subscribed to `completArrived` and *then migrated* still receives the
/// replayed arrivals, routed to it through its tracker chain.
#[test]
fn replayed_journal_events_reach_migrated_listener() {
    let (_net, reg, cores) = cluster(3);
    Recorder::register(&reg);
    let rec = cores[0].new_complet("Recorder", &[]).unwrap();
    rec.call("watch", &[]).unwrap();
    rec.move_to("core1").unwrap();
    // An arrival at core2: journaled where it happened, but core0's hub —
    // where the recorder subscribed — saw no live event for it.
    cores[2].new_complet("Message", &[]).unwrap();

    // The merged journal holds three arrivals (recorder created, recorder
    // re-installed at core1, message at core2) and one departure.
    let fired = cores[0].replay_layout_events(None);
    assert!(
        fired >= 4,
        "expected at least 4 replayable events, got {fired}"
    );
    // Deliveries are asynchronous invocations; poll until the three
    // arrivals land at the recorder's new home.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let hits = rec.call("hits", &[]).unwrap().as_i64().unwrap();
        if hits >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {hits}/3 replayed arrivals reached the migrated listener"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    teardown(&cores);
}
