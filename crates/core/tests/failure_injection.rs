//! Failure-injection tests: packet loss, partitions, dead Cores, and
//! races between failures and layout operations.

mod common;

use std::time::Duration;

use common::{registry, teardown, test_config};
use fargo_core::{Core, FargoError, Value};
use simnet::{LinkConfig, Network, NetworkConfig};

fn lossy_cluster(loss: f64, n: usize) -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant().with_loss(loss)),
        seed: 7,
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(test_config().with_rpc_timeout(Duration::from_millis(150)))
                .spawn()
                .unwrap()
        })
        .collect();
    (net, cores)
}

#[test]
fn total_loss_times_out_cleanly() {
    let (net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    // Break the link silently (loss, not an admin-down error).
    net.set_link(
        cores[0].node(),
        cores[1].node(),
        LinkConfig::instant().with_loss(1.0),
    )
    .unwrap();
    let err = msg.call("print", &[]).unwrap_err();
    assert_eq!(err, FargoError::Timeout);
    // Restore the link: the same stub works again.
    net.set_link(cores[0].node(), cores[1].node(), LinkConfig::instant())
        .unwrap();
    assert!(msg.call("print", &[]).is_ok());
    teardown(&cores);
}

#[test]
fn moderate_loss_is_survivable_by_application_retry() {
    // FarGo (like RMI) does not retransmit; callers retry. With 30% loss
    // each attempt succeeds with p ≈ 0.49, so a few retries get through.
    let (_net, cores) = lossy_cluster(0.30, 2);
    // Even instantiation may need retries under loss.
    let msg = (0..10)
        .find_map(|_| cores[0].new_complet_at("core1", "Message", &[]).ok())
        .expect("instantiation should succeed within ten attempts");
    let mut successes = 0;
    for _ in 0..20 {
        if msg.call("print", &[]).is_ok() {
            successes += 1;
        }
    }
    assert!(
        successes >= 5,
        "some calls must get through, got {successes}"
    );
    teardown(&cores);
}

#[test]
fn move_to_dead_core_fails_and_complet_survives() {
    let (_net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("alive")])
        .unwrap();
    cores[1].stop();
    let err = msg.move_to("core1").unwrap_err();
    assert!(
        matches!(
            err,
            FargoError::Net(_) | FargoError::Timeout | FargoError::ShuttingDown
        ),
        "got {err:?}"
    );
    assert!(cores[0].hosts(msg.id()));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("alive"));
    teardown(&cores);
}

#[test]
fn partition_heals_and_chains_recover() {
    let (net, cores) = lossy_cluster(0.0, 3);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    // Partition core0 from core1: the chain's first hop is cut.
    net.partition(cores[0].node(), cores[1].node()).unwrap();
    assert!(msg.call("print", &[]).is_err());
    // Heal: the same reference works again, and after the complet moves
    // on, the chain routes around through core1 to core2.
    net.heal(cores[0].node(), cores[1].node()).unwrap();
    assert!(msg.call("print", &[]).is_ok());
    msg.move_to("core2").unwrap();
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("hello fargo"));
    teardown(&cores);
}

#[test]
fn half_open_partition_times_out() {
    // Requests arrive but replies are dropped: the requester must time
    // out rather than hang.
    let (net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    net.set_link_directed(
        cores[1].node(),
        cores[0].node(),
        LinkConfig::instant().with_loss(1.0),
    )
    .unwrap();
    assert_eq!(msg.call("print", &[]).unwrap_err(), FargoError::Timeout);
    teardown(&cores);
}

#[test]
fn shutdown_mid_stream_of_invocations_degrades_cleanly() {
    let (_net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let m2 = msg.clone();
    let worker = std::thread::spawn(move || {
        let mut errs = 0;
        for _ in 0..200 {
            if m2.call("print", &[]).is_err() {
                errs += 1;
            }
        }
        errs
    });
    std::thread::sleep(Duration::from_millis(5));
    cores[1].stop();
    let errs = worker.join().unwrap();
    // After the stop, calls fail with clean errors rather than panics or
    // hangs; before it, they succeeded.
    assert!(errs > 0, "the stop must have been observed");
    teardown(&cores);
}

#[test]
fn slow_link_queueing_under_concurrent_load() {
    // A bandwidth-limited link with many concurrent callers: everything
    // completes, nothing interleaves corruptly.
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::new(Duration::from_micros(100)).with_bandwidth(2_000_000)),
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores: Vec<Core> = (0..2)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(test_config())
                .spawn()
                .unwrap()
        })
        .collect();
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    let payload = Value::Bytes(vec![1u8; 20_000]);
    let mut handles = Vec::new();
    for _ in 0..6 {
        let c = counter.clone();
        let p = payload.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                // Big argument exercises serialisation queueing.
                c.call("add", &[Value::I64(1), p.clone()]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(60));
    teardown(&cores);
}
