//! Failure-injection tests: packet loss, partitions, dead Cores, and
//! races between failures and layout operations.

mod common;

use std::time::Duration;

use common::{registry, teardown, test_config};
use fargo_core::{Core, CoreConfig, FargoError, MetricValue, Value};
use simnet::{LinkConfig, Network, NetworkConfig};

/// Seed for the simnet loss/jitter generator. CI sweeps several seeds
/// via `FARGO_SIMNET_SEED` so loss schedules differ run to run while
/// every individual run stays deterministic.
fn simnet_seed() -> u64 {
    std::env::var("FARGO_SIMNET_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn lossy_cluster(loss: f64, n: usize) -> (Network, Vec<Core>) {
    lossy_cluster_with(loss, n, |c| c.with_rpc_timeout(Duration::from_millis(150)))
}

fn lossy_cluster_with(
    loss: f64,
    n: usize,
    configure: impl Fn(CoreConfig) -> CoreConfig,
) -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant().with_loss(loss)),
        seed: simnet_seed(),
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(configure(test_config()))
                .spawn()
                .unwrap()
        })
        .collect();
    (net, cores)
}

#[test]
fn total_loss_times_out_cleanly() {
    let (net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    // Break the link silently (loss, not an admin-down error).
    net.set_link(
        cores[0].node(),
        cores[1].node(),
        LinkConfig::instant().with_loss(1.0),
    )
    .unwrap();
    let err = msg.call("print", &[]).unwrap_err();
    assert_eq!(err, FargoError::Timeout);
    // Restore the link: the same stub works again.
    net.set_link(cores[0].node(), cores[1].node(), LinkConfig::instant())
        .unwrap();
    assert!(msg.call("print", &[]).is_ok());
    teardown(&cores);
}

#[test]
fn moderate_loss_is_survivable_by_application_retry() {
    // The runtime retransmits with capped backoff, but the short 150ms
    // rpc budget here only allows a few attempts, so some calls still
    // fail; application-level retry on top recovers the rest.
    let (_net, cores) = lossy_cluster(0.30, 2);
    // Even instantiation may need retries under loss.
    let msg = (0..10)
        .find_map(|_| cores[0].new_complet_at("core1", "Message", &[]).ok())
        .expect("instantiation should succeed within ten attempts");
    let mut successes = 0;
    for _ in 0..20 {
        if msg.call("print", &[]).is_ok() {
            successes += 1;
        }
    }
    assert!(
        successes >= 5,
        "some calls must get through, got {successes}"
    );
    teardown(&cores);
}

#[test]
fn move_to_dead_core_fails_and_complet_survives() {
    let (_net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("alive")])
        .unwrap();
    cores[1].stop();
    let err = msg.move_to("core1").unwrap_err();
    assert!(
        matches!(
            err,
            FargoError::Net(_) | FargoError::Timeout | FargoError::ShuttingDown
        ),
        "got {err:?}"
    );
    assert!(cores[0].hosts(msg.id()));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("alive"));
    teardown(&cores);
}

#[test]
fn partition_heals_and_chains_recover() {
    let (net, cores) = lossy_cluster(0.0, 3);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    // Partition core0 from core1: the chain's first hop is cut.
    net.partition(cores[0].node(), cores[1].node()).unwrap();
    assert!(msg.call("print", &[]).is_err());
    // Heal: the same reference works again, and after the complet moves
    // on, the chain routes around through core1 to core2.
    net.heal(cores[0].node(), cores[1].node()).unwrap();
    assert!(msg.call("print", &[]).is_ok());
    msg.move_to("core2").unwrap();
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("hello fargo"));
    teardown(&cores);
}

#[test]
fn half_open_partition_times_out() {
    // Requests arrive but replies are dropped: the requester must time
    // out rather than hang.
    let (net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    net.set_link_directed(
        cores[1].node(),
        cores[0].node(),
        LinkConfig::instant().with_loss(1.0),
    )
    .unwrap();
    assert_eq!(msg.call("print", &[]).unwrap_err(), FargoError::Timeout);
    teardown(&cores);
}

#[test]
fn shutdown_mid_stream_of_invocations_degrades_cleanly() {
    let (_net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let m2 = msg.clone();
    let worker = std::thread::spawn(move || {
        let mut errs = 0;
        for _ in 0..200 {
            if m2.call("print", &[]).is_err() {
                errs += 1;
            }
        }
        errs
    });
    std::thread::sleep(Duration::from_millis(5));
    cores[1].stop();
    let errs = worker.join().unwrap();
    // After the stop, calls fail with clean errors rather than panics or
    // hangs; before it, they succeeded.
    assert!(errs > 0, "the stop must have been observed");
    teardown(&cores);
}

#[test]
fn lost_move_replies_leave_exactly_one_copy() {
    // Regression for the duplicated-complet hazard: drop 100% of the
    // dest->source traffic so every reply on the move path is lost. The
    // two-phase transfer must abort (the source never sees PrepareOk,
    // records the abort, and tells the destination), leaving the complet
    // live on exactly one Core — the source — with a working stub.
    let (net, cores) = lossy_cluster(0.0, 2);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("singleton")])
        .unwrap();
    net.set_link_directed(
        cores[1].node(),
        cores[0].node(),
        LinkConfig::instant().with_loss(1.0),
    )
    .unwrap();
    let err = msg.move_to("core1").unwrap_err();
    assert!(
        matches!(err, FargoError::Timeout | FargoError::MoveInDoubt(_)),
        "got {err:?}"
    );
    assert!(cores[0].hosts(msg.id()), "complet restored at the source");
    assert!(!cores[1].hosts(msg.id()), "no duplicate at the destination");
    // Heal the link: the same reference still works.
    net.set_link_directed(cores[1].node(), cores[0].node(), LinkConfig::instant())
        .unwrap();
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("singleton"));
    teardown(&cores);
}

#[test]
fn retried_invocations_execute_exactly_once() {
    // A non-idempotent method under 30% loss with a generous rpc budget:
    // every call eventually succeeds via retransmission, and the
    // receiver's reply-dedup cache ensures no retransmit re-executes.
    // Without dedup the counter would overshoot. (16 retransmissions
    // put per-call failure odds around 1e-5 — the fixed CI seeds never
    // hit it.)
    let (net, cores) = lossy_cluster_with(0.30, 2, |c| {
        c.with_rpc_timeout(Duration::from_secs(10))
            .with_rpc_retries(16)
    });
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    let calls = 30;
    for _ in 0..calls {
        counter
            .call("add", &[Value::I64(1)])
            .expect("call succeeds");
    }
    // Read back over a clean link so the assertion itself cannot flake.
    net.set_link(cores[0].node(), cores[1].node(), LinkConfig::instant())
        .unwrap();
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(calls));
    teardown(&cores);
}

#[test]
fn dedup_cache_eviction_under_churn() {
    // A tiny dedup cache under many distinct requests must evict old
    // entries (bounded memory) without disturbing live calls.
    let (_net, cores) = lossy_cluster_with(0.0, 2, |c| {
        c.with_rpc_timeout(Duration::from_secs(5))
            .with_dedup_capacity(8)
    });
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    for _ in 0..100 {
        counter.call("add", &[Value::I64(1)]).unwrap();
    }
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(100));
    let evictions: u64 = cores[1]
        .telemetry()
        .snapshot()
        .iter()
        .filter(|s| s.name == "fargo_dedup_evictions_total")
        .map(|s| match s.value {
            MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum();
    assert!(evictions > 0, "capacity 8 under 100+ requests must evict");
    teardown(&cores);
}

#[test]
fn slow_link_queueing_under_concurrent_load() {
    // A bandwidth-limited link with many concurrent callers: everything
    // completes, nothing interleaves corruptly.
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::new(Duration::from_micros(100)).with_bandwidth(2_000_000)),
        ..NetworkConfig::default()
    });
    let reg = registry();
    let cores: Vec<Core> = (0..2)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(test_config())
                .spawn()
                .unwrap()
        })
        .collect();
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    let payload = Value::Bytes(vec![1u8; 20_000]);
    let mut handles = Vec::new();
    for _ in 0..6 {
        let c = counter.clone();
        let p = payload.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..10 {
                // Big argument exercises serialisation queueing.
                c.call("add", &[Value::I64(1), p.clone()]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(60));
    teardown(&cores);
}
