//! Crash/restart durability tests: the four crash-mid-move
//! interleavings, partition + crash + heal, restart storms, and
//! checkpoint/restore edge cases. Every scenario runs with the
//! write-ahead log enabled and verifies the invariant the fault checker
//! sweeps for: *no acknowledged state is ever lost* — every state a
//! caller saw acknowledged survives the crash, and the complet stays
//! reachable afterwards.

mod common;

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use common::{fast_network, registry, test_config};
use fargo_core::{
    BoundRef, CompletId, CompletRef, CompletRegistry, Core, CoreConfig, FargoError, JournalKind,
    RefDescriptor, Value,
};
use simnet::{LinkConfig, Network};

/// Per-test scratch directory for the cores' write-ahead logs.
fn wal_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fargo-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("wal scratch dir");
    dir
}

fn wal_config(base: CoreConfig, root: &Path, i: usize) -> CoreConfig {
    base.with_wal_dir(root.join(format!("core{i}")))
}

/// Spawns `n` cores named `core0..` with per-core WAL directories.
fn wal_cluster_with(
    n: usize,
    tag: &str,
    base: CoreConfig,
) -> (Network, CompletRegistry, Vec<Core>, PathBuf) {
    let root = wal_root(tag);
    let net = fast_network();
    let reg = registry();
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(wal_config(base.clone(), &root, i))
                .spawn()
                .expect("core must spawn")
        })
        .collect();
    (net, reg, cores, root)
}

fn wal_cluster(n: usize, tag: &str) -> (Network, CompletRegistry, Vec<Core>, PathBuf) {
    wal_cluster_with(n, tag, test_config())
}

/// Restarts a crashed core on its old node with its old WAL directory;
/// spawn re-runs recovery automatically.
fn restart(
    net: &Network,
    reg: &CompletRegistry,
    base: CoreConfig,
    root: &Path,
    old: &Core,
    i: usize,
) -> Core {
    let ep = net.restart_node(old.node()).expect("restart node");
    Core::builder(net, &format!("core{i}"))
        .endpoint(ep)
        .registry(reg)
        .config(wal_config(base, root, i))
        .spawn()
        .expect("restarted core must spawn")
}

/// A reference seeded fresh at `core` (old stubs die with their Core).
fn fresh_stub(core: &Core, id: CompletId, type_name: &str) -> BoundRef {
    core.stub(CompletRef::from_descriptor(RefDescriptor::link(
        id,
        type_name,
        core.node().index(),
    )))
}

fn cleanup(root: &Path, cores: &[Core]) {
    for c in cores {
        c.stop();
    }
    let _ = std::fs::remove_dir_all(root);
}

// --- the four crash-mid-move interleavings ---------------------------------

/// Interleaving A: the destination is already dead when the move starts.
/// The prepare round fails, the source keeps the complet, and after the
/// destination restarts the same move succeeds.
#[test]
fn crash_a_dest_dead_before_prepare() {
    let (net, reg, mut cores, root) = wal_cluster(2, "a");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(5)]).unwrap();

    cores[1].stop();
    assert!(counter.move_to("core1").is_err(), "dest is down");
    assert!(cores[0].hosts(counter.id()), "source keeps the complet");
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(5));

    cores[1] = restart(&net, &reg, test_config(), &root, &cores[1], 1);
    counter.move_to("core1").unwrap();
    assert!(cores[1].hosts(counter.id()));
    assert!(!cores[0].hosts(counter.id()));
    assert_eq!(
        counter.call("add", &[Value::I64(1)]).unwrap(),
        Value::I64(6)
    );
    cleanup(&root, &cores);
}

/// Interleaving B: the destination crashes *between* holding the
/// prepared closure and receiving the commit. The source presume-commits
/// off its decision log; the restarted destination finds the held stream
/// in its WAL, queries the source's decision, and activates. Exactly one
/// copy survives, with the acknowledged state.
#[test]
fn crash_b_dest_crash_between_hold_and_commit() {
    let (net, reg, mut cores, root) = wal_cluster(2, "b");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(7)]).unwrap();

    // Slow the src->dst direction only: the prepare arrives late, its
    // reply returns instantly, and the commit spends another 400 ms in
    // flight — a wide window where the destination holds but has not
    // committed.
    net.set_link_directed(
        cores[0].node(),
        cores[1].node(),
        LinkConfig::new(Duration::from_millis(400)),
    )
    .unwrap();

    let mover = counter.clone();
    let moving = std::thread::spawn(move || mover.move_to("core1"));

    // Crash the destination as soon as it journals the hold.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let held = cores[1]
            .journal_snapshot()
            .iter()
            .any(|e| e.kind == JournalKind::MovePrepared);
        if held {
            break;
        }
        assert!(Instant::now() < deadline, "prepare never reached the dest");
        std::thread::sleep(Duration::from_millis(2));
    }
    cores[1].stop();

    // The source recorded the commit verdict before sending the commit:
    // it must finalize the departure (presumed commit), not restore.
    let result = moving.join().unwrap();
    assert!(
        matches!(result, Ok(()) | Err(FargoError::MoveInDoubt(_))),
        "got {result:?}"
    );
    assert!(!cores[0].hosts(counter.id()), "source finalized departure");

    // Restart the destination: recovery re-holds the prepared stream and
    // resolves it against the source's decision log.
    net.set_link_directed(cores[0].node(), cores[1].node(), LinkConfig::instant())
        .unwrap();
    cores[1] = restart(&net, &reg, test_config(), &root, &cores[1], 1);
    let report = cores[1].recovery_report().expect("recovery ran");
    assert!(report.held >= 1, "held stream must be re-held: {report:?}");
    cores[1].resolve_held_now();

    assert!(cores[1].hosts(counter.id()), "held move activated");
    assert!(!cores[0].hosts(counter.id()), "exactly one copy");
    let fresh = fresh_stub(&cores[1], counter.id(), "Counter");
    assert_eq!(fresh.call("get", &[]).unwrap(), Value::I64(7));
    cleanup(&root, &cores);
}

/// Interleaving C: the destination crashes *after* the move completed
/// and more acknowledged work landed. Restart replays the WAL and every
/// acknowledged state — including the post-move calls — survives.
#[test]
fn crash_c_dest_crash_after_commit_replays_state() {
    let (net, reg, mut cores, root) = wal_cluster(2, "c");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(3)]).unwrap();
    counter.move_to("core1").unwrap();
    counter.call("add", &[Value::I64(4)]).unwrap();

    cores[1].stop();
    cores[1] = restart(&net, &reg, test_config(), &root, &cores[1], 1);
    let report = cores[1].recovery_report().expect("recovery ran");
    assert_eq!(report.replayed, 1, "one survivor: {report:?}");

    assert!(cores[1].hosts(counter.id()));
    // The pre-crash stub at core0 still reaches it, and both
    // acknowledged adds survived.
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(7));
    assert_eq!(counter.call("history_len", &[]).unwrap(), Value::I64(2));
    cleanup(&root, &cores);
}

/// Interleaving D: the *source* crashes after a completed move. Restart
/// must not resurrect the departed complet — and must rebuild the
/// forwarding tracker, because the source is the complet's origin and
/// every chain lookup runs through it.
#[test]
fn crash_d_source_crash_after_departure_does_not_resurrect() {
    let (net, reg, mut cores, root) = wal_cluster(2, "d");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(2)]).unwrap();
    counter.move_to("core1").unwrap();

    cores[0].stop();
    cores[0] = restart(&net, &reg, test_config(), &root, &cores[0], 0);
    let report = cores[0].recovery_report().expect("recovery ran");
    assert_eq!(report.replayed, 0, "nothing lives here: {report:?}");
    assert!(report.forwards >= 1, "forward rebuilt: {report:?}");

    assert!(!cores[0].hosts(counter.id()), "no resurrection");
    assert!(cores[1].hosts(counter.id()), "the real copy is untouched");
    // A fresh reference seeded at the restarted origin still routes to
    // the complet through the recovered forwarding tracker.
    let fresh = fresh_stub(&cores[0], counter.id(), "Counter");
    assert_eq!(fresh.call("get", &[]).unwrap(), Value::I64(2));
    cleanup(&root, &cores);
}

// --- partition + crash + heal ----------------------------------------------

/// A partition isolates the host, the host crashes mid-partition, the
/// partition heals, and the host restarts: acknowledged state recovers
/// and the old reference works again.
#[test]
fn partition_crash_heal_restart_recovers() {
    let base = test_config().with_rpc_timeout(Duration::from_millis(500));
    let (net, reg, mut cores, root) = wal_cluster_with(2, "phr", base.clone());
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(5)]).unwrap();

    net.partition(cores[0].node(), cores[1].node()).unwrap();
    assert!(counter.call("get", &[]).is_err(), "partitioned");

    cores[1].stop();
    net.heal(cores[0].node(), cores[1].node()).unwrap();
    cores[1] = restart(&net, &reg, base, &root, &cores[1], 1);

    assert!(cores[1].hosts(counter.id()));
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(5));
    assert_eq!(
        counter.call("add", &[Value::I64(1)]).unwrap(),
        Value::I64(6)
    );
    cleanup(&root, &cores);
}

// --- restart storm ----------------------------------------------------------

/// Five crash/restart cycles of the same Core, accumulating state across
/// every incarnation, with the compaction threshold set low enough that
/// the log is rewritten mid-storm. Every acknowledged add must survive
/// every cycle, and each recovery stays fast.
#[test]
fn restart_storm_preserves_accumulated_state() {
    let base = test_config().with_wal_compact_records(4);
    let (net, reg, mut cores, root) = wal_cluster_with(2, "storm", base.clone());
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();

    let mut expect = 0i64;
    for round in 1..=5 {
        counter.call("add", &[Value::I64(round)]).unwrap();
        counter.call("add", &[Value::I64(round)]).unwrap();
        expect += 2 * round;

        cores[1].stop();
        cores[1] = restart(&net, &reg, base.clone(), &root, &cores[1], 1);
        let report = cores[1].recovery_report().expect("recovery ran");
        assert_eq!(report.replayed, 1, "round {round}: {report:?}");
        assert!(
            report.duration_us < 5_000_000,
            "round {round}: recovery must be fast, took {}us",
            report.duration_us
        );
        assert_eq!(
            counter.call("get", &[]).unwrap(),
            Value::I64(expect),
            "round {round} lost acknowledged state"
        );
    }
    assert_eq!(counter.call("history_len", &[]).unwrap(), Value::I64(10));
    cleanup(&root, &cores);
}

// --- checkpoint/restore edge cases -----------------------------------------

/// Restoring the same snapshot twice is idempotent: the second restore
/// overwrites the first, leaving one working copy.
#[test]
fn restore_checkpoint_is_idempotent() {
    let (_net, _reg, cores, root) = wal_cluster(2, "idem");
    let counter = cores[0].new_named_complet("tally", "Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(2)]).unwrap();

    let snapshot = cores[0].checkpoint().unwrap().snapshot;
    cores[0].release_complet(counter.id()).unwrap();

    let first = cores[1].restore_checkpoint(&snapshot).unwrap();
    let second = cores[1].restore_checkpoint(&snapshot).unwrap();
    assert_eq!(first, second, "same ids both times");
    assert!(cores[1].hosts(counter.id()));

    let tally = cores[1].lookup_stub("tally").unwrap();
    assert_eq!(tally.call("get", &[]).unwrap(), Value::I64(2));
    assert_eq!(tally.call("add", &[Value::I64(1)]).unwrap(), Value::I64(3));
    cleanup(&root, &cores);
}

/// A structurally valid checkpoint with a truncated complet entry is
/// rejected with a typed error, not installed half-way.
#[test]
fn truncated_snapshot_entries_are_rejected() {
    let (_net, _reg, cores, root) = wal_cluster(1, "trunc");
    // Entry has an id but no type/state: must fail cleanly.
    let snapshot = Value::map([
        ("fargo_checkpoint", Value::I64(1)),
        (
            "complets",
            Value::List(vec![Value::map([("id", Value::from("c0.1"))])]),
        ),
    ]);
    assert!(matches!(
        cores[0].restore_checkpoint(&snapshot),
        Err(FargoError::InvalidArgument(_))
    ));
    assert_eq!(cores[0].complet_count(), 0, "nothing was installed");
    cleanup(&root, &cores);
}

/// A restore racing a concurrent inbound move: both land on the same
/// Core at once, and both complets come out live and callable.
#[test]
fn restore_races_concurrent_inbound_move() {
    let (_net, _reg, cores, root) = wal_cluster(3, "race");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(3)]).unwrap();
    let snapshot = cores[0].checkpoint().unwrap().snapshot;
    cores[0].release_complet(counter.id()).unwrap();

    let msg = cores[2]
        .new_complet("Message", &[Value::from("racer")])
        .unwrap();

    let restorer = cores[1].clone();
    let restoring = std::thread::spawn(move || restorer.restore_checkpoint(&snapshot));
    msg.move_to("core1").unwrap();
    restoring.join().unwrap().unwrap();

    assert!(cores[1].hosts(counter.id()));
    assert!(cores[1].hosts(msg.id()));
    let fresh = fresh_stub(&cores[1], counter.id(), "Counter");
    assert_eq!(fresh.call("get", &[]).unwrap(), Value::I64(3));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("racer"));
    cleanup(&root, &cores);
}

/// Review-found regression: the acked-invocation State record used to
/// be appended *after* the slot lock was released, so with concurrent
/// invocations of the same complet, thread A could marshal state S1,
/// unlock, lose the race to thread B (which locked, mutated, and
/// appended S2), and then append the stale S1 last — which fold() keeps.
/// The append now happens under the slot lock; hammering one complet
/// from many threads and crashing must preserve the final acked state.
#[test]
fn concurrent_acked_invocations_survive_crash() {
    let (net, reg, mut cores, root) = wal_cluster(1, "concurrent-acks");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();

    const THREADS: i64 = 4;
    const PER_THREAD: i64 = 100;
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let stub = counter.clone();
            s.spawn(move || {
                for _ in 0..PER_THREAD {
                    stub.call("add", &[Value::I64(1)]).unwrap();
                }
            });
        }
    });
    assert_eq!(
        counter.call("get", &[]).unwrap(),
        Value::I64(THREADS * PER_THREAD)
    );

    cores[0].stop();
    cores[0] = restart(&net, &reg, test_config(), &root, &cores[0], 0);
    assert_eq!(cores[0].recovery_report().expect("recovered").replayed, 1);

    let fresh = fresh_stub(&cores[0], counter.id(), "Counter");
    assert_eq!(
        fresh.call("get", &[]).unwrap(),
        Value::I64(THREADS * PER_THREAD),
        "a stale snapshot won the log tail over a newer acknowledged state"
    );
    assert_eq!(
        fresh.call("history_len", &[]).unwrap(),
        Value::I64(THREADS * PER_THREAD)
    );
    cleanup(&root, &cores);
}

/// E23-found regression: compaction used to re-marshal live slots and
/// then swap the log file — a mutation acknowledged between the slot
/// snapshot and the swap was silently erased, so a later crash lost
/// acked state. Compaction now folds the log itself under the append
/// lock, so hammering acknowledged adds while compacting concurrently
/// must lose nothing across a crash.
#[test]
fn compaction_never_drops_concurrently_acked_state() {
    let (net, reg, mut cores, root) = wal_cluster(1, "compact-race");
    let counter = cores[0].new_complet("Counter", &[]).unwrap();

    const ACKS: i64 = 300;
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let compactor = &cores[0];
        s.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                compactor.wal_compact_now();
            }
        });
        for _ in 0..ACKS {
            counter.call("add", &[Value::I64(1)]).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    cores[0].stop();
    cores[0] = restart(&net, &reg, test_config(), &root, &cores[0], 0);
    assert_eq!(cores[0].recovery_report().expect("recovered").replayed, 1);

    let fresh = fresh_stub(&cores[0], counter.id(), "Counter");
    assert_eq!(
        fresh.call("get", &[]).unwrap(),
        Value::I64(ACKS),
        "every acknowledged add must survive concurrent compaction + crash"
    );
    assert_eq!(
        fresh.call("history_len", &[]).unwrap(),
        Value::I64(ACKS),
        "the acked history must be intact"
    );
    cleanup(&root, &cores);
}
