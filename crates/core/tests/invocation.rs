//! Invocation-unit integration tests: dispatch, parameter passing,
//! re-entrancy, and failure paths (§3.1).

mod common;

use common::{cluster, teardown};
use fargo_core::{define_complet, CompletId, CompletRef, FargoError, RefDescriptor, Value};

#[test]
fn local_invocation_roundtrip() {
    let (_net, _reg, cores) = cluster(1);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("hi")])
        .unwrap();
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("hi"));
    msg.call("set_text", &[Value::from("bye")]).unwrap();
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("bye"));
    teardown(&cores);
}

#[test]
fn remote_instantiation_and_invocation() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0]
        .new_complet_at("core1", "Message", &[Value::from("remote")])
        .unwrap();
    assert!(cores[1].hosts(msg.id()));
    assert!(!cores[0].hosts(msg.id()));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("remote"));
    teardown(&cores);
}

#[test]
fn unknown_method_is_reported_with_type() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    match msg.call("no_such", &[]) {
        Err(FargoError::NoSuchMethod {
            complet_type,
            method,
        }) => {
            assert_eq!(complet_type, "Message");
            assert_eq!(method, "no_such");
        }
        other => panic!("expected NoSuchMethod, got {other:?}"),
    }
    teardown(&cores);
}

#[test]
fn unknown_complet_fails_fast() {
    let (_net, _reg, cores) = cluster(1);
    let ghost =
        CompletRef::from_descriptor(RefDescriptor::link(CompletId::new(0, 999), "Message", 0));
    assert!(matches!(
        cores[0].invoke(&ghost, "print", &[]),
        Err(FargoError::UnknownComplet(_))
    ));
    teardown(&cores);
}

#[test]
fn unknown_type_at_remote_instantiation() {
    let (_net, _reg, cores) = cluster(2);
    assert!(matches!(
        cores[0].new_complet_at("core1", "Ghost", &[]),
        Err(FargoError::UnknownType(_))
    ));
    teardown(&cores);
}

#[test]
fn unknown_core_is_rejected() {
    let (_net, _reg, cores) = cluster(1);
    assert!(matches!(
        cores[0].new_complet_at("atlantis", "Message", &[]),
        Err(FargoError::UnknownCore(_))
    ));
    teardown(&cores);
}

define_complet! {
    /// Calls through a stored reference (complet-to-complet calls).
    pub complet Caller {
        state {
            peer: Option<fargo_core::CompletRef> = None,
        }
        fn set_peer(&mut self, _ctx, args) {
            let r = args
                .first()
                .and_then(Value::as_ref_desc)
                .cloned()
                .ok_or_else(|| FargoError::InvalidArgument("need a ref".into()))?;
            self.peer = Some(fargo_core::CompletRef::from_descriptor(r));
            Ok(Value::Null)
        }
        fn relay(&mut self, ctx, args) {
            let peer = self.peer.clone().ok_or_else(|| FargoError::App("no peer".into()))?;
            ctx.call(&peer, "print", args)
        }
        fn call_self(&mut self, ctx, _args) {
            // Deliberately re-enter ourselves through our own anchor.
            let me = ctx.self_ref();
            ctx.call(&me, "relay", &[])
        }
        fn peer_relocator(&mut self, _ctx, _args) {
            Ok(Value::from(
                self.peer.as_ref().map(|p| p.relocator()).unwrap_or_default(),
            ))
        }
    }
}

#[test]
fn complet_to_complet_calls_across_cores() {
    let (_net, reg, cores) = cluster(2);
    Caller::register(&reg);
    let msg = cores[1]
        .new_complet("Message", &[Value::from("pong")])
        .unwrap();
    let caller = cores[0].new_complet("Caller", &[]).unwrap();
    caller
        .call("set_peer", &[Value::Ref(msg.complet_ref().descriptor())])
        .unwrap();
    assert_eq!(caller.call("relay", &[]).unwrap(), Value::from("pong"));
    teardown(&cores);
}

#[test]
fn reentrant_invocation_is_detected() {
    let (_net, reg, cores) = cluster(1);
    Caller::register(&reg);
    let caller = cores[0].new_complet("Caller", &[]).unwrap();
    assert!(matches!(
        caller.call("call_self", &[]),
        Err(FargoError::ReentrantInvocation(_))
    ));
    teardown(&cores);
}

#[test]
fn reference_params_are_degraded_to_link() {
    // A `pull` reference passed as a parameter must arrive as `link`
    // (§3.1: references crossing complet boundaries are degraded).
    let (_net, reg, cores) = cluster(2);
    Caller::register(&reg);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let caller = cores[0].new_complet_at("core1", "Caller", &[]).unwrap();

    msg.meta().set_relocator("pull").unwrap();
    assert_eq!(msg.complet_ref().relocator(), "pull");
    caller
        .call("set_peer", &[Value::Ref(msg.complet_ref().descriptor())])
        .unwrap();
    assert_eq!(
        caller.call("peer_relocator", &[]).unwrap(),
        Value::from("link")
    );
    // The original reference keeps its type.
    assert_eq!(msg.complet_ref().relocator(), "pull");
    teardown(&cores);
}

#[test]
fn by_value_graphs_with_nested_refs_survive() {
    let (_net, reg, cores) = cluster(2);
    Caller::register(&reg);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("deep")])
        .unwrap();
    let caller = cores[0].new_complet_at("core1", "Caller", &[]).unwrap();
    // The reference rides inside a nested by-value object graph.
    let graph = Value::map([
        (
            "inner",
            Value::list([Value::Ref(msg.complet_ref().descriptor())]),
        ),
        ("noise", Value::from(42i64)),
    ]);
    // set_peer reads args[0]; send the graph and unwrap remotely? The
    // Caller expects a bare ref, so extract it through a relay instead:
    // just ensure the graph arrives intact and the ref stays usable.
    let echoed = caller.call("relay", std::slice::from_ref(&graph));
    // relay fails (no peer yet) — the point is the call path, not result.
    assert!(echoed.is_err());
    caller
        .call("set_peer", &[Value::Ref(msg.complet_ref().descriptor())])
        .unwrap();
    assert_eq!(
        caller.call("relay", &[Value::from("x")]).unwrap(),
        Value::from("deep")
    );
    teardown(&cores);
}

#[test]
fn concurrent_invocations_are_serialized_but_all_served() {
    let (_net, _reg, cores) = cluster(2);
    let counter = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    let mut handles = Vec::new();
    for _ in 0..8 {
        let c = counter.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..25 {
                c.call("add", &[Value::I64(1)]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(200));
    teardown(&cores);
}

#[test]
fn application_errors_propagate_across_the_wire() {
    let (_net, reg, cores) = cluster(2);
    Caller::register(&reg);
    let caller = cores[0].new_complet_at("core1", "Caller", &[]).unwrap();
    match caller.call("relay", &[]) {
        Err(FargoError::App(m)) => assert!(m.contains("no peer")),
        other => panic!("expected App error, got {other:?}"),
    }
    teardown(&cores);
}

#[test]
fn stopped_core_times_out_or_fails_cleanly() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    cores[1].stop();
    let err = msg.call("print", &[]).unwrap_err();
    assert!(
        matches!(
            err,
            FargoError::Net(_) | FargoError::Timeout | FargoError::ShuttingDown
        ),
        "got {err:?}"
    );
    teardown(&cores);
}
