//! Worker-pool semantics: sizing is validated at spawn, shed requests are
//! counted exactly once, and read-only requests bypass the pool entirely.

mod common;

use std::time::Duration;

use common::{cluster_with_config, registry, teardown, test_config};
use fargo_core::{define_complet, Core, MetricValue, Value};
use simnet::{LinkConfig, Network, NetworkConfig};

define_complet! {
    /// Holds a worker thread hostage for a caller-chosen duration.
    pub complet Sleeper {
        state {
            naps: i64 = 0,
        }
        fn nap(&mut self, _ctx, args) {
            let ms = args.first().and_then(Value::as_i64).unwrap_or(0);
            std::thread::sleep(Duration::from_millis(ms as u64));
            self.naps += 1;
            Ok(Value::I64(self.naps))
        }
    }
}

fn counter(core: &Core, name: &str) -> u64 {
    core.telemetry()
        .snapshot()
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            MetricValue::Counter(v) => v,
            _ => 0,
        })
        .sum()
}

#[test]
fn zero_sized_worker_pool_is_a_config_error() {
    let net = Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    });
    let reg = registry();

    let err = Core::builder(&net, "no-threads")
        .registry(&reg)
        .config(test_config().with_worker_pool(0, 8))
        .spawn()
        .expect_err("zero worker threads must be rejected");
    assert!(
        err.to_string().contains("worker_threads"),
        "error should name the offending knob: {err}"
    );

    let err = Core::builder(&net, "no-queue")
        .registry(&reg)
        .config(test_config().with_worker_pool(2, 0))
        .spawn()
        .expect_err("zero queue depth must be rejected, not silently clamped");
    assert!(
        err.to_string().contains("worker_queue_depth"),
        "error should name the offending knob: {err}"
    );
}

/// With one worker and a depth-1 queue, saturate the pool, then send `K`
/// single-transmission requests. Each must be shed and counted exactly
/// once: no double counting, no silent drops.
#[test]
fn shed_requests_are_counted_exactly_once() {
    let mut cfg = test_config().with_worker_pool(1, 1);
    cfg.rpc_max_retries = 0; // one transmission per call: counts are exact
    cfg.rpc_timeout = Duration::from_secs(10);
    let (_net, reg, cores) = cluster_with_config(2, cfg);
    Sleeper::register(&reg);

    let sleeper = cores[0]
        .new_complet_at("core1", "Sleeper", &[])
        .expect("spawn sleeper");

    // Occupy the only worker...
    let busy = sleeper.call_async("nap", &[Value::I64(900)]);
    std::thread::sleep(Duration::from_millis(200));
    // ...and fill the depth-1 queue behind it.
    let queued = sleeper.call_async("nap", &[Value::I64(0)]);
    std::thread::sleep(Duration::from_millis(200));

    let before = counter(&cores[1], "fargo_worker_rejections_total");
    const K: usize = 5;
    let shed: Vec<_> = (0..K)
        .map(|_| sleeper.call_async("nap", &[Value::I64(0)]))
        .collect();
    std::thread::sleep(Duration::from_millis(300));

    let rejected = counter(&cores[1], "fargo_worker_rejections_total") - before;
    assert_eq!(
        rejected, K as u64,
        "each shed request must be counted exactly once"
    );

    // The accepted work still completes.
    assert_eq!(busy.wait().expect("busy nap"), Value::I64(1));
    assert_eq!(queued.wait().expect("queued nap"), Value::I64(2));
    drop(shed);
    teardown(&cores);
}

/// Read-only control requests are served inline by the receiver thread:
/// a saturated worker pool must not make the Core unobservable.
#[test]
fn inline_requests_bypass_a_saturated_pool() {
    let mut cfg = test_config().with_worker_pool(1, 1);
    cfg.rpc_timeout = Duration::from_secs(10);
    let (_net, reg, cores) = cluster_with_config(2, cfg);
    Sleeper::register(&reg);

    let sleeper = cores[0]
        .new_complet_at("core1", "Sleeper", &[])
        .expect("spawn sleeper");
    let busy = sleeper.call_async("nap", &[Value::I64(700)]);
    std::thread::sleep(Duration::from_millis(150));
    let queued = sleeper.call_async("nap", &[Value::I64(0)]);
    std::thread::sleep(Duration::from_millis(150));

    let inline_before = counter(&cores[1], "fargo_worker_inline_total");
    cores[0]
        .ping("core1")
        .expect("ping must be served inline while the pool is saturated");
    assert!(
        counter(&cores[1], "fargo_worker_inline_total") > inline_before,
        "inline fast path should have served the ping"
    );

    busy.wait().expect("busy nap");
    queued.wait().expect("queued nap");
    teardown(&cores);
}
