//! Tests for the §7 future-work extensions: checkpoint/restore
//! persistence and capacity-based admission control.

mod common;

use std::time::Duration;

use common::{cluster, cluster_with_config, registry, teardown, test_config};
use fargo_core::{CompletRef, Core, FargoError, RefDescriptor, Value};

// --- persistence -----------------------------------------------------------

#[test]
fn checkpoint_restores_complets_names_and_state() {
    let (net, _reg, cores) = cluster(2);
    let counter = cores[0].new_named_complet("tally", "Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(7)]).unwrap();
    let msg = cores[0]
        .new_complet("Message", &[Value::from("persist me")])
        .unwrap();

    let ckpt = cores[0].checkpoint().unwrap();
    assert!(ckpt.skipped.is_empty(), "nothing was in transit");
    let snapshot = ckpt.snapshot;
    // Simulate a cold restart: the original Core dies, a replacement
    // restores the snapshot.
    cores[0].stop();
    let replacement = Core::builder(&net, "core0b")
        .registry(&registry())
        .config(test_config())
        .spawn()
        .unwrap();
    let restored = replacement.restore_checkpoint(&snapshot).unwrap();
    assert_eq!(restored.len(), 2);
    assert!(replacement.hosts(counter.id()));
    assert!(replacement.hosts(msg.id()));

    // State and names survived; fresh stubs from the replacement work.
    let tally = replacement.lookup_stub("tally").unwrap();
    assert_eq!(tally.id(), counter.id());
    assert_eq!(tally.call("get", &[]).unwrap(), Value::I64(7));
    assert_eq!(tally.call("add", &[Value::I64(1)]).unwrap(), Value::I64(8));
    // A fresh reference seeded at the replacement reaches the restored
    // message too (the old stub's chain died with core0).
    let msg2 = replacement.stub(CompletRef::from_descriptor(RefDescriptor::link(
        msg.id(),
        "Message",
        replacement.node().index(),
    )));
    assert_eq!(msg2.call("print", &[]).unwrap(), Value::from("persist me"));
    replacement.stop();
    teardown(&cores);
}

#[test]
fn restored_complets_are_reachable_from_peers() {
    let (_net, _reg, cores) = cluster(3);
    let store = cores[0].new_complet_at("core1", "Counter", &[]).unwrap();
    store.call("add", &[Value::I64(3)]).unwrap();

    // Checkpoint core1, drop the complet there, restore into core2.
    let snapshot = cores[1].checkpoint().unwrap().snapshot;
    cores[1].release_complet(store.id()).unwrap();
    cores[2].restore_checkpoint(&snapshot).unwrap();

    // The restore announced the new location to the origin (core1), so
    // the home registry re-resolves; the chain path is gone, so give the
    // location update a moment and use a fresh reference.
    std::thread::sleep(Duration::from_millis(30));
    let fresh = cores[2].stub(CompletRef::from_descriptor(RefDescriptor::link(
        store.id(),
        "Counter",
        cores[2].node().index(),
    )));
    assert_eq!(fresh.call("get", &[]).unwrap(), Value::I64(3));
    teardown(&cores);
}

#[test]
fn garbage_snapshots_are_rejected() {
    let (_net, _reg, cores) = cluster(1);
    assert!(matches!(
        cores[0].restore_checkpoint(&Value::Null),
        Err(FargoError::InvalidArgument(_))
    ));
    assert!(matches!(
        cores[0].restore_checkpoint(&Value::map([("fargo_checkpoint", Value::I64(1))])),
        Err(FargoError::InvalidArgument(_))
    ));
    teardown(&cores);
}

#[test]
fn checkpoint_is_a_cold_snapshot_not_a_move() {
    let (_net, _reg, cores) = cluster(1);
    let c = cores[0].new_complet("Counter", &[]).unwrap();
    c.call("add", &[Value::I64(5)]).unwrap();
    let _snapshot = cores[0].checkpoint().unwrap();
    // The original keeps running, unaffected.
    assert_eq!(c.call("add", &[Value::I64(1)]).unwrap(), Value::I64(6));
    teardown(&cores);
}

// --- admission control -------------------------------------------------------

#[test]
fn capacity_limits_local_instantiation() {
    let (_net, _reg, cores) = cluster_with_config(1, test_config().with_capacity(2));
    cores[0].new_complet("Message", &[]).unwrap();
    cores[0].new_complet("Message", &[]).unwrap();
    match cores[0].new_complet("Message", &[]) {
        Err(FargoError::CapacityExceeded { core, capacity }) => {
            assert_eq!(core, "core0");
            assert_eq!(capacity, 2);
        }
        other => panic!("expected CapacityExceeded, got {other:?}"),
    }
    teardown(&cores);
}

#[test]
fn capacity_refuses_whole_move_streams_and_sender_restores() {
    let (_net, _reg, cores) = cluster_with_config(2, test_config().with_capacity(1));
    // The destination (core1) already holds its one allowed complet.
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let msg = cores[0]
        .new_complet("Message", &[Value::from("stays home")])
        .unwrap();
    match msg.move_to("core1") {
        Err(FargoError::CapacityExceeded { capacity, .. }) => assert_eq!(capacity, 1),
        other => panic!("expected CapacityExceeded, got {other:?}"),
    }
    // Refused wholesale; the complet is intact at the source.
    assert!(cores[0].hosts(msg.id()));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("stays home"));
    teardown(&cores);
}

#[test]
fn capacity_error_crosses_the_wire_typed() {
    let (_net, _reg, cores) = cluster_with_config(2, test_config().with_capacity(0));
    match cores[0].new_complet_at("core1", "Message", &[]) {
        Err(FargoError::CapacityExceeded { core, capacity }) => {
            assert_eq!(core, "core1");
            assert_eq!(capacity, 0);
        }
        other => panic!("expected CapacityExceeded, got {other:?}"),
    }
    teardown(&cores);
}

#[test]
fn negotiation_try_cores_in_turn() {
    // The negotiation idiom: try candidate destinations until one admits.
    let (_net, _reg, cores) = cluster_with_config(3, test_config().with_capacity(1));
    cores[0].new_complet_at("core1", "Message", &[]).unwrap(); // core1 full
    let msg = cores[0].new_complet("Message", &[]).unwrap(); // core0 now full
    let mut placed_at = None;
    for candidate in ["core1", "core2"] {
        match msg.move_to(candidate) {
            Ok(()) => {
                placed_at = Some(candidate);
                break;
            }
            Err(FargoError::CapacityExceeded { .. }) => continue,
            Err(other) => panic!("unexpected: {other:?}"),
        }
    }
    assert_eq!(placed_at, Some("core2"));
    assert!(cores[2].hosts(msg.id()));
    teardown(&cores);
}
