//! Monitoring and event tests: profiling services, threshold events,
//! distributed events, and monitoring-driven relocation (§4).

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use common::{cluster, teardown};
use fargo_core::{define_complet, CompletId, EventPayload, Service, Value};

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn instant_complet_load_counts_complets() {
    let (_net, _reg, cores) = cluster(1);
    assert_eq!(
        cores[0].profile_instant(&Service::CompletLoad).unwrap(),
        0.0
    );
    cores[0].new_complet("Message", &[]).unwrap();
    cores[0].new_complet("Message", &[]).unwrap();
    // Within the cache TTL the stale value may be served; wait it out.
    assert!(wait_until(Duration::from_secs(2), || {
        cores[0].profile_instant(&Service::CompletLoad).unwrap() == 2.0
    }));
    teardown(&cores);
}

#[test]
fn instant_bandwidth_and_latency_reflect_link_model() {
    let (net, _reg, cores) = cluster(2);
    net.set_link(
        cores[0].node(),
        cores[1].node(),
        simnet::LinkConfig::new(Duration::from_millis(30)).with_bandwidth(1_000_000),
    )
    .unwrap();
    let peer = cores[1].node().index();
    let bw = cores[0]
        .profile_instant(&Service::Bandwidth { peer })
        .unwrap();
    assert_eq!(bw, 1_000_000.0);
    let lat = cores[0]
        .profile_instant(&Service::Latency { peer })
        .unwrap();
    assert!((lat - 0.030).abs() < 1e-6);
    teardown(&cores);
}

#[test]
fn complet_size_grows_with_state() {
    let (_net, _reg, cores) = cluster(1);
    let c = cores[0].new_complet("Counter", &[]).unwrap();
    let small = cores[0]
        .profile_instant(&Service::CompletSize { id: c.id() })
        .unwrap();
    for _ in 0..200 {
        c.call("add", &[Value::I64(1)]).unwrap();
    }
    // Wait out the instant-cache TTL so we re-measure.
    assert!(wait_until(Duration::from_secs(2), || {
        cores[0]
            .profile_instant(&Service::CompletSize { id: c.id() })
            .map(|big| big > small)
            .unwrap_or(false)
    }));
    teardown(&cores);
}

#[test]
fn continuous_invocation_rate_is_measured() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let app = CompletId::new(cores[0].node().index(), 0);
    let service = Service::MethodInvokeRate {
        src: app,
        dst: msg.id(),
    };
    cores[0].profile_start(service.clone(), Duration::from_millis(20));
    // Generate a steady call stream.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let s2 = stop.clone();
    let m2 = msg.clone();
    let driver = std::thread::spawn(move || {
        while !s2.load(Ordering::SeqCst) {
            let _ = m2.call("print", &[]);
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    let observed = wait_until(Duration::from_secs(5), || {
        cores[0]
            .profile_get(&service)
            .map(|r| r > 10.0)
            .unwrap_or(false)
    });
    stop.store(true, Ordering::SeqCst);
    driver.join().unwrap();
    assert!(observed, "invocation rate should exceed 10/s");
    cores[0].profile_stop(&service);
    teardown(&cores);
}

#[test]
fn threshold_event_fires_on_crossing() {
    let (_net, _reg, cores) = cluster(1);
    let fired = Arc::new(AtomicUsize::new(0));
    let f = fired.clone();
    cores[0].on_event(
        "completLoad",
        Some(3.0),
        true,
        Arc::new(move |e| {
            assert!(e.value().unwrap() >= 3.0);
            f.fetch_add(1, Ordering::SeqCst);
        }),
    );
    cores[0].profile_start(Service::CompletLoad, Duration::from_millis(10));
    for _ in 0..2 {
        cores[0].new_complet("Message", &[]).unwrap();
    }
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(fired.load(Ordering::SeqCst), 0, "below threshold: no event");
    for _ in 0..2 {
        cores[0].new_complet("Message", &[]).unwrap();
    }
    assert!(wait_until(Duration::from_secs(3), || {
        fired.load(Ordering::SeqCst) >= 1
    }));
    // Edge triggering: staying above the threshold does not re-fire.
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    teardown(&cores);
}

#[test]
fn layout_events_fire_on_arrival_and_departure() {
    let (_net, _reg, cores) = cluster(2);
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let l1 = log.clone();
    cores[0].on_event(
        "completDeparted",
        None,
        true,
        Arc::new(move |e| {
            if let EventPayload::CompletDeparted { id, dest, .. } = e {
                l1.lock().unwrap().push(format!("departed {id} -> n{dest}"));
            }
        }),
    );
    let l2 = log.clone();
    cores[1].on_event(
        "completArrived",
        None,
        true,
        Arc::new(move |e| {
            if let EventPayload::CompletArrived { id, .. } = e {
                l2.lock().unwrap().push(format!("arrived {id}"));
            }
        }),
    );
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    assert!(wait_until(Duration::from_secs(3), || log
        .lock()
        .unwrap()
        .len()
        >= 2));
    let entries = log.lock().unwrap().clone();
    assert!(entries.iter().any(|e| e.starts_with("departed")));
    assert!(entries.iter().any(|e| e.starts_with("arrived")));
    teardown(&cores);
}

#[test]
fn remote_subscription_receives_events_across_cores() {
    let (_net, _reg, cores) = cluster(2);
    let seen = Arc::new(AtomicUsize::new(0));
    let s = seen.clone();
    // core0 subscribes to arrivals at core1.
    let sub = cores[0]
        .subscribe_at(
            "core1",
            "completArrived",
            None,
            true,
            Arc::new(move |_| {
                s.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || seen
        .load(Ordering::SeqCst)
        == 1));
    // After cancel, no more notifications.
    sub.cancel();
    cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(seen.load(Ordering::SeqCst), 1);
    teardown(&cores);
}

define_complet! {
    /// A complet that counts events delivered to it via `on_event`.
    pub complet Watcher {
        state { seen: i64 = 0 }
        fn on_event(&mut self, _ctx, _args) {
            self.seen += 1;
            Ok(Value::Null)
        }
        fn seen(&mut self, _ctx, _args) {
            Ok(Value::I64(self.seen))
        }
        fn watch(&mut self, ctx, _args) {
            ctx.subscribe_self("completArrived", None, true);
            Ok(Value::Null)
        }
    }
}

#[test]
fn complet_listeners_keep_receiving_after_they_migrate() {
    // The distributed-events property of §4.2: a complet registers for
    // events, moves to another Core, and still gets notified.
    let (_net, reg, cores) = cluster(2);
    Watcher::register(&reg);
    let watcher = cores[0].new_complet("Watcher", &[]).unwrap();
    watcher.call("watch", &[]).unwrap();

    // Trigger an event at core0: the local watcher hears it.
    cores[0].new_complet("Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        watcher.call("seen", &[]).unwrap().as_i64().unwrap() >= 1
    }));

    // Move the watcher away; events fired at core0 must still reach it
    // (via its tracked reference), at its new home.
    watcher.move_to("core1").unwrap();
    let before = watcher.call("seen", &[]).unwrap().as_i64().unwrap();
    cores[0].new_complet("Message", &[]).unwrap();
    assert!(wait_until(Duration::from_secs(3), || {
        watcher.call("seen", &[]).unwrap().as_i64().unwrap() > before
    }));
    assert!(cores[1].hosts(watcher.id()));
    teardown(&cores);
}

#[test]
fn shutdown_event_reaches_remote_subscribers() {
    let (_net, _reg, cores) = cluster(2);
    let heard = Arc::new(AtomicUsize::new(0));
    let h = heard.clone();
    cores[0]
        .subscribe_at(
            "core1",
            "coreShutdown",
            None,
            true,
            Arc::new(move |e| {
                assert!(matches!(e, EventPayload::CoreShutdown { .. }));
                h.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
    cores[1].shutdown(Duration::from_millis(50));
    assert!(wait_until(Duration::from_secs(3), || heard
        .load(Ordering::SeqCst)
        == 1));
    teardown(&cores);
}

#[test]
fn monitoring_driven_relocation_end_to_end() {
    // The paper's §4.1 policy sketch: when the invocation rate along a
    // reference exceeds a threshold, co-locate the complets.
    let (_net, _reg, cores) = cluster(2);
    let server = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    let app = CompletId::new(cores[0].node().index(), 0);
    let service = Service::MethodInvokeRate {
        src: app,
        dst: server.id(),
    };
    let core0 = cores[0].clone();
    let server_id = server.id();
    let moved = Arc::new(AtomicUsize::new(0));
    let m = moved.clone();
    cores[0].profile_start(service.clone(), Duration::from_millis(20));
    cores[0].on_event(
        &service.to_string(),
        Some(3.0),
        true,
        Arc::new(move |_| {
            if core0.move_complet(server_id, "core0", None).is_ok() {
                m.fetch_add(1, Ordering::SeqCst);
            }
        }),
    );
    // Chatty phase: drive the rate above 3/s.
    for _ in 0..200 {
        let _ = server.call("print", &[]);
        std::thread::sleep(Duration::from_millis(1));
        if cores[0].hosts(server.id()) {
            break;
        }
    }
    assert!(
        wait_until(Duration::from_secs(5), || cores[0].hosts(server.id())),
        "the chatty server should have been pulled to core0"
    );
    // The mover's own bookkeeping trails the arrival by one RPC leg.
    assert!(wait_until(Duration::from_secs(2), || {
        moved.load(Ordering::SeqCst) >= 1
    }));
    teardown(&cores);
}

#[test]
fn monitor_stats_expose_cache_effect() {
    let (_net, _reg, cores) = cluster(1);
    cores[0].new_complet("Message", &[]).unwrap();
    let before = cores[0].monitor().cache_hits();
    for _ in 0..10 {
        cores[0].profile_instant(&Service::CompletLoad).unwrap();
    }
    let after = cores[0].monitor().cache_hits();
    assert!(after >= before + 8);
    teardown(&cores);
}
