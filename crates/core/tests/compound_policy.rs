//! The paper's §4.1 compound relocation policy, verbatim:
//!
//! > "one relocation policy in an application may be to move two disparate
//! > complets to the same site only if the bandwidth between the sites is
//! > below some threshold value and the invocationRate is above some
//! > threshold value. Otherwise it keeps them apart to spread the load."
//!
//! The network degrades *while the application runs* (the environment
//! change dynamic layout exists for); the policy combines two profiling
//! services before acting.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{registry, teardown};
use fargo_core::{CompletId, Core, CoreConfig, Service, Value};
use simnet::{LinkConfig, Network, NetworkConfig};

const GOOD_BANDWIDTH: u64 = 10_000_000;
const BAD_BANDWIDTH: u64 = 40_000;
const BANDWIDTH_FLOOR: f64 = 100_000.0;
const RATE_FLOOR: f64 = 5.0;

fn setup() -> (Network, Vec<Core>) {
    let net = Network::new(NetworkConfig::default());
    let reg = registry();
    let cores: Vec<Core> = (0..2)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(CoreConfig {
                    monitor_tick: Duration::from_millis(10),
                    ..CoreConfig::default()
                })
                .spawn()
                .unwrap()
        })
        .collect();
    net.set_link(
        cores[0].node(),
        cores[1].node(),
        LinkConfig::new(Duration::from_micros(200)).with_bandwidth(GOOD_BANDWIDTH),
    )
    .unwrap();
    (net, cores)
}

#[test]
fn colocate_only_when_bandwidth_low_and_rate_high() {
    let (net, cores) = setup();
    let local = cores[0].clone();
    let server = local.new_complet_at("core1", "Counter", &[]).unwrap();
    let peer = cores[1].node().index();
    let app = CompletId::new(local.node().index(), 0);

    let rate_service = Service::MethodInvokeRate {
        src: app,
        dst: server.id(),
    };
    let bw_service = Service::Bandwidth { peer };
    local.profile_start(rate_service.clone(), Duration::from_millis(25));
    local.profile_start(bw_service.clone(), Duration::from_millis(25));

    // The compound policy (§4.1's AND of two profiled measures): when the
    // link degrades below the floor, co-locate — but only if the
    // reference is actually chatty at that moment.
    let moved = Arc::new(AtomicUsize::new(0));
    let m = moved.clone();
    let mover = local.clone();
    let rate = rate_service.clone();
    let server_id = server.id();
    local.on_event(
        &bw_service.to_string(),
        Some(BANDWIDTH_FLOOR),
        false, // fire when bandwidth falls *below* the floor
        Arc::new(move |_| {
            let invocation_rate = mover.profile_get(&rate).unwrap_or(0.0);
            if invocation_rate > RATE_FLOOR && mover.move_complet(server_id, "core0", None).is_ok()
            {
                m.fetch_add(1, Ordering::SeqCst);
            }
        }),
    );

    // Phase 1 — chatty over a GOOD link: rate crosses, bandwidth is fine,
    // so the complets stay apart (spread the load).
    for _ in 0..120 {
        server.call("add", &[Value::I64(1)]).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert!(cores[1].hosts(server.id()), "good bandwidth: stay apart");
    assert_eq!(moved.load(Ordering::SeqCst), 0);

    // Phase 2 — the WAN degrades mid-run while the chatter continues:
    // the bandwidth event fires, the rate check passes, the server moves.
    net.set_link(
        cores[0].node(),
        cores[1].node(),
        LinkConfig::new(Duration::from_micros(200)).with_bandwidth(BAD_BANDWIDTH),
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cores[0].hosts(server.id()) {
        assert!(
            Instant::now() < deadline,
            "degraded bandwidth + high rate must trigger co-location"
        );
        let _ = server.call("add", &[Value::I64(1)]);
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(moved.load(Ordering::SeqCst) >= 1);
    // The state survived the whole journey.
    assert!(server.call("get", &[]).unwrap().as_i64().unwrap() >= 120);
    teardown(&cores);
}

#[test]
fn quiet_reference_never_triggers_even_on_bad_links() {
    // Bandwidth collapses but the reference is idle: the AND must hold
    // the policy back.
    let (net, cores) = setup();
    let local = cores[0].clone();
    let server = local.new_complet_at("core1", "Counter", &[]).unwrap();
    let app = CompletId::new(local.node().index(), 0);
    let rate_service = Service::MethodInvokeRate {
        src: app,
        dst: server.id(),
    };
    let bw_service = Service::Bandwidth {
        peer: cores[1].node().index(),
    };
    // Coarse rate sampling: sporadic single calls do not alias into
    // spikes when judged over 300ms windows.
    local.profile_start(rate_service.clone(), Duration::from_millis(300));
    local.profile_start(bw_service.clone(), Duration::from_millis(50));
    let mover = local.clone();
    let rate = rate_service.clone();
    let server_id = server.id();
    local.on_event(
        &bw_service.to_string(),
        Some(BANDWIDTH_FLOOR),
        false,
        Arc::new(move |_| {
            if mover.profile_get(&rate).unwrap_or(0.0) > RATE_FLOOR {
                let _ = mover.move_complet(server_id, "core0", None);
            }
        }),
    );
    net.set_link(
        cores[0].node(),
        cores[1].node(),
        LinkConfig::new(Duration::from_micros(200)).with_bandwidth(BAD_BANDWIDTH),
    )
    .unwrap();
    // A trickle of calls, well under the rate floor.
    for _ in 0..5 {
        server.call("add", &[Value::I64(1)]).unwrap();
        std::thread::sleep(Duration::from_millis(500));
    }
    assert!(
        cores[1].hosts(server.id()),
        "idle references must not trigger relocation"
    );
    teardown(&cores);
}
