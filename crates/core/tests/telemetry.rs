//! Telemetry integration: cross-Core trace propagation and the metrics
//! the invocation/movement hot paths leave behind.

mod common;

use common::{cluster, cluster_with_config, teardown, test_config};
use fargo_core::TrackingMode;

/// A chained invocation across three Cores must produce one span tree:
/// the caller's `invoke` span, the intermediate Core's `forward` span,
/// and the host's `exec` span, each parented on the previous hop.
#[test]
fn trace_spans_follow_chained_invocation() {
    // Gossip off: the scenario needs core0 to still believe core1 so
    // the invocation is chain-forwarded.
    let (_net, _reg, cores) = cluster_with_config(
        3,
        test_config()
            .with_tracking(TrackingMode::Chains)
            .with_naming_gossip_batch(0),
    );
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    // core0's reference still points at core1, which forwards to core2.
    msg.call("print", &[]).unwrap();

    let trace_id = cores[0].last_trace_id().expect("invoke must leave a trace");
    let spans = cores[0].collect_trace(trace_id);
    let invoke = spans
        .iter()
        .find(|s| s.name == "invoke Message.print")
        .expect("caller span");
    let forward = spans
        .iter()
        .find(|s| s.name.starts_with("forward"))
        .expect("chain-hop span");
    let exec = spans
        .iter()
        .find(|s| s.name == "exec print")
        .expect("host span");
    assert_eq!(invoke.core, "core0");
    assert_eq!(forward.core, "core1");
    assert_eq!(exec.core, "core2");
    assert_eq!(
        forward.parent_id, invoke.span_id,
        "forward hangs off invoke"
    );
    assert_eq!(exec.parent_id, forward.span_id, "exec hangs off forward");

    let tree = cores[0].render_trace(trace_id);
    let lines: Vec<&str> = tree.lines().collect();
    assert!(lines[0].starts_with("trace 0x"), "{tree}");
    assert!(
        lines[1].starts_with("  invoke Message.print @core0"),
        "{tree}"
    );
    assert!(lines[2].starts_with("    forward print @core1"), "{tree}");
    assert!(lines[3].starts_with("      exec print @core2"), "{tree}");
    teardown(&cores);
}

/// With span recording off, the hot paths record nothing — but metrics
/// still flow.
#[test]
fn tracing_disabled_records_no_spans() {
    let (_net, _reg, cores) = cluster_with_config(2, test_config().with_tracing(false));
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    msg.call("print", &[]).unwrap();
    assert_eq!(cores[0].last_trace_id(), None);
    let metrics = cores[0].render_metrics();
    assert!(
        metrics.contains("fargo_invoke_total{core=\"core0\"} 1"),
        "{metrics}"
    );
    teardown(&cores);
}

/// Shortening a tracker chain after a chained invocation is counted.
#[test]
fn chain_shortening_is_counted() {
    // Gossip off: the scenario needs core0 to still believe core1 so
    // the invocation is chain-forwarded.
    let (_net, _reg, cores) = cluster_with_config(
        3,
        test_config()
            .with_tracking(TrackingMode::Chains)
            .with_naming_gossip_batch(0),
    );
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    msg.call("print", &[]).unwrap();
    // The reply told core0 where the complet really lives; its tracker
    // repointed from core1 to core2.
    let metrics = cores[0].render_metrics();
    assert!(
        metrics.contains("fargo_chain_shortenings_total{core=\"core0\"} 1"),
        "{metrics}"
    );
    teardown(&cores);
}

/// Proto counters see traffic in both directions, labelled by kind.
#[test]
fn message_counters_track_wire_traffic() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet_at("core1", "Message", &[]).unwrap();
    msg.call("print", &[]).unwrap();
    let out = cores[0].render_metrics();
    assert!(out.contains("fargo_msg_out_total"), "{out}");
    assert!(out.contains("kind=\"invoke\""), "{out}");
    let inbound = cores[1].render_metrics();
    assert!(inbound.contains("fargo_msg_in_total"), "{inbound}");
    teardown(&cores);
}

/// Movement metrics: marshal bytes, co-moved complets, relocator kinds.
#[test]
fn movement_metrics_are_recorded() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    let out = cores[0].render_metrics();
    assert!(out.contains("fargo_move_marshal_bytes"), "{out}");
    assert!(out.contains("fargo_move_comoved"), "{out}");
    teardown(&cores);
}
