//! Fixed-schedule regression tests: races and routing holes found by the
//! `fargo-check` schedule explorer, replayed here as plain sequential
//! scenarios against the public API.
//!
//! Each test names the explorer seed whose shrunk counterexample it
//! encodes (the schedules themselves live in
//! `crates/check/tests/regressions.rs`; these are the same scenarios
//! expressed without the workload DSL so `fargo-core` exercises them in
//! its own suite).

mod common;

use std::time::Duration;

use common::{cluster, cluster_with_config, teardown, test_config};
use fargo_core::{Clock, CompletId, Core, TrackerSnapshot, TrackerTarget, Value};

fn tracker_of(core: &Core, id: CompletId) -> Option<TrackerSnapshot> {
    core.tracker_snapshot().into_iter().find(|t| t.id == id)
}

// --- explorer-found regressions (idle collection severs routing) -----------

/// Explorer seeds 324/684/707: `new @1; move -> 2; collect 1`. Collecting
/// the idle tracker at the complet's *origin* Core used to make every
/// invocation routed through it fail with `UnknownComplet` — the invoke
/// handler never consulted the origin's home registry.
#[test]
fn collect_at_origin_then_invoke_recovers() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[1]
        .new_complet("Message", &[Value::from("kept")])
        .unwrap();
    let id = msg.id();
    cores[1].move_complet(id, "core2", None).unwrap();
    assert_eq!(cores[1].collect_trackers(Duration::ZERO), 1);

    // A stub on core0 still carries the origin as its location hint, so
    // the invocation routes through the collected Core.
    let remote = cores[0].stub(msg.complet_ref().clone());
    let out = remote
        .call("print", &[])
        .expect("home registry must recover the route");
    assert_eq!(out.as_str(), Some("kept"));
    teardown(&cores);
}

/// Explorer seed 511: `new @2; move -> 0; collect 2; move -> 2`. A move
/// issued *at the origin* after its tracker was collected used to fail in
/// `locate()`, which gave up without consulting the home registry.
#[test]
fn move_after_origin_collect_locates_via_home() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[2].new_complet("Message", &[]).unwrap();
    let id = msg.id();
    cores[2].move_complet(id, "core0", None).unwrap();
    assert_eq!(cores[2].collect_trackers(Duration::ZERO), 1);

    cores[2]
        .move_complet(id, "core2", None)
        .expect("locate must fall back to the home registry");
    assert!(cores[2].hosts(id));
    teardown(&cores);
}

/// Explorer seed 690: a three-hop chain whose *middle* Core is the origin
/// (`new @1; move -> 0; move -> 1; move -> 2; collect 1`). Upstream
/// trackers still point at the collected Core; the recovery re-seeds its
/// tracker from the home registry and the chain heals.
#[test]
fn mid_chain_origin_collect_recovers() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[1]
        .new_complet("Message", &[Value::from("travelled")])
        .unwrap();
    let id = msg.id();
    cores[1].move_complet(id, "core0", None).unwrap();
    cores[0].move_complet(id, "core1", None).unwrap();
    cores[1].move_complet(id, "core2", None).unwrap();
    assert!(cores[1].collect_trackers(Duration::ZERO) >= 1);

    // core0's tracker still forwards to the (collected) core1.
    let remote = cores[0].stub(msg.complet_ref().clone());
    assert_eq!(
        remote.call("print", &[]).unwrap().as_str(),
        Some("travelled")
    );
    teardown(&cores);
}

/// Collecting at a *non-origin* mid-chain Core leaves a dead-end forward
/// the target Core itself cannot repair (it has no home registry entry).
/// The caller notices the dead end, drops its stale edge, and re-routes
/// through the home registry.
#[test]
fn dead_end_at_non_origin_core_recovers_via_caller() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("healed")])
        .unwrap();
    let id = msg.id();
    cores[0].move_complet(id, "core1", None).unwrap();
    cores[1].move_complet(id, "core2", None).unwrap();
    // core1 is mid-chain but NOT the origin; collect severs it.
    assert_eq!(cores[1].collect_trackers(Duration::ZERO), 1);
    // Pin core0's belief back at the dead end so the route goes through
    // it (async gossip may already have shortened core0 -> core2).
    let e = tracker_of(&cores[0], id)
        .expect("origin keeps a tracker")
        .epoch;
    cores[0].test_learn_location(id, cores[1].node().index(), e + 1);

    let remote = cores[0].stub(msg.complet_ref().clone());
    assert_eq!(remote.call("print", &[]).unwrap().as_str(), Some("healed"));
    // The repair repointed core0 away from the dead end.
    let t = tracker_of(&cores[0], id).expect("tracker re-seeded after repair");
    assert_ne!(t.target, TrackerTarget::Forward(cores[1].node().index()));
    teardown(&cores);
}

// --- satellite regressions -------------------------------------------------

/// A stale location report (older move epoch) must never repoint a
/// tracker — accepting one can close an A <-> C routing cycle.
#[test]
fn stale_epoch_repoint_rejected() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id();
    cores[0].move_complet(id, "core1", None).unwrap();
    cores[1].move_complet(id, "core2", None).unwrap();
    // A reply from the second incarnation shortens the origin's chain.
    cores[0].test_learn_location(id, cores[2].node().index(), 2);
    assert_eq!(
        tracker_of(&cores[0], id).unwrap().target,
        TrackerTarget::Forward(cores[2].node().index())
    );

    // A straggler from the first move ("it went to core1, epoch 1")
    // arrives late at the origin: rejected, the tracker stays on core2.
    cores[0].test_learn_location(id, cores[1].node().index(), 1);
    assert_eq!(
        tracker_of(&cores[0], id).unwrap().target,
        TrackerTarget::Forward(cores[2].node().index())
    );

    // The cycle-closing variant: a stale "it is back at core0" report
    // reaching the *host* would turn n0 -> n2 -> n0 into a loop.
    cores[2].test_learn_location(id, cores[0].node().index(), 1);
    assert_eq!(
        tracker_of(&cores[2], id).unwrap().target,
        TrackerTarget::Local
    );
    assert!(cores[0]
        .stub(msg.complet_ref().clone())
        .call("print", &[])
        .is_ok());
    teardown(&cores);
}

/// `locate()` must start the walk from the *highest-epoch* local hint.
/// The origin's tracker stays at the first move's target while each
/// later move's `LocationUpdate` refreshes only the home registry — the
/// old resolver re-walked the chain from the stale tracker anyway,
/// paying one hop per intermediate Core.
#[test]
fn locate_prefers_freshest_hint_epoch() {
    // Naming off: the shard would answer in one hop by itself, hiding
    // the hint-ordering this test pins down (gossip is off with it).
    let (_net, _reg, cores) = cluster_with_config(3, test_config().with_naming_shards(false));
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id();
    cores[0].move_complet(id, "core1", None).unwrap();
    cores[1].move_complet(id, "core2", None).unwrap();
    // Let the second move's async LocationUpdate land at the origin.
    std::thread::sleep(Duration::from_millis(30));
    // Precondition: the origin's tracker still points at the first hop.
    assert_eq!(
        tracker_of(&cores[0], id).unwrap().target,
        TrackerTarget::Forward(cores[1].node().index())
    );
    let r = cores[0].locate_explain(id).unwrap();
    assert_eq!(r.node, cores[2].node().index());
    assert_eq!(
        r.hops, 1,
        "must start from the fresher home entry, not re-walk the chain"
    );
    teardown(&cores);
}

/// Tracker `hits` count successful dispatches only: a failed invocation
/// must not inflate the traffic statistics the layout planner feeds on.
#[test]
fn hits_credit_successful_dispatch_only() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[1].new_complet("Message", &[]).unwrap();
    let id = msg.id();
    let remote = cores[0].stub(msg.complet_ref().clone());

    remote.call("print", &[]).unwrap();
    let after_ok = tracker_of(&cores[0], id).unwrap().hits;
    assert_eq!(after_ok, 1);

    remote.call("no_such_method", &[]).unwrap_err();
    assert_eq!(
        tracker_of(&cores[0], id).unwrap().hits,
        after_ok,
        "a failed invocation must not be credited"
    );
    teardown(&cores);
}

/// Idle-tracker collection measures idleness on the configured [`Clock`]:
/// under a virtual clock, nothing is idle until the schedule says time
/// passed.
#[test]
fn idle_collection_is_clock_driven() {
    let clock = Clock::new_virtual(1_000_000_000);
    let (_net, _reg, cores) = cluster_with_config(2, test_config().with_clock(clock.clone()));
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    cores[0].move_complet(msg.id(), "core1", None).unwrap();

    // No virtual time has passed: the forward tracker is not idle.
    assert_eq!(cores[0].collect_trackers(Duration::from_secs(10)), 0);
    clock.advance(Duration::from_secs(20));
    assert_eq!(cores[0].collect_trackers(Duration::from_secs(10)), 1);
    teardown(&cores);
}
