//! Movement-unit integration tests: relocation, tracker chains, chain
//! shortening, continuations, and lifecycle callbacks (§3.1, §3.3).

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{cluster, cluster_with_config, teardown, test_config};
use fargo_core::{define_complet, FargoError, TrackerTarget, Value};

#[test]
fn state_survives_relocation() {
    let (_net, _reg, cores) = cluster(2);
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter.call("add", &[Value::I64(5)]).unwrap();
    counter.call("add", &[Value::I64(7)]).unwrap();
    counter.move_to("core1").unwrap();
    assert!(cores[1].hosts(counter.id()));
    assert_eq!(counter.call("get", &[]).unwrap(), Value::I64(12));
    assert_eq!(counter.call("history_len", &[]).unwrap(), Value::I64(2));
    // And it keeps working after arrival.
    assert_eq!(
        counter.call("add", &[Value::I64(1)]).unwrap(),
        Value::I64(13)
    );
    teardown(&cores);
}

#[test]
fn move_to_same_core_is_a_noop() {
    let (_net, _reg, cores) = cluster(1);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core0").unwrap();
    assert!(cores[0].hosts(msg.id()));
    teardown(&cores);
}

#[test]
fn multi_hop_chain_still_reaches_target() {
    let (_net, _reg, cores) = cluster(5);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("wanderer")])
        .unwrap();
    for dest in ["core1", "core2", "core3", "core4"] {
        msg.move_to(dest).unwrap();
    }
    assert!(cores[4].hosts(msg.id()));
    // The stub at core0 still reaches it through the chain.
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("wanderer"));
    teardown(&cores);
}

#[test]
fn chains_are_shortened_on_invocation_return() {
    // Gossip off: this scenario asserts the intermediate chain links and
    // the reply-path shortening; piggybacked shard deltas would repair
    // the chain before the invocation gets to.
    let (_net, _reg, cores) = cluster_with_config(4, test_config().with_naming_gossip_batch(0));
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    let id = msg.id();
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    msg.move_to("core3").unwrap();
    // Before any invocation, core1 forwards to core2 (chain link).
    assert_eq!(
        cores[1]
            .tracker_snapshot()
            .iter()
            .find(|t| t.id == id)
            .map(|t| t.target),
        Some(TrackerTarget::Forward(cores[2].node().index()))
    );
    // One invocation from core0 walks 0→1→2→3 and shortens on return.
    msg.call("print", &[]).unwrap();
    for core in &cores[..3] {
        let t = core
            .tracker_snapshot()
            .into_iter()
            .find(|t| t.id == id)
            .expect("tracker must exist");
        assert_eq!(
            t.target,
            TrackerTarget::Forward(cores[3].node().index()),
            "tracker at {} should point at the final location",
            core.name()
        );
    }
    teardown(&cores);
}

#[test]
fn move_request_is_forwarded_to_current_host() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[1].new_complet("Message", &[]).unwrap();
    // core0 never hosted the complet; it must forward the move request.
    cores[0].move_complet(msg.id(), "core2", None).unwrap();
    assert!(cores[2].hosts(msg.id()));
    teardown(&cores);
}

#[test]
fn continuation_runs_at_destination() {
    let (_net, _reg, cores) = cluster(2);
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    counter
        .move_with("core1", "add", vec![Value::I64(100)])
        .unwrap();
    // The continuation is asynchronous; poll for its effect.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if counter.call("get", &[]).unwrap() == Value::I64(100) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "continuation never ran"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    teardown(&cores);
}

#[test]
fn names_travel_with_the_complet() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0]
        .new_named_complet("postbox", "Message", &[])
        .unwrap();
    assert!(cores[0].lookup("postbox").is_some());
    msg.move_to("core1").unwrap();
    assert!(cores[0].lookup("postbox").is_none());
    let found = cores[1].lookup_stub("postbox").unwrap();
    assert_eq!(found.id(), msg.id());
    // Remote lookup also works.
    let remote = cores[0].lookup_at("core1", "postbox").unwrap();
    assert_eq!(remote.id(), msg.id());
    teardown(&cores);
}

#[test]
fn moving_an_unknown_complet_fails() {
    let (_net, _reg, cores) = cluster(2);
    let ghost = fargo_core::CompletId::new(0, 4242);
    assert!(matches!(
        cores[0].move_complet(ghost, "core1", None),
        Err(FargoError::UnknownComplet(_))
    ));
    teardown(&cores);
}

#[test]
fn moving_to_an_unknown_core_fails_and_preserves_the_complet() {
    let (_net, _reg, cores) = cluster(1);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("keep me")])
        .unwrap();
    assert!(matches!(
        msg.move_to("atlantis"),
        Err(FargoError::UnknownCore(_))
    ));
    // Still alive and invocable.
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("keep me"));
    teardown(&cores);
}

#[test]
fn failed_transfer_restores_the_complet() {
    let (net, _reg, cores) = cluster(2);
    let msg = cores[0]
        .new_complet("Message", &[Value::from("survivor")])
        .unwrap();
    // Partition the link: the move stream cannot be delivered.
    net.partition(cores[0].node(), cores[1].node()).unwrap();
    assert!(msg.move_to("core1").is_err());
    net.heal(cores[0].node(), cores[1].node()).unwrap();
    // The complet was restored at the source and still works.
    assert!(cores[0].hosts(msg.id()));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("survivor"));
    // And a later move succeeds.
    msg.move_to("core1").unwrap();
    assert!(cores[1].hosts(msg.id()));
    teardown(&cores);
}

static LIFECYCLE_LOG: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());

define_complet! {
    /// Records which lifecycle callbacks ran, in order (§3.3).
    pub complet Lifecycled {
        state { x: i64 = 0 }
        lifecycle {
            fn pre_departure(&mut self, _ctx) {
                LIFECYCLE_LOG.lock().unwrap().push("pre_departure");
            }
            fn pre_arrival(&mut self, _ctx) {
                LIFECYCLE_LOG.lock().unwrap().push("pre_arrival");
            }
            fn post_arrival(&mut self, _ctx) {
                LIFECYCLE_LOG.lock().unwrap().push("post_arrival");
            }
            fn post_departure(&mut self, _ctx) {
                LIFECYCLE_LOG.lock().unwrap().push("post_departure");
            }
        }
        fn touch(&mut self, _ctx, _args) {
            self.x += 1;
            Ok(Value::I64(self.x))
        }
    }
}

#[test]
fn lifecycle_callbacks_fire_in_order() {
    let (_net, reg, cores) = cluster(2);
    Lifecycled::register(&reg);
    LIFECYCLE_LOG.lock().unwrap().clear();
    let c = cores[0].new_complet("Lifecycled", &[]).unwrap();
    c.move_to("core1").unwrap();
    let log = LIFECYCLE_LOG.lock().unwrap().clone();
    assert_eq!(
        log,
        vec![
            "pre_departure",
            "pre_arrival",
            "post_arrival",
            "post_departure"
        ]
    );
    teardown(&cores);
}

define_complet! {
    /// A mobile agent that hops along an itinerary via deferred self-moves
    /// with continuations (weak mobility, §3.3).
    pub complet Agent {
        state {
            itinerary: Vec<String> = Vec::new(),
            visited: Vec<String> = Vec::new(),
        }
        fn start(&mut self, ctx, args) {
            self.itinerary = args
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect();
            self.visited.push(ctx.core().name().to_owned());
            self.hop(ctx, &[])
        }
        fn hop(&mut self, ctx, _args) {
            if let Some(next) = self.itinerary.first().cloned() {
                self.itinerary.remove(0);
                ctx.move_self_with(&next, "arrive", vec![]);
            }
            Ok(Value::Null)
        }
        fn arrive(&mut self, ctx, _args) {
            self.visited.push(ctx.core().name().to_owned());
            self.hop(ctx, &[])
        }
        fn visited(&mut self, _ctx, _args) {
            Ok(Value::List(
                self.visited.iter().map(|s| Value::from(s.as_str())).collect(),
            ))
        }
    }
}

#[test]
fn deferred_self_moves_follow_an_itinerary() {
    let (_net, reg, cores) = cluster(4);
    Agent::register(&reg);
    let agent = cores[0].new_complet("Agent", &[]).unwrap();
    agent
        .call(
            "start",
            &[
                Value::from("core1"),
                Value::from("core2"),
                Value::from("core3"),
            ],
        )
        .unwrap();
    // Hops are asynchronous (deferred + continuations); wait for arrival.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !cores[3].hosts(agent.id()) {
        assert!(std::time::Instant::now() < deadline, "agent never arrived");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));
    let visited = agent.call("visited", &[]).unwrap();
    let names: Vec<String> = visited
        .as_list()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap().to_owned())
        .collect();
    assert_eq!(names, vec!["core0", "core1", "core2", "core3"]);
    teardown(&cores);
}

#[test]
fn concurrent_invocations_during_moves_never_lose_updates() {
    let (_net, _reg, cores) = cluster(3);
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    let errors = Arc::new(AtomicUsize::new(0));
    let succeeded = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::new();
    for _ in 0..4 {
        let c = counter.clone();
        let errs = errors.clone();
        let okc = succeeded.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..30 {
                match c.call("add", &[Value::I64(1)]) {
                    Ok(_) => {
                        okc.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => {
                        errs.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }));
    }
    // Meanwhile, bounce the complet around.
    let mover = counter.clone();
    let mover_handle = std::thread::spawn(move || {
        for dest in ["core1", "core2", "core0", "core1"] {
            let _ = mover.move_to(dest);
            std::thread::sleep(Duration::from_millis(5));
        }
    });
    for h in handles {
        h.join().unwrap();
    }
    mover_handle.join().unwrap();

    // Every successful call must be reflected in the counter: no lost
    // updates, wherever the complet was at the time.
    let total = counter.call("get", &[]).unwrap().as_i64().unwrap();
    assert_eq!(total as usize, succeeded.load(Ordering::SeqCst));
    assert_eq!(errors.load(Ordering::SeqCst), 0, "no call should fail");
    teardown(&cores);
}

#[test]
fn carrier_facade_moves_with_continuation() {
    use fargo_core::Carrier;
    let (_net, _reg, cores) = cluster(2);
    let counter = cores[0].new_complet("Counter", &[]).unwrap();
    Carrier::move_with(
        &cores[0],
        counter.complet_ref(),
        "core1",
        "add",
        vec![Value::I64(41)],
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while counter.call("get", &[]).unwrap() != Value::I64(41) {
        assert!(
            std::time::Instant::now() < deadline,
            "continuation never ran"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(cores[1].hosts(counter.id()));
    Carrier::r#move(&cores[0], counter.complet_ref(), "core0").unwrap();
    assert!(cores[0].hosts(counter.id()));
    teardown(&cores);
}
