//! Tracking-strategy tests: tracker chains vs the home-based registry
//! (§3.1 vs the §7 future-work scheme, the E1 ablation pair).

mod common;

use std::time::Duration;

use common::{cluster_with_config, teardown, test_config};
use fargo_core::{TrackingMode, Value};

fn wanderer_scenario(mode: TrackingMode) {
    let (_net, _reg, cores) = cluster_with_config(5, test_config().with_tracking(mode));
    let msg = cores[0]
        .new_complet("Message", &[Value::from("found me")])
        .unwrap();
    for dest in ["core1", "core2", "core3", "core4"] {
        msg.move_to(dest).unwrap();
    }
    // Give asynchronous home updates a moment to land.
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("found me"));
    assert!(cores[4].hosts(msg.id()));
    teardown(&cores);
}

#[test]
fn chains_mode_finds_wanderer() {
    wanderer_scenario(TrackingMode::Chains);
}

#[test]
fn home_mode_finds_wanderer() {
    wanderer_scenario(TrackingMode::HomeBased);
}

#[test]
fn home_mode_uses_constant_messages_regardless_of_hops() {
    // In home-based tracking an invocation from the origin core costs the
    // same number of messages no matter how far the complet wandered —
    // whereas chains walk every hop. This is the mechanism E1 measures
    // as latency; here we assert it by message count.
    for hops in [1usize, 4] {
        let (net, _reg, cores) =
            cluster_with_config(6, test_config().with_tracking(TrackingMode::HomeBased));
        let msg = cores[0].new_complet("Message", &[]).unwrap();
        for i in 1..=hops {
            msg.move_to(&format!("core{i}")).unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
        let final_node = cores[hops].node();
        let before = net.link_stats(cores[0].node(), final_node).messages;
        msg.call("print", &[]).unwrap();
        let after = net.link_stats(cores[0].node(), final_node).messages;
        // Exactly one request flowed directly from core0 to the host —
        // origin is core0 itself, so the home lookup is local.
        assert_eq!(after - before, 1, "hops={hops}");
        teardown(&cores);
    }
}

#[test]
fn chains_mode_walks_every_intermediate_core() {
    // Gossip off: the test asserts the pure chain-walk message pattern,
    // which piggybacked shard deltas would shortcut.
    let (net, _reg, cores) = cluster_with_config(
        4,
        test_config()
            .with_tracking(TrackingMode::Chains)
            .with_naming_gossip_batch(0),
    );
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    msg.move_to("core3").unwrap();
    let hop01_before = net.link_stats(cores[0].node(), cores[1].node()).messages;
    let hop12_before = net.link_stats(cores[1].node(), cores[2].node()).messages;
    msg.call("print", &[]).unwrap();
    let hop01 = net.link_stats(cores[0].node(), cores[1].node()).messages - hop01_before;
    let hop12 = net.link_stats(cores[1].node(), cores[2].node()).messages - hop12_before;
    assert!(hop01 >= 1, "first chain hop must carry the request");
    assert!(hop12 >= 1, "second chain hop must carry the request");
    // After shortening, a second call goes direct: intermediate links are
    // quiet.
    let hop12_before = net.link_stats(cores[1].node(), cores[2].node()).messages;
    msg.call("print", &[]).unwrap();
    let hop12_second = net.link_stats(cores[1].node(), cores[2].node()).messages - hop12_before;
    assert_eq!(hop12_second, 0, "shortened chain must bypass intermediates");
    teardown(&cores);
}

#[test]
fn fresh_core_reaches_wanderer_via_hint_and_learns() {
    // A reference handed to a core that never saw the complet: its first
    // call follows the stale hint, later calls go direct.
    let (_net, _reg, cores) = cluster_with_config(4, test_config());
    let msg = cores[0]
        .new_complet("Message", &[Value::from("hi")])
        .unwrap();
    let stale_ref = msg.complet_ref().clone(); // last_known = core0
    msg.move_to("core1").unwrap();
    msg.move_to("core2").unwrap();
    // core3 got the (now stale) reference out of band.
    let from_core3 = cores[3].stub(stale_ref.degraded());
    assert_eq!(from_core3.call("print", &[]).unwrap(), Value::from("hi"));
    // After the first call, core3's knowledge is direct.
    assert_eq!(
        from_core3.complet_ref().last_known(),
        cores[2].node().index()
    );
    teardown(&cores);
}
