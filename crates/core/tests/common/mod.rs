//! Shared fixtures for fargo-core integration tests.
// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use std::time::Duration;

use fargo_core::{define_complet, CompletRegistry, Core, CoreConfig, Value};
use simnet::{LinkConfig, Network, NetworkConfig};

define_complet! {
    /// The paper's Figure 3 complet.
    pub complet Message {
        state {
            text: String = "hello fargo".to_owned(),
        }
        init(&mut self, args) {
            if let Some(t) = args.first().and_then(Value::as_str) {
                self.text = t.to_owned();
            }
            Ok(())
        }
        fn print(&mut self, _ctx, _args) {
            Ok(Value::from(self.text.as_str()))
        }
        fn set_text(&mut self, _ctx, args) {
            self.text = args.first().and_then(Value::as_str).unwrap_or("").to_owned();
            Ok(Value::Null)
        }
    }
}

define_complet! {
    /// A counter with history, for state-preservation checks.
    pub complet Counter {
        state {
            n: i64 = 0,
            history: Vec<i64> = Vec::new(),
        }
        fn add(&mut self, _ctx, args) {
            self.n += args.first().and_then(Value::as_i64).unwrap_or(1);
            self.history.push(self.n);
            Ok(Value::I64(self.n))
        }
        fn get(&mut self, _ctx, _args) {
            Ok(Value::I64(self.n))
        }
        fn history_len(&mut self, _ctx, _args) {
            Ok(Value::I64(self.history.len() as i64))
        }
    }
}

/// Registers the shared complet types.
pub fn registry() -> CompletRegistry {
    let reg = CompletRegistry::new();
    Message::register(&reg);
    Counter::register(&reg);
    reg
}

/// A fast network: instant links, deterministic.
pub fn fast_network() -> Network {
    Network::new(NetworkConfig {
        default_link: Some(LinkConfig::instant()),
        ..NetworkConfig::default()
    })
}

/// Spawns `n` cores named `core0..core{n-1}` with shared registry.
pub fn cluster(n: usize) -> (Network, CompletRegistry, Vec<Core>) {
    cluster_with_config(n, test_config())
}

/// Spawns `n` cores with a custom configuration.
///
/// Which transport carries the cluster's envelopes is selected by the
/// `FARGO_TRANSPORT` environment variable: unset or `simnet` uses the
/// in-process network, `tcp` pre-binds one loopback listener per Core
/// and runs the whole suite over real sockets (the simnet network stays
/// attached as the fault-injection control plane, so partition/loss
/// scenarios behave identically).
pub fn cluster_with_config(n: usize, config: CoreConfig) -> (Network, CompletRegistry, Vec<Core>) {
    let net = fast_network();
    let reg = registry();
    if std::env::var("FARGO_TRANSPORT").as_deref() == Ok("tcp") {
        // Bind everything first so the full peer table exists before any
        // Core spawns (ephemeral ports — no fixed-port collisions when
        // test binaries run in parallel).
        let listeners: Vec<std::net::TcpListener> = (0..n)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
            .collect();
        let peers: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr").to_string())
            .collect();
        let cores = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                Core::builder(&net, &format!("core{i}"))
                    .registry(&reg)
                    .config(config.clone())
                    .tcp_transport(listener, peers.clone())
                    .spawn()
                    .expect("core must spawn")
            })
            .collect();
        return (net, reg, cores);
    }
    let cores = (0..n)
        .map(|i| {
            Core::builder(&net, &format!("core{i}"))
                .registry(&reg)
                .config(config.clone())
                .spawn()
                .expect("core must spawn")
        })
        .collect();
    (net, reg, cores)
}

/// Short timeouts so failing paths fail fast in tests.
pub fn test_config() -> CoreConfig {
    CoreConfig {
        rpc_timeout: Duration::from_secs(5),
        transit_wait: Duration::from_secs(2),
        ..CoreConfig::default()
    }
}

/// Stops every core (idempotent).
pub fn teardown(cores: &[Core]) {
    for c in cores {
        c.stop();
    }
}
