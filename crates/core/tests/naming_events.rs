//! Naming-service and event-mechanism edge cases.

mod common;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use common::{cluster, teardown};
use fargo_core::{FargoError, Service, Value};

#[test]
fn bind_lookup_unbind_cycle() {
    let (_net, _reg, cores) = cluster(1);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    cores[0].bind("box", msg.complet_ref());
    assert_eq!(cores[0].lookup("box").unwrap().id(), msg.id());
    // Rebinding replaces.
    let other = cores[0].new_complet("Message", &[]).unwrap();
    cores[0].bind("box", other.complet_ref());
    assert_eq!(cores[0].lookup("box").unwrap().id(), other.id());
    // Unbind returns the reference and clears it.
    let removed = cores[0].unbind("box").unwrap();
    assert_eq!(removed.id(), other.id());
    assert!(cores[0].lookup("box").is_none());
    assert!(cores[0].unbind("box").is_none());
    teardown(&cores);
}

#[test]
fn bindings_listing_is_sorted() {
    let (_net, _reg, cores) = cluster(1);
    let m = cores[0].new_complet("Message", &[]).unwrap();
    for name in ["zeta", "alpha", "mid"] {
        cores[0].bind(name, m.complet_ref());
    }
    let names: Vec<String> = cores[0].bindings().into_iter().map(|(n, _)| n).collect();
    assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    teardown(&cores);
}

#[test]
fn lookup_stub_reports_missing_names() {
    let (_net, _reg, cores) = cluster(2);
    assert!(matches!(
        cores[0].lookup_stub("ghost"),
        Err(FargoError::NameNotBound(_))
    ));
    assert!(matches!(
        cores[0].lookup_at("core1", "ghost"),
        Err(FargoError::NameNotBound(_))
    ));
    assert!(matches!(
        cores[0].lookup_at("atlantis", "x"),
        Err(FargoError::UnknownCore(_))
    ));
    teardown(&cores);
}

#[test]
fn release_complet_clears_everything() {
    let (_net, _reg, cores) = cluster(1);
    let msg = cores[0]
        .new_named_complet("gone-soon", "Message", &[])
        .unwrap();
    assert!(cores[0].release_complet(msg.id()).is_ok());
    assert!(!cores[0].hosts(msg.id()));
    assert!(cores[0].lookup("gone-soon").is_none());
    assert!(matches!(
        msg.call("print", &[]),
        Err(FargoError::UnknownComplet(_))
    ));
    assert!(matches!(
        cores[0].release_complet(msg.id()),
        Err(FargoError::UnknownComplet(_))
    ));
    teardown(&cores);
}

#[test]
fn tracker_gc_reclaims_idle_forwards() {
    let (_net, _reg, cores) = cluster(2);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    msg.move_to("core1").unwrap();
    assert!(cores[0].tracker_count() >= 1);
    std::thread::sleep(Duration::from_millis(10));
    let dropped = cores[0].collect_trackers(Duration::from_millis(1));
    assert_eq!(dropped, 1, "the forwarding tracker is idle and reclaimable");
    // After GC, the reference still works: the descriptor hint re-seeds.
    assert_eq!(msg.call("print", &[]).unwrap(), Value::from("hello fargo"));
    teardown(&cores);
}

#[test]
fn event_subscription_counting_and_unsubscribe() {
    let (_net, _reg, cores) = cluster(1);
    let core = &cores[0];
    assert_eq!(core.subscription_count(), 0);
    let t1 = core.on_event("completArrived", None, true, Arc::new(|_| {}));
    let t2 = core.on_event("completDeparted", None, true, Arc::new(|_| {}));
    assert_eq!(core.subscription_count(), 2);
    assert!(core.unsubscribe(t1));
    assert!(!core.unsubscribe(t1));
    assert!(core.unsubscribe(t2));
    assert_eq!(core.subscription_count(), 0);
    teardown(&cores);
}

#[test]
fn profile_event_subscription_autostarts_and_autostops_profiling() {
    // §4.2: "Internally, the event registration mechanism invokes the
    // proper start method."
    let (_net, _reg, cores) = cluster(2);
    let selector = "completLoad";
    let service = Service::CompletLoad;
    assert!(!cores[1].monitor().is_profiling(&service));
    let sub = cores[0]
        .subscribe_at("core1", selector, Some(100.0), true, Arc::new(|_| {}))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while !cores[1].monitor().is_profiling(&service) {
        assert!(
            std::time::Instant::now() < deadline,
            "profiling never started"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    sub.cancel();
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while cores[1].monitor().is_profiling(&service) {
        assert!(
            std::time::Instant::now() < deadline,
            "profiling never stopped"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    teardown(&cores);
}

#[test]
fn below_threshold_events_fire_on_degradation() {
    // A "quality dropped" policy: notify when completLoad falls to zero.
    let (_net, _reg, cores) = cluster(1);
    let fired = Arc::new(AtomicUsize::new(0));
    let f = fired.clone();
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    cores[0].profile_start(Service::CompletLoad, Duration::from_millis(10));
    std::thread::sleep(Duration::from_millis(80)); // average settles at 1
    cores[0].on_event(
        "completLoad",
        Some(0.5),
        false, // below
        Arc::new(move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        }),
    );
    std::thread::sleep(Duration::from_millis(80));
    assert_eq!(fired.load(Ordering::SeqCst), 0, "load is 1: no event yet");
    cores[0].release_complet(msg.id()).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while fired.load(Ordering::SeqCst) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "below-event never fired"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    teardown(&cores);
}

#[test]
fn queue_len_service_is_measurable() {
    let (_net, _reg, cores) = cluster(1);
    let v = cores[0].profile_instant(&Service::QueueLen).unwrap();
    assert!(v >= 0.0);
    teardown(&cores);
}

#[test]
fn memory_use_scales_with_resident_state() {
    let (_net, _reg, cores) = cluster(1);
    let before = cores[0].profile_instant(&Service::MemoryUse).unwrap();
    let c = cores[0].new_complet("Counter", &[]).unwrap();
    for _ in 0..500 {
        c.call("add", &[Value::I64(1)]).unwrap();
    }
    std::thread::sleep(Duration::from_millis(150)); // cache TTL
    let after = cores[0].profile_instant(&Service::MemoryUse).unwrap();
    assert!(after > before, "memory use must grow: {before} -> {after}");
    teardown(&cores);
}
