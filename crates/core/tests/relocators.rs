//! Relocation-semantics tests: link / pull / duplicate / stamp, meta-
//! reference retyping, and the one-message co-movement property (§2, §3.3).

mod common;

use std::sync::Arc;

use common::{cluster, cluster_with_config, teardown, test_config};
use fargo_core::{define_complet, ArrivalAction, FargoError, MarshalAction, Relocator, Value};

define_complet! {
    /// Holds a typed reference slot whose relocator the test retypes.
    pub complet Holder {
        state {
            dep: Option<fargo_core::CompletRef> = None,
            label: String = String::new(),
        }
        fn set_dep(&mut self, _ctx, args) {
            let d = args
                .first()
                .and_then(Value::as_ref_desc)
                .cloned()
                .ok_or_else(|| FargoError::InvalidArgument("need ref".into()))?;
            self.dep = Some(fargo_core::CompletRef::from_descriptor(d));
            Ok(Value::Null)
        }
        fn retype_dep(&mut self, ctx, args) {
            let t = args.first().and_then(Value::as_str).unwrap_or("link");
            let dep = self.dep.clone().ok_or_else(|| FargoError::App("no dep".into()))?;
            ctx.core().meta_ref(&dep).set_relocator(t)?;
            self.dep = Some(dep);
            Ok(Value::Null)
        }
        fn dep_id(&mut self, _ctx, _args) {
            Ok(self
                .dep
                .as_ref()
                .map(|d| Value::from(d.id().to_string()))
                .unwrap_or(Value::Null))
        }
        fn call_dep(&mut self, ctx, args) {
            let dep = self.dep.clone().ok_or_else(|| FargoError::App("no dep".into()))?;
            ctx.call(&dep, "print", args)
        }
    }
}

fn setup_holder_with_dep(
    relocator: &str,
    cores: &[fargo_core::Core],
) -> (fargo_core::BoundRef, fargo_core::BoundRef) {
    Holder::register(cores[0].registry());
    let dep = cores[0]
        .new_complet("Message", &[Value::from("dependency")])
        .unwrap();
    let holder = cores[0].new_complet("Holder", &[]).unwrap();
    holder
        .call("set_dep", &[Value::Ref(dep.complet_ref().descriptor())])
        .unwrap();
    holder
        .call("retype_dep", &[Value::from(relocator)])
        .unwrap();
    (holder, dep)
}

#[test]
fn link_reference_leaves_target_behind() {
    let (_net, _reg, cores) = cluster(2);
    let (holder, dep) = setup_holder_with_dep("link", &cores);
    holder.move_to("core1").unwrap();
    assert!(cores[1].hosts(holder.id()));
    assert!(cores[0].hosts(dep.id()), "link target must not move");
    // The moved holder still reaches its dependency remotely.
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("dependency")
    );
    teardown(&cores);
}

#[test]
fn pull_reference_drags_target_along() {
    let (_net, _reg, cores) = cluster(2);
    let (holder, dep) = setup_holder_with_dep("pull", &cores);
    holder.move_to("core1").unwrap();
    assert!(cores[1].hosts(holder.id()));
    assert!(cores[1].hosts(dep.id()), "pull target must co-move");
    assert!(!cores[0].hosts(dep.id()));
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("dependency")
    );
    teardown(&cores);
}

#[test]
fn pull_closure_moves_in_one_message() {
    // "all complets that should move as a result of the same movement
    // request are part of the same stream, thus only a single inter-Core
    // message is involved" (§3.3). The two-phase transfer adds one
    // constant-size MoveCommit: the closure still ships in exactly one
    // data-bearing message (the MovePrepare). Naming is pinned off —
    // shard publishes are constant-size control notifies, but they would
    // skew this raw message count.
    let (net, _reg, cores) = cluster_with_config(2, test_config().with_naming_shards(false));
    let (holder, _dep) = setup_holder_with_dep("pull", &cores);
    let before = net.link_stats(cores[0].node(), cores[1].node()).messages;
    holder.move_to("core1").unwrap();
    let after = net.link_stats(cores[0].node(), cores[1].node()).messages;
    assert_eq!(
        after - before,
        2,
        "the whole pull closure must travel in one prepare + one commit"
    );
    teardown(&cores);
}

#[test]
fn pull_cycles_terminate() {
    // Two complets pulling each other must move once each, not loop.
    let (_net, reg, cores) = cluster(2);
    Holder::register(&reg);
    let a = cores[0].new_complet("Holder", &[]).unwrap();
    let b = cores[0].new_complet("Holder", &[]).unwrap();
    a.call("set_dep", &[Value::Ref(b.complet_ref().descriptor())])
        .unwrap();
    b.call("set_dep", &[Value::Ref(a.complet_ref().descriptor())])
        .unwrap();
    a.call("retype_dep", &[Value::from("pull")]).unwrap();
    b.call("retype_dep", &[Value::from("pull")]).unwrap();
    a.move_to("core1").unwrap();
    assert!(cores[1].hosts(a.id()));
    assert!(cores[1].hosts(b.id()));
    teardown(&cores);
}

#[test]
fn duplicate_reference_copies_target() {
    let (_net, _reg, cores) = cluster(2);
    let (holder, dep) = setup_holder_with_dep("duplicate", &cores);
    let orig_id = dep.id().to_string();
    holder.move_to("core1").unwrap();
    // Original stays at core0 and still answers.
    assert!(cores[0].hosts(dep.id()));
    assert_eq!(dep.call("print", &[]).unwrap(), Value::from("dependency"));
    // The holder now points at a *copy* living at core1.
    let new_id = holder.call("dep_id", &[]).unwrap();
    assert_ne!(
        new_id,
        Value::from(orig_id.as_str()),
        "must be re-bound to the copy"
    );
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("dependency"),
        "the copy carries the original's state"
    );
    // The copy is independent: changing the original does not affect it.
    dep.call("set_text", &[Value::from("changed")]).unwrap();
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("dependency")
    );
    teardown(&cores);
}

#[test]
fn stamp_reference_rebinds_to_local_equivalent() {
    let (_net, _reg, cores) = cluster(2);
    // A "printer" of the right type already lives at the destination.
    let local_printer = cores[0]
        .new_complet_at("core1", "Message", &[Value::from("core1 printer")])
        .unwrap();
    let (holder, dep) = setup_holder_with_dep("stamp", &cores);
    holder.move_to("core1").unwrap();
    // The reference now points at the destination's own instance.
    assert_eq!(
        holder.call("dep_id", &[]).unwrap(),
        Value::from(local_printer.id().to_string())
    );
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("core1 printer")
    );
    // The original stayed put.
    assert!(cores[0].hosts(dep.id()));
    teardown(&cores);
}

#[test]
fn stamp_without_local_instance_keeps_old_target_by_default() {
    let (_net, _reg, cores) = cluster(2);
    let (holder, dep) = setup_holder_with_dep("stamp", &cores);
    holder.move_to("core1").unwrap();
    // No Message at core1: the lenient default keeps tracking the old one.
    assert_eq!(
        holder.call("dep_id", &[]).unwrap(),
        Value::from(dep.id().to_string())
    );
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("dependency")
    );
    teardown(&cores);
}

#[test]
fn strict_stamp_failure_aborts_the_move() {
    let (_net, _reg, cores) = cluster_with_config(2, test_config().strict_stamps());
    let (holder, _dep) = setup_holder_with_dep("stamp", &cores);
    match holder.move_to("core1") {
        Err(FargoError::StampUnresolved(t)) => assert_eq!(t, "Message"),
        other => panic!("expected StampUnresolved, got {other:?}"),
    }
    // The move was rejected wholesale; the holder is intact at core0.
    assert!(cores[0].hosts(holder.id()));
    assert_eq!(
        holder.call("call_dep", &[]).unwrap(),
        Value::from("dependency")
    );
    teardown(&cores);
}

#[test]
fn meta_ref_rejects_unknown_relocators() {
    let (_net, _reg, cores) = cluster(1);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    assert!(matches!(
        msg.meta().set_relocator("teleport"),
        Err(FargoError::UnknownRelocator(_))
    ));
    assert_eq!(msg.meta().relocator_name(), "link");
    teardown(&cores);
}

#[test]
fn meta_ref_reports_location() {
    let (_net, _reg, cores) = cluster(3);
    let msg = cores[0].new_complet("Message", &[]).unwrap();
    assert_eq!(msg.meta().location().unwrap(), "core0");
    msg.move_to("core2").unwrap();
    assert_eq!(msg.meta().location().unwrap(), "core2");
    teardown(&cores);
}

#[test]
fn user_defined_relocator_participates_in_movement() {
    // A "tether" that pulls like `pull` — registered by the application,
    // exercising the extension point of §3.3.
    struct Tether;
    impl Relocator for Tether {
        fn name(&self) -> &str {
            "tether"
        }
        fn marshal_action(&self) -> MarshalAction {
            MarshalAction::PullTarget
        }
        fn arrival_action(&self) -> ArrivalAction {
            ArrivalAction::Keep
        }
    }
    let (_net, _reg, cores) = cluster(2);
    cores[0].relocators().register(Arc::new(Tether));
    cores[1].relocators().register(Arc::new(Tether));
    let (holder, dep) = setup_holder_with_dep("tether", &cores);
    holder.move_to("core1").unwrap();
    assert!(cores[1].hosts(dep.id()), "tether must behave like pull");
    teardown(&cores);
}

#[test]
fn shared_relocator_registry_sees_registrations_everywhere() {
    let (_net, _reg, cores) = cluster(2);
    // Cores built via cluster() share one registry by default? They each
    // get their own default registry — verify explicit sharing works.
    let shared = cores[0].relocators();
    assert!(shared.contains("pull"));
    assert_eq!(shared.names().len(), 4);
    teardown(&cores);
}
