//! The `Carrier` — the paper's movement façade (§3.3).
//!
//! FarGo exposes movement as a static service:
//!
//! ```java
//! Carrier.move(msg,                 // the moved complet
//!              "acadia",            // destination
//!              "start",             // continuation method
//!              new Object[] {a1});  // arguments
//! ```
//!
//! [`BoundRef::move_to`](crate::BoundRef::move_to) and
//! [`BoundRef::move_with`](crate::BoundRef::move_with) are the idiomatic
//! Rust spelling; this module provides the paper-shaped free functions for
//! code that wants to read like the original.

use fargo_wire::Value;

use crate::error::Result;
use crate::reference::CompletRef;
use crate::runtime::Core;

/// The movement service.
#[derive(Debug, Clone, Copy)]
pub struct Carrier;

impl Carrier {
    /// Moves the complet behind `target` to the Core named `dest`.
    ///
    /// # Errors
    ///
    /// See [`Core::move_complet`].
    pub fn r#move(core: &Core, target: &CompletRef, dest: &str) -> Result<()> {
        core.move_complet(target.id(), dest, None)
    }

    /// Moves the complet and invokes `continuation(args)` on it at the
    /// destination — the full Figure-style call.
    ///
    /// # Errors
    ///
    /// See [`Core::move_complet`].
    pub fn move_with(
        core: &Core,
        target: &CompletRef,
        dest: &str,
        continuation: &str,
        args: Vec<Value>,
    ) -> Result<()> {
        core.move_complet(target.id(), dest, Some((continuation.to_owned(), args)))
    }
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end in the crate's integration tests; here we only
    // assert the façade's signatures exist and delegate (compile-time).
    use super::*;

    #[test]
    fn carrier_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Carrier>(), 0);
    }
}
