//! Per-Core telemetry wiring: pre-registered metric handles for the hot
//! paths, the span log, and the ambient (thread-local) trace context that
//! lets nested complet-to-complet calls join their caller's trace.
//!
//! All series carry a `core=<name>` label, so several Cores may share one
//! [`Registry`] (as the bench harness and viz monitor do) without
//! colliding. Handles are resolved once at Core spawn; recording on the
//! hot path touches only atomics.

use std::cell::Cell;
use std::collections::HashMap;

use std::fmt;

use parking_lot::Mutex;

use fargo_telemetry::{
    Accountant, Clock, Counter, Gauge, Histogram, Hlc, HlcClock, Journal, JournalEvent,
    JournalKind, Registry, SlowLog, SpanLog, TraceContext, TrafficMatrix, WindowedHistogram,
    BUCKETS_BYTES, BUCKETS_COUNT, BUCKETS_LATENCY_US,
};
use fargo_wire::CompletId;

use crate::config::CoreConfig;

/// All request kinds plus the envelope-level labels, pre-registered so
/// the receive/send paths never take the registry lock.
const MSG_KINDS: &[&str] = &[
    "invoke",
    "move",
    "new",
    "lookup",
    "fetch",
    "move_req",
    "where",
    "subscribe",
    "unsubscribe",
    "list",
    "list_trk",
    "trace_spans",
    "journal",
    "top",
    "matrix",
    "ping",
    "move_prep",
    "move_commit",
    "move_abort",
    "move_query",
    "move_decision",
    "locate",
    "shard_list",
    "reply",
    "notify",
];

/// Relocator kinds counted during marshal closure.
pub(crate) const RELOCATOR_KINDS: &[&str] = &["link", "pull", "duplicate", "stamp"];

pub(crate) struct CoreTelemetry {
    pub registry: Registry,
    pub spans: SpanLog,
    /// Span recording gate (metrics are unconditional).
    pub trace_enabled: bool,

    // Flight recorder: the layout-event journal and the hybrid logical
    // clock that stamps it (and every outbound envelope).
    pub journal: Journal,
    pub clock: HlcClock,
    pub journal_enabled: bool,
    /// Serializes the tick-then-append pair in [`journal`](Self::journal)
    /// so ring order always matches HLC order: shard gossip journals
    /// from the receive/notify threads while invokes journal from the
    /// worker pool, and an unserialized interleave can append a larger
    /// stamp at a smaller ring seq.
    journal_stamp: Mutex<()>,
    /// Network node index of this Core, recorded on every journal event.
    node: u32,
    journal_events_total: Counter,

    // Invocation.
    pub invoke_total: Counter,
    pub invoke_latency_us: WindowedHistogram,
    pub invoke_hops: Histogram,
    pub chain_shortenings_total: Counter,

    // Per-phase request timing (tail-latency observatory). Each remote
    // invoke decomposes into queue-wait / marshal / network / exec /
    // tracker-forward components, recorded here when `phase_timing` is
    // on.
    pub phase_timing: bool,
    pub latency_queue_us: Histogram,
    pub latency_marshal_us: Histogram,
    pub latency_network_us: Histogram,
    pub latency_exec_us: Histogram,
    pub latency_forward_us: Histogram,
    /// Tail-based trace retention: full span trees of the slowest
    /// requests seen so far, bounded by `slow_log_capacity`.
    pub slow: SlowLog,
    /// The shared time source phase stamps are read from (virtual under
    /// `fargo-check`, wall otherwise).
    pub time: Clock,

    // Tracker.
    pub tracker_forwards_served_total: Counter,
    pub tracker_chain_length: Histogram,

    // Movement.
    pub move_marshal_bytes: Histogram,
    pub move_comoved: Histogram,
    pub move_update_set: Histogram,
    move_by_relocator: HashMap<&'static str, Counter>,

    // Proto: messages and bytes, in/out, by message kind.
    msg_out: HashMap<&'static str, (Counter, Counter)>,
    msg_in: HashMap<&'static str, (Counter, Counter)>,

    // Endpoint queue depth, refreshed opportunistically.
    pub queue_depth: Gauge,

    // Reliable messaging layer.
    /// Request retransmissions sent by `rpc()`.
    pub rpc_retries_total: Counter,
    /// Retried requests answered from the reply-dedup cache.
    pub dedup_hits_total: Counter,
    /// Retransmits dropped because the original is still executing.
    pub dedup_inflight_total: Counter,
    /// Dedup-cache entries evicted to stay within capacity.
    pub dedup_evictions_total: Counter,
    /// Replies that failed to send (the requester will retry or time out).
    pub reply_send_failures: Counter,
    /// Two-phase moves whose commit outcome needed epoch-query resolution.
    pub move_indoubt_total: Counter,
    /// Requests dropped because the worker-pool queue was full.
    pub worker_rejections_total: Counter,
    /// Read-only requests served directly on the dispatch loop (the
    /// fast path that never occupies a pool slot).
    pub worker_inline_total: Counter,
    /// Tracker updates rejected for carrying a stale move epoch.
    pub tracker_stale_total: Counter,

    // Cluster health observatory.
    /// Per-complet accounting gate (the matrix rides the same switch).
    pub accounting: bool,
    /// Per-complet exec/invoke/bytes attribution, Space-Saving bounded.
    pub accountant: Accountant,
    /// Messages and bytes per directed Core pair, fed from `send_to`.
    pub matrix: TrafficMatrix,
    /// Invocations that returned an error to the caller.
    pub invoke_errors_total: Counter,
    /// `move_complet` attempts.
    pub moves_attempted_total: Counter,
    /// `move_complet` attempts that failed.
    pub move_failures_total: Counter,
    /// Per-SLO-rule alert series: `fargo_alerts_total` edges and the
    /// `fargo_health_status` 0/1 gauge, pre-registered per rule.
    pub health_series: HashMap<String, (Counter, Gauge)>,

    // Sharded location service.
    /// `locate()` resolutions, by any path.
    pub naming_lookups_total: Counter,
    /// Network hops a resolution needed (0 = local/cached answer).
    pub naming_lookup_hops: Histogram,
    /// Shard entries published (created, moved, or tombstoned) by this
    /// Core as the event source.
    pub naming_publishes_total: Counter,
    /// Stale hints detected by move-epoch mismatch and repaired.
    pub naming_repairs_total: Counter,
    /// Shard deltas applied from gossip (piggyback or anti-entropy).
    pub naming_deltas_in_total: Counter,
    /// Shard deltas sent to peers (piggyback or anti-entropy).
    pub naming_deltas_out_total: Counter,
    /// Encoded bytes of gossiped deltas, both directions.
    pub naming_gossip_bytes_total: Counter,
    /// Shard entries re-homed after a ring membership change.
    pub naming_handoffs_total: Counter,

    // Durability (write-ahead passivation log + restart recovery).
    /// Records appended to the write-ahead log.
    pub wal_appends_total: Counter,
    /// Log compactions (monitor-tick or explicit rewrites).
    pub wal_compactions_total: Counter,
    /// Write-ahead log append or compaction failures.
    pub wal_errors_total: Counter,
    /// Complets re-installed from the log by restart recovery.
    pub recovery_replayed_total: Counter,
    /// Prepared moves re-held by restart recovery.
    pub recovery_held_total: Counter,
    /// Logs whose tail was torn or corrupted at replay.
    pub recovery_corrupt_total: Counter,
    /// Wall-clock microseconds the last recovery pass took.
    pub recovery_duration_us: Gauge,
}

impl CoreTelemetry {
    pub(crate) fn new(registry: Registry, core: &str, node: u32, config: &CoreConfig) -> Self {
        let trace_enabled = config.trace_enabled;
        let trace_capacity = config.trace_capacity;
        let journal_enabled = config.journal_enabled;
        let journal_capacity = config.journal_capacity;
        let clock = config.clock.clone();
        let l = &[("core", core)][..];
        let move_by_relocator = RELOCATOR_KINDS
            .iter()
            .map(|&kind| {
                (
                    kind,
                    registry.counter("fargo_move_total", &[("core", core), ("relocator", kind)]),
                )
            })
            .collect();
        let per_kind =
            |name_msgs: &str, name_bytes: &str| -> HashMap<&'static str, (Counter, Counter)> {
                MSG_KINDS
                    .iter()
                    .map(|&kind| {
                        (
                            kind,
                            (
                                registry.counter(name_msgs, &[("core", core), ("kind", kind)]),
                                registry.counter(name_bytes, &[("core", core), ("kind", kind)]),
                            ),
                        )
                    })
                    .collect()
            };
        let phase_hist =
            |name: &str| -> Histogram { registry.histogram(name, l, BUCKETS_LATENCY_US) };
        let health_series = config
            .slo_rules
            .iter()
            .map(|r| {
                let rl = &[("core", core), ("rule", r.name.as_str())][..];
                (
                    r.name.clone(),
                    (
                        registry.counter("fargo_alerts_total", rl),
                        registry.gauge("fargo_health_status", rl),
                    ),
                )
            })
            .collect();
        CoreTelemetry {
            spans: SpanLog::with_clock(trace_capacity, clock.clone()),
            trace_enabled,
            journal: Journal::with_base(journal_capacity, config.journal_seq_base),
            clock: HlcClock::with_source(clock.clone()),
            journal_enabled,
            journal_stamp: Mutex::new(()),
            node,
            journal_events_total: registry.counter("fargo_journal_events_total", l),
            invoke_total: registry.counter("fargo_invoke_total", l),
            invoke_latency_us: WindowedHistogram::new(
                registry.histogram("fargo_invoke_latency_us", l, BUCKETS_LATENCY_US),
                config.latency_window,
            ),
            invoke_hops: registry.histogram("fargo_invoke_hops", l, BUCKETS_COUNT),
            phase_timing: config.phase_timing,
            latency_queue_us: phase_hist("fargo_latency_queue_us"),
            latency_marshal_us: phase_hist("fargo_latency_marshal_us"),
            latency_network_us: phase_hist("fargo_latency_network_us"),
            latency_exec_us: phase_hist("fargo_latency_exec_us"),
            latency_forward_us: phase_hist("fargo_latency_forward_us"),
            slow: SlowLog::new(config.slow_log_capacity),
            time: clock,
            chain_shortenings_total: registry.counter("fargo_chain_shortenings_total", l),
            tracker_forwards_served_total: registry
                .counter("fargo_tracker_forwards_served_total", l),
            tracker_chain_length: registry.histogram(
                "fargo_tracker_chain_length",
                l,
                BUCKETS_COUNT,
            ),
            move_marshal_bytes: registry.histogram("fargo_move_marshal_bytes", l, BUCKETS_BYTES),
            move_comoved: registry.histogram("fargo_move_comoved", l, BUCKETS_COUNT),
            move_update_set: registry.histogram("fargo_move_update_set", l, BUCKETS_COUNT),
            move_by_relocator,
            msg_out: per_kind("fargo_msg_out_total", "fargo_msg_out_bytes_total"),
            msg_in: per_kind("fargo_msg_in_total", "fargo_msg_in_bytes_total"),
            queue_depth: registry.gauge("fargo_endpoint_queue_depth", l),
            rpc_retries_total: registry.counter("fargo_rpc_retries_total", l),
            dedup_hits_total: registry.counter("fargo_dedup_hits_total", l),
            dedup_inflight_total: registry.counter("fargo_dedup_inflight_total", l),
            dedup_evictions_total: registry.counter("fargo_dedup_evictions_total", l),
            reply_send_failures: registry.counter("fargo_reply_send_failures", l),
            move_indoubt_total: registry.counter("fargo_move_indoubt_total", l),
            worker_rejections_total: registry.counter("fargo_worker_rejections_total", l),
            worker_inline_total: registry.counter("fargo_worker_inline_total", l),
            tracker_stale_total: registry.counter("fargo_tracker_stale_rejections_total", l),
            accounting: config.accounting,
            accountant: Accountant::new(config.account_capacity),
            matrix: TrafficMatrix::new(&registry),
            invoke_errors_total: registry.counter("fargo_invoke_errors_total", l),
            moves_attempted_total: registry.counter("fargo_moves_attempted_total", l),
            move_failures_total: registry.counter("fargo_move_failures_total", l),
            health_series,
            naming_lookups_total: registry.counter("fargo_naming_lookups_total", l),
            naming_lookup_hops: registry.histogram("fargo_naming_lookup_hops", l, BUCKETS_COUNT),
            naming_publishes_total: registry.counter("fargo_naming_publishes_total", l),
            naming_repairs_total: registry.counter("fargo_naming_repairs_total", l),
            naming_deltas_in_total: registry.counter("fargo_naming_deltas_in_total", l),
            naming_deltas_out_total: registry.counter("fargo_naming_deltas_out_total", l),
            naming_gossip_bytes_total: registry.counter("fargo_naming_gossip_bytes_total", l),
            naming_handoffs_total: registry.counter("fargo_naming_handoffs_total", l),
            wal_appends_total: registry.counter("fargo_wal_appends_total", l),
            wal_compactions_total: registry.counter("fargo_wal_compactions_total", l),
            wal_errors_total: registry.counter("fargo_wal_errors_total", l),
            recovery_replayed_total: registry.counter("fargo_recovery_replayed_total", l),
            recovery_held_total: registry.counter("fargo_recovery_held_total", l),
            recovery_corrupt_total: registry.counter("fargo_recovery_corrupt_total", l),
            recovery_duration_us: registry.gauge("fargo_recovery_duration_us", l),
            registry,
        }
    }

    /// Attributes one executed invocation to its complet, gated on the
    /// accounting switch (off costs one branch). Planner pseudo-complet
    /// ids (`seq == 0`, the per-Core application stand-ins from the
    /// affinity graph) never execute real methods; they are excluded
    /// here anyway so a stray id cannot crowd the heavy-hitter table.
    pub(crate) fn account_exec(&self, id: CompletId, exec_us: u64, bytes_in: u64, bytes_out: u64) {
        if self.accounting && id.seq != 0 {
            self.accountant
                .record((id.origin, id.seq), exec_us, bytes_in, bytes_out);
        }
    }

    /// Counts one outbound message of `kind` and its encoded size.
    pub(crate) fn record_msg_out(&self, kind: &str, bytes: usize) {
        if let Some((msgs, total)) = self.msg_out.get(kind) {
            msgs.inc();
            total.add(bytes as u64);
        }
    }

    /// Counts one inbound message of `kind` and its wire size.
    pub(crate) fn record_msg_in(&self, kind: &str, bytes: usize) {
        if let Some((msgs, total)) = self.msg_in.get(kind) {
            msgs.inc();
            total.add(bytes as u64);
        }
    }

    /// Counts one marshal decision of the given relocator kind.
    pub(crate) fn record_relocator(&self, kind: &str) {
        if let Some(c) = self.move_by_relocator.get(kind) {
            c.inc();
        }
    }

    /// Appends one layout event to the flight recorder, stamped with a
    /// fresh HLC tick. `subject` is formatted lazily so a disabled
    /// journal costs one branch and no allocation on the hot path.
    pub(crate) fn journal(
        &self,
        kind: JournalKind,
        subject: &dyn fmt::Display,
        object: &str,
        detail: &str,
        peer: Option<u32>,
    ) {
        if !self.journal_enabled {
            return;
        }
        // Format outside the stamp lock; only the tick+append pair needs
        // to be atomic (ring seq must be monotone in HLC per node).
        let subject = subject.to_string();
        let object = object.to_owned();
        let detail = detail.to_owned();
        {
            let _stamp = self.journal_stamp.lock();
            let hlc = self.clock.tick();
            self.journal.append(JournalEvent {
                hlc,
                core: self.node,
                seq: 0, // assigned by the ring
                kind,
                subject,
                object,
                detail,
                peer,
            });
        }
        self.journal_events_total.inc();
    }

    /// The HLC stamp for an outbound envelope: a fresh tick when
    /// journaling is on (so receive-side merges order after every event
    /// this Core recorded), nothing when it is off.
    pub(crate) fn hlc_send_stamp(&self) -> Option<Hlc> {
        self.journal_enabled.then(|| self.clock.tick())
    }

    /// Merges a remote envelope HLC into this Core's clock.
    pub(crate) fn observe_hlc(&self, remote: Hlc) {
        if self.journal_enabled {
            self.clock.observe(remote);
        }
    }

    /// The current time on the shared clock in µs, for phase stamps.
    pub(crate) fn phase_now_us(&self) -> u64 {
        self.time.now_us()
    }

    /// The send-timestamp for an outbound envelope's optional `ts`
    /// field: the current shared-clock time when phase timing is on,
    /// nothing when it is off (the field is then omitted from the wire).
    pub(crate) fn phase_send_stamp(&self) -> Option<u64> {
        self.phase_timing.then(|| self.time.now_us())
    }

    /// Records one phase duration (µs) into `hist`, gated on the
    /// phase-timing switch so the off configuration costs one branch.
    pub(crate) fn observe_phase(&self, hist: &Histogram, us: u64) {
        if self.phase_timing {
            hist.observe(us);
        }
    }
}

// --- ambient trace context ------------------------------------------------

thread_local! {
    static CURRENT_TRACE: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The trace context ambient on this thread, if any (set while a traced
/// complet method executes, so nested calls join the same trace).
pub(crate) fn current_trace() -> Option<TraceContext> {
    CURRENT_TRACE.with(|c| c.get())
}

/// Sets the ambient trace context for the duration of the returned guard.
pub(crate) fn enter_trace(ctx: TraceContext) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(Some(ctx)));
    TraceScope { prev }
}

/// Restores the previous ambient context on drop.
pub(crate) struct TraceScope {
    prev: Option<TraceContext>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(journaling: bool) -> CoreConfig {
        let mut cfg = CoreConfig::default()
            .with_tracing(true)
            .with_journaling(journaling)
            .with_journal_capacity(8);
        cfg.trace_capacity = 8;
        cfg
    }

    #[test]
    fn ambient_trace_nests_and_restores() {
        assert!(current_trace().is_none());
        let outer = TraceContext::new_root();
        {
            let _g1 = enter_trace(outer);
            assert_eq!(current_trace(), Some(outer));
            let inner = outer.child();
            {
                let _g2 = enter_trace(inner);
                assert_eq!(current_trace(), Some(inner));
            }
            assert_eq!(current_trace(), Some(outer));
        }
        assert!(current_trace().is_none());
    }

    #[test]
    fn unknown_message_kind_is_ignored() {
        let t = CoreTelemetry::new(Registry::new(), "c", 0, &test_cfg(true));
        t.record_msg_out("no_such_kind", 10);
        t.record_msg_in("invoke", 10);
        let snap = t.registry.snapshot();
        assert!(snap.iter().any(|s| s.name == "fargo_msg_in_total"));
    }

    #[test]
    fn phase_timing_gates_stamps_and_histograms() {
        let mut cfg = test_cfg(false);
        cfg.phase_timing = false;
        let off = CoreTelemetry::new(Registry::new(), "c", 0, &cfg);
        assert!(off.phase_send_stamp().is_none());
        off.observe_phase(&off.latency_queue_us, 5);
        assert_eq!(off.latency_queue_us.count(), 0);

        let on = CoreTelemetry::new(Registry::new(), "c", 0, &test_cfg(false));
        assert!(on.phase_send_stamp().is_some());
        on.observe_phase(&on.latency_queue_us, 5);
        assert_eq!(on.latency_queue_us.count(), 1);
    }

    #[test]
    fn journal_helper_records_and_gates() {
        let on = CoreTelemetry::new(Registry::new(), "c", 3, &test_cfg(true));
        on.journal(JournalKind::CompletArrived, &"c0.1", "Agent", "", Some(1));
        let snap = on.journal.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].core, 3);
        assert_eq!(snap[0].kind, JournalKind::CompletArrived);
        assert!(on.hlc_send_stamp().is_some());

        let off = CoreTelemetry::new(Registry::new(), "c", 3, &test_cfg(false));
        off.journal(JournalKind::CompletArrived, &"c0.1", "", "", None);
        assert!(off.journal.snapshot().is_empty());
        assert!(off.hlc_send_stamp().is_none());
    }
}
