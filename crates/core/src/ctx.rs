//! The execution context handed to complet code.
//!
//! A [`Ctx`] is created by the Core for every method invocation and
//! lifecycle callback. It is the complet's window onto the runtime: making
//! outgoing calls, using naming and monitoring, and requesting moves.
//!
//! # Self-movement and weak mobility
//!
//! FarGo provides *weak* mobility: a complet's stack never moves (§3.3).
//! A complet therefore cannot relocate mid-method; instead,
//! [`Ctx::move_self`] (and friends) record a **deferred** move that the
//! Core executes as soon as the current invocation returns, optionally
//! invoking a continuation method at the destination — the paper's
//! "call with continuation" style.

use fargo_wire::{CompletId, Value};

use crate::error::Result;
use crate::reference::CompletRef;
use crate::runtime::Core;

/// A relocation request recorded during an invocation, executed after it.
#[derive(Debug, Clone)]
pub(crate) struct DeferredMove {
    /// The complet to move (usually the invoker itself).
    pub target: CompletId,
    /// Destination Core name.
    pub dest: String,
    /// Optional continuation: `(method, args)` invoked on the moved
    /// complet once it arrives.
    pub continuation: Option<(String, Vec<Value>)>,
}

/// Per-invocation context: the complet's interface to its Core.
pub struct Ctx {
    core: Core,
    self_id: CompletId,
    self_type: String,
    chain: Vec<CompletId>,
    pub(crate) deferred: Vec<DeferredMove>,
}

impl Ctx {
    pub(crate) fn new(
        core: Core,
        self_id: CompletId,
        self_type: String,
        chain: Vec<CompletId>,
    ) -> Self {
        Ctx {
            core,
            self_id,
            self_type,
            chain,
            deferred: Vec::new(),
        }
    }

    /// The Core currently hosting this complet.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// This complet's identity.
    pub fn self_id(&self) -> CompletId {
        self.self_id
    }

    /// A reference to this complet (its own anchor), suitable for passing
    /// to other complets or binding in the naming service.
    pub fn self_ref(&self) -> CompletRef {
        self.core.make_ref(self.self_id, &self.self_type)
    }

    /// The synchronous call chain that led here (own id last).
    pub fn chain(&self) -> &[CompletId] {
        &self.chain
    }

    /// Invokes a method through a complet reference.
    ///
    /// Parameters follow the paper's semantics: argument [`Value`] trees
    /// are passed by value, and any complet references inside them are
    /// degraded to `link` at the receiving side (§3.1).
    ///
    /// # Errors
    ///
    /// Fails with
    /// [`FargoError::ReentrantInvocation`](crate::FargoError::ReentrantInvocation)
    /// if the target is already on this call chain, or with any
    /// invocation error.
    pub fn call(&self, target: &CompletRef, method: &str, args: &[Value]) -> Result<Value> {
        // An inter-complet call is the observatory's evidence of a live
        // reference edge: journal it before the invocation is issued.
        self.core.inner.telemetry.journal(
            fargo_telemetry::JournalKind::RefEdgeCreated,
            &self.self_id,
            &target.id().to_string(),
            &target.relocator(),
            None,
        );
        self.core
            .invoke_chained(target, method, args, self.chain.clone())
    }

    /// Requests relocation of this complet to `dest` once the current
    /// invocation returns.
    pub fn move_self(&mut self, dest: &str) {
        self.deferred.push(DeferredMove {
            target: self.self_id,
            dest: dest.to_owned(),
            continuation: None,
        });
    }

    /// Like [`Ctx::move_self`], with a continuation method invoked on
    /// this complet after it arrives — the mobile-agent itinerary idiom.
    pub fn move_self_with(&mut self, dest: &str, method: &str, args: Vec<Value>) {
        self.deferred.push(DeferredMove {
            target: self.self_id,
            dest: dest.to_owned(),
            continuation: Some((method.to_owned(), args)),
        });
    }

    /// Requests relocation of another complet after this invocation.
    pub fn request_move(&mut self, target: &CompletRef, dest: &str) {
        self.deferred.push(DeferredMove {
            target: target.id(),
            dest: dest.to_owned(),
            continuation: None,
        });
    }

    /// Registers this complet as a listener for events at its own Core.
    /// Notifications arrive as `on_event(payload)` invocations and keep
    /// following the complet when it moves.
    pub fn subscribe_self(&self, selector: &str, threshold: Option<f64>, above: bool) {
        self.core
            .subscribe_complet(selector, threshold, above, self.self_ref());
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("self_id", &self.self_id)
            .field("chain", &self.chain)
            .field("deferred", &self.deferred.len())
            .finish()
    }
}
