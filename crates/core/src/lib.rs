//! # fargo-core — the FarGo-RS runtime
//!
//! A Rust reproduction of the runtime described in *"System Support for
//! Dynamic Layout of Distributed Applications"* (Holder, Ben-Shaul,
//! Gazit; ICDCS 1999): **dynamic layout** — relocating the components of
//! a distributed application among hosts *while it runs* — programmed
//! separately from application logic.
//!
//! The pieces, mirroring the paper's architecture (Figure 1):
//!
//! * [`Core`] — the stationary per-host runtime: complet repository,
//!   naming, events, monitoring, and the peer interface (over
//!   [`simnet`]).
//! * [`Complet`] — the unit of composition and relocation, defined with
//!   [`define_complet!`].
//! * [`CompletRef`] / [`BoundRef`] / [`MetaRef`] — complet references
//!   with relocation semantics ([`Relocator`]s: `link`, `pull`,
//!   `duplicate`, `stamp`, and user extensions), realised by the
//!   stub/tracker split with chain shortening.
//! * [`Monitor`] — system and application profiling (instant + continuous
//!   interfaces) feeding threshold events.
//!
//! ## Quick start
//!
//! ```
//! use fargo_core::{define_complet, Core, CompletRegistry};
//! use fargo_wire::Value;
//! use simnet::{Network, NetworkConfig};
//!
//! define_complet! {
//!     pub complet Message {
//!         state { text: String = "hello fargo".to_owned() }
//!         fn print(&mut self, _ctx, _args) {
//!             Ok(Value::from(self.text.as_str()))
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), fargo_core::FargoError> {
//! let net = Network::new(NetworkConfig::default());
//! let registry = CompletRegistry::new();
//! Message::register(&registry);
//!
//! let everest = Core::builder(&net, "everest").registry(&registry).spawn()?;
//! let acadia = Core::builder(&net, "acadia").registry(&registry).spawn()?;
//!
//! let msg = everest.new_complet("Message", &[])?;
//! msg.move_to("acadia")?; // relocate, then invoke transparently
//! assert_eq!(msg.call("print", &[])?, Value::from("hello fargo"));
//! # everest.stop(); acadia.stop();
//! # Ok(())
//! # }
//! ```

mod carrier;
mod complet;
mod config;
mod ctx;
mod error;
mod events;
mod macros;
mod monitor;
mod proto;
mod reference;
mod runtime;
mod telemetry;

pub use carrier::Carrier;
pub use complet::{Complet, CompletRegistry, StateValue};
pub use config::{CoreConfig, TrackingMode, TransportKind};
pub use ctx::Ctx;
pub use error::{FargoError, Result};
pub use events::{EventHandler, EventPayload};
pub use monitor::{Ewma, Monitor, Service};
pub use reference::{
    ArrivalAction, CompletRef, MarshalAction, MetaRef, Relocator, RelocatorRegistry,
    TrackerSnapshot, TrackerTarget,
};
pub use runtime::{
    BoundRef, Checkpoint, Core, CoreBuilder, LatencySummary, LocateReport, PendingCall,
    RecoveryReport, RemoteSubscription, ResolveVia, TickHook,
};

// Re-exported so `define_complet!` expansions and user code agree on the
// value/id types without importing `fargo-wire` separately.
pub use fargo_wire::{CompletId, RefDescriptor, Value};

pub use fargo_telemetry::{
    default_slo_rules, render_health, render_journal_json, render_matrix, render_slow_log,
    render_span_tree, AccountRecord, Anomaly, AnomalyThresholds, Clock, HealthSample, Hlc,
    JournalEvent, JournalKind, LayoutHistory, LayoutState, MatrixCell, MetricValue,
    Registry as TelemetryRegistry, RuleStatus, SloKind, SloRule, SlowRecord,
    Snapshot as MetricSnapshot, SpanRecord, TraceContext,
};
