//! The Core-to-Core peer protocol (the paper's *Peer Interface*).
//!
//! Every message is a [`Value`] tree encoded with `fargo-wire`. Requests
//! carry a correlation id minted by the origin Core; replies walk back
//! along the recorded forwarding path so every tracker on an invocation
//! chain learns the target's final location (§3.1's chain shortening).

use fargo_telemetry::{
    AccountRecord, Hlc, JournalEvent, JournalKind, MatrixCell, SpanRecord, TraceContext,
};
use fargo_wire::{decode_value, encode_value, CompletId, RefDescriptor, Value};

use crate::error::{FargoError, Result};
use crate::events::EventPayload;

/// A request's correlation id (unique per origin Core).
pub(crate) type ReqId = u64;

/// Continuation attached to a move: method + args invoked on the moved
/// complet at the destination (§3.3's call-with-continuation style).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Continuation {
    pub target: CompletId,
    pub method: String,
    pub args: Vec<Value>,
}

/// One complet inside a move stream.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CompletPacket {
    pub id: CompletId,
    pub type_name: String,
    pub state: Value,
    /// Logical names bound to this complet at the sending Core that
    /// travel with it.
    pub names: Vec<String>,
    /// Monotonic per-complet move counter, bumped by the source on every
    /// departure. Lets the two-phase handshake distinguish *this* move
    /// from any earlier or later one when resolving in-doubt outcomes.
    /// Optional on the wire (`epoch` field, default `0`), so streams from
    /// peers that never heard of epochs stay byte-compatible.
    pub epoch: u64,
}

/// Destination- or source-side view of a two-phase move transaction,
/// reported by [`Reply::MoveState`] when a peer resolves an in-doubt move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MoveTxnState {
    /// Destination: prepared and holding, awaiting commit/abort.
    Held,
    /// The transaction committed (complet installed / decision recorded).
    Committed,
    /// The transaction aborted (held state discarded / decision recorded).
    Aborted,
    /// The peer has no record of this `(root, epoch)` transaction.
    Unknown,
}

impl MoveTxnState {
    fn as_str(self) -> &'static str {
        match self {
            MoveTxnState::Held => "held",
            MoveTxnState::Committed => "committed",
            MoveTxnState::Aborted => "aborted",
            MoveTxnState::Unknown => "unknown",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "held" => MoveTxnState::Held,
            "committed" => MoveTxnState::Committed,
            "aborted" => MoveTxnState::Aborted,
            "unknown" => MoveTxnState::Unknown,
            _ => return None,
        })
    }
}

/// Where an event subscription delivers.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ListenerAddr {
    /// Deliver by invoking `on_event` on this complet (follows moves).
    Complet(RefDescriptor),
    /// Deliver to a Core-level sink registered under a token.
    Core { node: u32, token: u64 },
}

/// Request bodies.
// `MoveRequest` is named after the wire operation (a request *to move*,
// distinct from `Move`, the marshaled stream itself).
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Request {
    /// Invoke a method on a (possibly forwarded) complet.
    Invoke {
        target: CompletId,
        method: String,
        args: Vec<Value>,
        /// Complet ids already on the synchronous call chain
        /// (re-entrancy detection).
        chain: Vec<CompletId>,
        /// Node indices the request has traversed, origin first.
        path: Vec<u32>,
        hops: u32,
    },
    /// A marshaled move stream: the root complet plus all co-movers.
    /// Single-round move, kept for wire compatibility; new code uses the
    /// two-phase `MovePrepare`/`MoveCommit` handshake.
    Move {
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
    },
    /// Phase one of a two-phase move: the full marshaled stream. The
    /// destination validates, constructs and *holds* the complets —
    /// invisible and un-invocable — until it hears `MoveCommit`.
    MovePrepare {
        /// The moved root (the transaction key together with `epoch`).
        root: CompletId,
        /// The root's move epoch for this transaction.
        epoch: u64,
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
    },
    /// Phase two: activate the held complets of `(root, epoch)`.
    MoveCommit { root: CompletId, epoch: u64 },
    /// Phase two, negative: discard the held complets of `(root, epoch)`.
    MoveAbort { root: CompletId, epoch: u64 },
    /// Source → destination in-doubt probe: what became of `(root,
    /// epoch)`? Answered with [`Reply::MoveState`].
    MoveQuery { root: CompletId, epoch: u64 },
    /// Destination → source outcome probe for a held move whose commit
    /// never arrived: what did the source decide for `(root, epoch)`?
    /// Answered with [`Reply::MoveState`].
    MoveDecision { root: CompletId, epoch: u64 },
    /// Remote instantiation of a complet.
    NewComplet { type_name: String, args: Vec<Value> },
    /// Look up a logical name in the receiver's naming service.
    NameLookup { name: String },
    /// Fetch a complet's marshaled state (remote `duplicate`).
    FetchState { id: CompletId },
    /// Ask the receiver (the complet's current host) to move it.
    MoveRequest { id: CompletId, dest: u32 },
    /// Where does the receiver (a home registry) believe this complet is?
    WhereIs { id: CompletId },
    /// Where does the receiver's *location shard* believe this complet
    /// is? Asked of the complet's ring owner; answered with
    /// [`Reply::LocateOk`] carrying the entry's move epoch so the caller
    /// can rank it against its own hints.
    LocateQuery { id: CompletId },
    /// List the live entries of the receiver's location shard (the
    /// planner's one-RPC-per-Core placement read).
    ShardList,
    /// Subscribe a listener to the receiver's events.
    Subscribe {
        selector: String,
        threshold: Option<f64>,
        above: bool,
        listener: ListenerAddr,
    },
    /// Cancel a subscription previously installed with the same listener
    /// address and selector.
    Unsubscribe {
        selector: String,
        listener: ListenerAddr,
    },
    /// List the complets resident at the receiver (admin tooling).
    ListComplets,
    /// List the receiver's tracker table (reference inspection).
    ListTrackers,
    /// Collect the receiver's recorded spans for one trace id.
    TraceSpans { trace_id: u64 },
    /// Collect the receiver's journal of layout events (flight-recorder
    /// pull; merged into a global timeline by the caller).
    JournalEvents,
    /// Collect the receiver's top-`n` complets by accounted load
    /// (heavy-hitter pull; merged cluster-wide by the caller).
    TopComplets { n: u32 },
    /// Collect the receiver's outbound traffic-matrix cells.
    TrafficMatrix,
    /// Latency probe.
    Ping,
}

impl Request {
    /// Stable lowercase name of the request kind, used as the
    /// `kind` label on per-message-type metrics.
    pub(crate) fn kind_name(&self) -> &'static str {
        match self {
            Request::Invoke { .. } => "invoke",
            Request::Move { .. } => "move",
            Request::MovePrepare { .. } => "move_prep",
            Request::MoveCommit { .. } => "move_commit",
            Request::MoveAbort { .. } => "move_abort",
            Request::MoveQuery { .. } => "move_query",
            Request::MoveDecision { .. } => "move_decision",
            Request::NewComplet { .. } => "new",
            Request::NameLookup { .. } => "lookup",
            Request::FetchState { .. } => "fetch",
            Request::MoveRequest { .. } => "move_req",
            Request::WhereIs { .. } => "where",
            Request::LocateQuery { .. } => "locate",
            Request::ShardList => "shard_list",
            Request::Subscribe { .. } => "subscribe",
            Request::Unsubscribe { .. } => "unsubscribe",
            Request::ListComplets => "list",
            Request::ListTrackers => "list_trk",
            Request::TraceSpans { .. } => "trace_spans",
            Request::JournalEvents => "journal",
            Request::TopComplets { .. } => "top",
            Request::TrafficMatrix => "matrix",
            Request::Ping => "ping",
        }
    }

    /// Whether re-executing this request is observably harmless, so the
    /// receiver can skip reply-dedup for retransmitted copies. Everything
    /// that mutates layout or application state answers `false`.
    pub(crate) fn idempotent(&self) -> bool {
        matches!(
            self,
            Request::NameLookup { .. }
                | Request::FetchState { .. }
                | Request::WhereIs { .. }
                | Request::LocateQuery { .. }
                | Request::ShardList
                | Request::ListComplets
                | Request::ListTrackers
                | Request::TraceSpans { .. }
                | Request::JournalEvents
                | Request::TopComplets { .. }
                | Request::TrafficMatrix
                | Request::MoveQuery { .. }
                | Request::MoveDecision { .. }
                | Request::Ping
        )
    }

    /// Whether this request may be served directly on the receiver's
    /// dispatch loop instead of the worker pool. Strictly a subset of
    /// [`Request::idempotent`]: read-only snapshots that never invoke
    /// complet code, never block, and never issue nested rpcs — so
    /// serving them inline cannot deadlock the loop that must keep
    /// draining replies. Everything else (including reads that take the
    /// slot-state mutexes, like `FetchState`) stays on the pool.
    pub(crate) fn inline_safe(&self) -> bool {
        matches!(
            self,
            Request::NameLookup { .. }
                | Request::WhereIs { .. }
                | Request::LocateQuery { .. }
                | Request::ShardList
                | Request::ListComplets
                | Request::ListTrackers
                | Request::TraceSpans { .. }
                | Request::JournalEvents
                | Request::TopComplets { .. }
                | Request::TrafficMatrix
                | Request::Ping
        )
    }
}

/// Reply bodies.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Reply {
    InvokeOk {
        value: Value,
        /// Node index where the target actually executed — used by every
        /// tracker on the way back to shorten the chain.
        final_location: u32,
        /// The invoked complet, so intermediate Cores know whose tracker
        /// to repoint.
        target: CompletId,
        /// Move epoch of the target at the executing Core, so shortening
        /// from a delayed reply cannot repoint a tracker away from a
        /// newer location (0 = never moved; omitted on the wire).
        epoch: u64,
    },
    MoveOk {
        arrived: Vec<CompletId>,
    },
    /// The destination prepared and holds the move stream of the echoed
    /// epoch, awaiting commit or abort.
    PrepareOk {
        epoch: u64,
    },
    /// A peer's record of one move transaction (`MoveQuery` /
    /// `MoveDecision` answer).
    MoveState {
        state: MoveTxnState,
    },
    NewOk {
        desc: RefDescriptor,
    },
    NameOk {
        desc: Option<RefDescriptor>,
    },
    StateOk {
        type_name: String,
        state: Value,
    },
    WhereOk {
        node: Option<u32>,
    },
    /// A location shard's answer to [`Request::LocateQuery`]: the node
    /// the shard believes hosts the complet (`None` = no entry or a
    /// tombstone) and the move epoch of that belief (0 = never moved;
    /// omitted on the wire).
    LocateOk {
        node: Option<u32>,
        epoch: u64,
    },
    /// The replying Core's live location-shard entries:
    /// `(complet, node, epoch)`.
    ShardEntries {
        entries: Vec<(CompletId, u32, u64)>,
    },
    /// Complets resident at the replying Core: `(id, type_name)`.
    Complets {
        items: Vec<(CompletId, String)>,
    },
    /// The replying Core's trackers: `(target, forward-to node if any,
    /// hits)`; `None` forward means the target is local there.
    Trackers {
        items: Vec<(CompletId, Option<u32>, u64)>,
    },
    /// Spans recorded at the replying Core for a requested trace id.
    Spans {
        spans: Vec<SpanRecord>,
    },
    /// The replying Core's retained journal events.
    Journal {
        events: Vec<JournalEvent>,
    },
    /// The replying Core's heaviest complets by accounted load.
    TopComplets {
        rows: Vec<AccountRecord>,
    },
    /// The replying Core's outbound traffic-matrix cells.
    Matrix {
        cells: Vec<MatrixCell>,
    },
    Ok,
    Pong,
    Err(FargoError),
}

/// One-way notifications (no reply expected).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Notify {
    /// A complet now lives at `now_at` (home-registry update, and direct
    /// tracker refresh after moves). `epoch` is the move epoch that put
    /// it there, so delayed updates cannot regress the registry
    /// (0 = never moved; omitted on the wire).
    LocationUpdate {
        target: CompletId,
        now_at: u32,
        epoch: u64,
    },
    /// An event fired at a remote Core this Core subscribed to.
    Event { token: u64, payload: EventPayload },
    /// A batch of location-shard deltas gossiped to the owning shard (or
    /// anti-entropy peers): `(complet, node, epoch, alive)`. `alive =
    /// false` is a tombstone (the complet was released).
    ShardDelta {
        entries: Vec<(CompletId, u32, u64, bool)>,
    },
    /// The sending Core is about to shut down.
    CoreShutdown { node: u32 },
}

/// The full message envelope.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Message {
    Request {
        req_id: ReqId,
        /// Node index of the Core awaiting the reply.
        origin: u32,
        /// Trace context propagated from the caller, if the operation is
        /// being traced. Optional on the wire (`tr` field), so envelopes
        /// from untraced callers stay byte-compatible.
        trace: Option<TraceContext>,
        body: Request,
    },
    Reply {
        req_id: ReqId,
        /// Remaining nodes the reply must traverse, ending at the origin.
        route: Vec<u32>,
        body: Reply,
    },
    Notify(Notify),
}

// --- encoding helpers ----------------------------------------------------

fn id_to_value(id: CompletId) -> Value {
    Value::list([Value::from(id.origin), Value::I64(id.seq as i64)])
}

fn id_from_value(v: &Value) -> Result<CompletId> {
    let origin = v
        .index(0)
        .and_then(Value::as_i64)
        .ok_or_else(|| FargoError::Protocol("bad complet id".into()))?;
    let seq = v
        .index(1)
        .and_then(Value::as_i64)
        .ok_or_else(|| FargoError::Protocol("bad complet id".into()))?;
    Ok(CompletId::new(origin as u32, seq as u64))
}

fn ids_to_value(ids: &[CompletId]) -> Value {
    Value::List(ids.iter().map(|&i| id_to_value(i)).collect())
}

fn ids_from_value(v: &Value) -> Result<Vec<CompletId>> {
    v.as_list()
        .ok_or_else(|| FargoError::Protocol("bad id list".into()))?
        .iter()
        .map(id_from_value)
        .collect()
}

fn nodes_to_value(nodes: &[u32]) -> Value {
    Value::List(nodes.iter().map(|&n| Value::from(n)).collect())
}

fn nodes_from_value(v: &Value) -> Result<Vec<u32>> {
    v.as_list()
        .ok_or_else(|| FargoError::Protocol("bad node list".into()))?
        .iter()
        .map(|n| {
            n.as_i64()
                .map(|x| x as u32)
                .ok_or_else(|| FargoError::Protocol("bad node index".into()))
        })
        .collect()
}

fn str_field(v: &Value, key: &str) -> Result<String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| FargoError::Protocol(format!("missing string field {key:?}")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64> {
    v.get(key)
        .and_then(Value::as_i64)
        .map(|x| x as u64)
        .ok_or_else(|| FargoError::Protocol(format!("missing int field {key:?}")))
}

fn value_field(v: &Value, key: &str) -> Result<Value> {
    v.get(key)
        .cloned()
        .ok_or_else(|| FargoError::Protocol(format!("missing field {key:?}")))
}

fn list_field(v: &Value, key: &str) -> Result<Vec<Value>> {
    match v.get(key) {
        Some(Value::List(items)) => Ok(items.clone()),
        _ => Err(FargoError::Protocol(format!("missing list field {key:?}"))),
    }
}

fn ref_to_value(d: &RefDescriptor) -> Value {
    Value::Ref(d.clone())
}

fn ref_from_value(v: &Value) -> Result<RefDescriptor> {
    v.as_ref_desc()
        .cloned()
        .ok_or_else(|| FargoError::Protocol("expected ref descriptor".into()))
}

/// Errors cross the wire as `(code, detail)`; unrecognised codes decode to
/// [`FargoError::App`] so peers never fail to decode an error reply.
fn error_to_value(e: &FargoError) -> Value {
    let (code, detail) = match e {
        FargoError::UnknownComplet(id) => ("unknown_complet", id.to_string()),
        FargoError::UnknownType(t) => ("unknown_type", t.clone()),
        FargoError::NoSuchMethod {
            complet_type,
            method,
        } => ("no_such_method", format!("{complet_type}/{method}")),
        FargoError::App(m) => ("app", m.clone()),
        FargoError::ReentrantInvocation(id) => ("reentrant", id.to_string()),
        FargoError::Timeout => ("timeout", String::new()),
        FargoError::NameNotBound(n) => ("name_not_bound", n.clone()),
        FargoError::StampUnresolved(t) => ("stamp_unresolved", t.clone()),
        FargoError::AlreadyMoving(id) => ("already_moving", id.to_string()),
        FargoError::UnknownRelocator(n) => ("unknown_relocator", n.clone()),
        FargoError::HopLimit(n) => ("hop_limit", n.to_string()),
        FargoError::ShuttingDown => ("shutting_down", String::new()),
        FargoError::CapacityExceeded { core, capacity } => {
            ("capacity", format!("{core}/{capacity}"))
        }
        FargoError::MoveInDoubt(id) => ("move_indoubt", id.to_string()),
        other => ("app", other.to_string()),
    };
    Value::map([("code", Value::from(code)), ("detail", Value::from(detail))])
}

fn error_from_value(v: &Value) -> Result<FargoError> {
    let code = str_field(v, "code")?;
    let detail = str_field(v, "detail")?;
    Ok(match code.as_str() {
        "unknown_type" => FargoError::UnknownType(detail),
        "no_such_method" => {
            let (t, m) = detail.split_once('/').unwrap_or((detail.as_str(), ""));
            FargoError::NoSuchMethod {
                complet_type: t.to_owned(),
                method: m.to_owned(),
            }
        }
        "timeout" => FargoError::Timeout,
        "name_not_bound" => FargoError::NameNotBound(detail),
        "stamp_unresolved" => FargoError::StampUnresolved(detail),
        "unknown_relocator" => FargoError::UnknownRelocator(detail),
        "shutting_down" => FargoError::ShuttingDown,
        "capacity" => {
            let (core, cap) = detail.rsplit_once('/').unwrap_or((detail.as_str(), "0"));
            FargoError::CapacityExceeded {
                core: core.to_owned(),
                capacity: cap.parse().unwrap_or(0),
            }
        }
        "hop_limit" => FargoError::HopLimit(detail.parse().unwrap_or(0)),
        // Complet ids inside error details are informational; decode as App
        // if unparsable rather than failing the whole reply.
        "unknown_complet" | "reentrant" | "already_moving" | "move_indoubt" => {
            match parse_id(&detail) {
                Some(id) if code == "unknown_complet" => FargoError::UnknownComplet(id),
                Some(id) if code == "reentrant" => FargoError::ReentrantInvocation(id),
                Some(id) if code == "move_indoubt" => FargoError::MoveInDoubt(id),
                Some(id) => FargoError::AlreadyMoving(id),
                None => FargoError::App(format!("{code}: {detail}")),
            }
        }
        _ => FargoError::App(detail),
    })
}

fn parse_id(s: &str) -> Option<CompletId> {
    let rest = s.strip_prefix('c')?;
    let (origin, seq) = rest.split_once('.')?;
    Some(CompletId::new(origin.parse().ok()?, seq.parse().ok()?))
}

/// Spans cross the wire as flat 7-element lists:
/// `[trace, span, parent, name, core, start_us, duration_us]`.
fn span_to_value(s: &SpanRecord) -> Value {
    Value::list([
        Value::I64(s.trace_id as i64),
        Value::I64(s.span_id as i64),
        Value::I64(s.parent_id as i64),
        Value::from(s.name.as_str()),
        Value::from(s.core.as_str()),
        Value::I64(s.start_us as i64),
        Value::I64(s.duration_us as i64),
    ])
}

fn span_from_value(v: &Value) -> Result<SpanRecord> {
    let int = |i: usize| -> Result<u64> {
        v.index(i)
            .and_then(Value::as_i64)
            .map(|x| x as u64)
            .ok_or_else(|| FargoError::Protocol("bad span field".into()))
    };
    let text = |i: usize| -> Result<String> {
        v.index(i)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| FargoError::Protocol("bad span field".into()))
    };
    Ok(SpanRecord {
        trace_id: int(0)?,
        span_id: int(1)?,
        parent_id: int(2)?,
        name: text(3)?,
        core: text(4)?,
        start_us: int(5)?,
        duration_us: int(6)?,
    })
}

/// Journal events cross the wire as flat 9-element lists:
/// `[wall_us, logical, core, seq, kind, subject, object, detail, peer]`
/// (`peer` is `-1` when absent).
fn journal_event_to_value(e: &JournalEvent) -> Value {
    Value::list([
        Value::I64(e.hlc.wall_us as i64),
        Value::I64(i64::from(e.hlc.logical)),
        Value::from(e.core),
        Value::I64(e.seq as i64),
        Value::from(e.kind.as_str()),
        Value::from(e.subject.as_str()),
        Value::from(e.object.as_str()),
        Value::from(e.detail.as_str()),
        Value::I64(e.peer.map_or(-1, i64::from)),
    ])
}

/// Account records cross the wire as flat 8-element lists:
/// `[origin, seq, invokes, exec_us, bytes_in, bytes_out, load, err]`.
fn account_to_value(r: &AccountRecord) -> Value {
    Value::list([
        Value::from(r.key.0),
        Value::I64(r.key.1 as i64),
        Value::I64(r.invokes as i64),
        Value::I64(r.exec_us as i64),
        Value::I64(r.bytes_in as i64),
        Value::I64(r.bytes_out as i64),
        Value::I64(r.load as i64),
        Value::I64(r.err as i64),
    ])
}

fn account_from_value(v: &Value) -> Result<AccountRecord> {
    let int = |i: usize| -> Result<u64> {
        v.index(i)
            .and_then(Value::as_i64)
            .map(|x| x as u64)
            .ok_or_else(|| FargoError::Protocol("bad account field".into()))
    };
    Ok(AccountRecord {
        key: (int(0)? as u32, int(1)?),
        invokes: int(2)?,
        exec_us: int(3)?,
        bytes_in: int(4)?,
        bytes_out: int(5)?,
        load: int(6)?,
        err: int(7)?,
    })
}

/// Matrix cells cross the wire as flat 4-element lists:
/// `[src, dst, msgs, bytes]`.
fn matrix_cell_to_value(c: &MatrixCell) -> Value {
    Value::list([
        Value::from(c.src.as_str()),
        Value::from(c.dst.as_str()),
        Value::I64(c.msgs as i64),
        Value::I64(c.bytes as i64),
    ])
}

fn matrix_cell_from_value(v: &Value) -> Result<MatrixCell> {
    let text = |i: usize| -> Result<String> {
        v.index(i)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| FargoError::Protocol("bad matrix field".into()))
    };
    let int = |i: usize| -> Result<u64> {
        v.index(i)
            .and_then(Value::as_i64)
            .map(|x| x as u64)
            .ok_or_else(|| FargoError::Protocol("bad matrix field".into()))
    };
    Ok(MatrixCell {
        src: text(0)?,
        dst: text(1)?,
        msgs: int(2)?,
        bytes: int(3)?,
    })
}

/// Shard deltas cross the wire as flat 4-element lists:
/// `[id, node, epoch, alive]`.
fn shard_delta_to_value(d: &(CompletId, u32, u64, bool)) -> Value {
    Value::list([
        id_to_value(d.0),
        Value::from(d.1),
        Value::I64(d.2 as i64),
        Value::from(d.3),
    ])
}

fn shard_delta_from_value(v: &Value) -> Result<(CompletId, u32, u64, bool)> {
    let id = id_from_value(
        v.index(0)
            .ok_or_else(|| FargoError::Protocol("bad shard delta".into()))?,
    )?;
    let node = v
        .index(1)
        .and_then(Value::as_i64)
        .ok_or_else(|| FargoError::Protocol("bad shard delta node".into()))? as u32;
    let epoch =
        v.index(2)
            .and_then(Value::as_i64)
            .ok_or_else(|| FargoError::Protocol("bad shard delta epoch".into()))? as u64;
    let alive = v
        .index(3)
        .and_then(Value::as_bool)
        .ok_or_else(|| FargoError::Protocol("bad shard delta alive".into()))?;
    Ok((id, node, epoch, alive))
}

fn journal_event_from_value(v: &Value) -> Result<JournalEvent> {
    let int = |i: usize| -> Result<i64> {
        v.index(i)
            .and_then(Value::as_i64)
            .ok_or_else(|| FargoError::Protocol("bad journal field".into()))
    };
    let text = |i: usize| -> Result<String> {
        v.index(i)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| FargoError::Protocol("bad journal field".into()))
    };
    let kind_name = text(4)?;
    let kind = JournalKind::parse(&kind_name)
        .ok_or_else(|| FargoError::Protocol(format!("unknown journal kind {kind_name:?}")))?;
    let peer = int(8)?;
    Ok(JournalEvent {
        hlc: Hlc {
            wall_us: int(0)? as u64,
            logical: int(1)? as u32,
        },
        core: int(2)? as u32,
        seq: int(3)? as u64,
        kind,
        subject: text(5)?,
        object: text(6)?,
        detail: text(7)?,
        peer: (peer >= 0).then_some(peer as u32),
    })
}

fn listener_to_value(l: &ListenerAddr) -> Value {
    match l {
        ListenerAddr::Complet(d) => Value::map([("complet", ref_to_value(d))]),
        ListenerAddr::Core { node, token } => Value::map([
            ("node", Value::from(*node)),
            ("token", Value::I64(*token as i64)),
        ]),
    }
}

fn listener_from_value(v: &Value) -> Result<ListenerAddr> {
    if let Some(r) = v.get("complet") {
        return Ok(ListenerAddr::Complet(ref_from_value(r)?));
    }
    Ok(ListenerAddr::Core {
        node: u64_field(v, "node")? as u32,
        token: u64_field(v, "token")?,
    })
}

fn packet_to_value(p: &CompletPacket) -> Value {
    let mut m = Value::map([
        ("id", id_to_value(p.id)),
        ("type", Value::from(p.type_name.as_str())),
        ("state", p.state.clone()),
        (
            "names",
            Value::List(p.names.iter().map(|n| Value::from(n.as_str())).collect()),
        ),
    ]);
    // Only stamped when non-zero, keeping epoch-less packets byte-identical
    // to the pre-epoch wire format.
    if p.epoch != 0 {
        m.insert("epoch", Value::I64(p.epoch as i64));
    }
    m
}

fn packet_from_value(v: &Value) -> Result<CompletPacket> {
    let names = list_field(v, "names")?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_owned)
                .ok_or_else(|| FargoError::Protocol("bad name".into()))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CompletPacket {
        id: id_from_value(&value_field(v, "id")?)?,
        type_name: str_field(v, "type")?,
        state: value_field(v, "state")?,
        names,
        epoch: v
            .get("epoch")
            .and_then(Value::as_i64)
            .map_or(0, |e| e as u64),
    })
}

/// Shared encoding of a move stream's continuation (`cont` field).
fn insert_continuation(m: &mut Value, continuation: &Option<Continuation>) {
    if let Some(c) = continuation {
        m.insert(
            "cont",
            Value::map([
                ("target", id_to_value(c.target)),
                ("method", Value::from(c.method.as_str())),
                ("args", Value::List(c.args.clone())),
            ]),
        );
    }
}

fn continuation_from_value(v: &Value) -> Result<Option<Continuation>> {
    match v.get("cont") {
        Some(c) => Ok(Some(Continuation {
            target: id_from_value(&value_field(c, "target")?)?,
            method: str_field(c, "method")?,
            args: list_field(c, "args")?,
        })),
        None => Ok(None),
    }
}

fn packets_from_value(v: &Value) -> Result<Vec<CompletPacket>> {
    list_field(v, "packets")?
        .iter()
        .map(packet_from_value)
        .collect()
}

impl Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Invoke {
                target,
                method,
                args,
                chain,
                path,
                hops,
            } => Value::map([
                ("kind", Value::from("invoke")),
                ("target", id_to_value(*target)),
                ("method", Value::from(method.as_str())),
                ("args", Value::List(args.clone())),
                ("chain", ids_to_value(chain)),
                ("path", nodes_to_value(path)),
                ("hops", Value::from(*hops)),
            ]),
            Request::Move {
                packets,
                continuation,
            } => {
                let mut m = Value::map([
                    ("kind", Value::from("move")),
                    (
                        "packets",
                        Value::List(packets.iter().map(packet_to_value).collect()),
                    ),
                ]);
                insert_continuation(&mut m, continuation);
                m
            }
            Request::MovePrepare {
                root,
                epoch,
                packets,
                continuation,
            } => {
                let mut m = Value::map([
                    ("kind", Value::from("move_prep")),
                    ("root", id_to_value(*root)),
                    ("epoch", Value::I64(*epoch as i64)),
                    (
                        "packets",
                        Value::List(packets.iter().map(packet_to_value).collect()),
                    ),
                ]);
                insert_continuation(&mut m, continuation);
                m
            }
            Request::MoveCommit { root, epoch } => Value::map([
                ("kind", Value::from("move_commit")),
                ("root", id_to_value(*root)),
                ("epoch", Value::I64(*epoch as i64)),
            ]),
            Request::MoveAbort { root, epoch } => Value::map([
                ("kind", Value::from("move_abort")),
                ("root", id_to_value(*root)),
                ("epoch", Value::I64(*epoch as i64)),
            ]),
            Request::MoveQuery { root, epoch } => Value::map([
                ("kind", Value::from("move_query")),
                ("root", id_to_value(*root)),
                ("epoch", Value::I64(*epoch as i64)),
            ]),
            Request::MoveDecision { root, epoch } => Value::map([
                ("kind", Value::from("move_decision")),
                ("root", id_to_value(*root)),
                ("epoch", Value::I64(*epoch as i64)),
            ]),
            Request::NewComplet { type_name, args } => Value::map([
                ("kind", Value::from("new")),
                ("type", Value::from(type_name.as_str())),
                ("args", Value::List(args.clone())),
            ]),
            Request::NameLookup { name } => Value::map([
                ("kind", Value::from("lookup")),
                ("name", Value::from(name.as_str())),
            ]),
            Request::FetchState { id } => {
                Value::map([("kind", Value::from("fetch")), ("id", id_to_value(*id))])
            }
            Request::MoveRequest { id, dest } => Value::map([
                ("kind", Value::from("move_req")),
                ("id", id_to_value(*id)),
                ("dest", Value::from(*dest)),
            ]),
            Request::WhereIs { id } => {
                Value::map([("kind", Value::from("where")), ("id", id_to_value(*id))])
            }
            Request::LocateQuery { id } => {
                Value::map([("kind", Value::from("locate")), ("id", id_to_value(*id))])
            }
            Request::ShardList => Value::map([("kind", Value::from("shard_list"))]),
            Request::Subscribe {
                selector,
                threshold,
                above,
                listener,
            } => Value::map([
                ("kind", Value::from("subscribe")),
                ("selector", Value::from(selector.as_str())),
                ("threshold", Value::from(*threshold)),
                ("above", Value::from(*above)),
                ("listener", listener_to_value(listener)),
            ]),
            Request::Unsubscribe { selector, listener } => Value::map([
                ("kind", Value::from("unsubscribe")),
                ("selector", Value::from(selector.as_str())),
                ("listener", listener_to_value(listener)),
            ]),
            Request::ListComplets => Value::map([("kind", Value::from("list"))]),
            Request::ListTrackers => Value::map([("kind", Value::from("list_trk"))]),
            Request::TraceSpans { trace_id } => Value::map([
                ("kind", Value::from("trace_spans")),
                ("trace", Value::I64(*trace_id as i64)),
            ]),
            Request::JournalEvents => Value::map([("kind", Value::from("journal"))]),
            Request::TopComplets { n } => Value::map([
                ("kind", Value::from("top")),
                ("n", Value::I64(i64::from(*n))),
            ]),
            Request::TrafficMatrix => Value::map([("kind", Value::from("matrix"))]),
            Request::Ping => Value::map([("kind", Value::from("ping"))]),
        }
    }

    fn from_value(v: &Value) -> Result<Request> {
        match str_field(v, "kind")?.as_str() {
            "invoke" => Ok(Request::Invoke {
                target: id_from_value(&value_field(v, "target")?)?,
                method: str_field(v, "method")?,
                args: list_field(v, "args")?,
                chain: ids_from_value(&value_field(v, "chain")?)?,
                path: nodes_from_value(&value_field(v, "path")?)?,
                hops: u64_field(v, "hops")? as u32,
            }),
            "move" => Ok(Request::Move {
                packets: packets_from_value(v)?,
                continuation: continuation_from_value(v)?,
            }),
            "move_prep" => Ok(Request::MovePrepare {
                root: id_from_value(&value_field(v, "root")?)?,
                epoch: u64_field(v, "epoch")?,
                packets: packets_from_value(v)?,
                continuation: continuation_from_value(v)?,
            }),
            "move_commit" => Ok(Request::MoveCommit {
                root: id_from_value(&value_field(v, "root")?)?,
                epoch: u64_field(v, "epoch")?,
            }),
            "move_abort" => Ok(Request::MoveAbort {
                root: id_from_value(&value_field(v, "root")?)?,
                epoch: u64_field(v, "epoch")?,
            }),
            "move_query" => Ok(Request::MoveQuery {
                root: id_from_value(&value_field(v, "root")?)?,
                epoch: u64_field(v, "epoch")?,
            }),
            "move_decision" => Ok(Request::MoveDecision {
                root: id_from_value(&value_field(v, "root")?)?,
                epoch: u64_field(v, "epoch")?,
            }),
            "new" => Ok(Request::NewComplet {
                type_name: str_field(v, "type")?,
                args: list_field(v, "args")?,
            }),
            "lookup" => Ok(Request::NameLookup {
                name: str_field(v, "name")?,
            }),
            "fetch" => Ok(Request::FetchState {
                id: id_from_value(&value_field(v, "id")?)?,
            }),
            "move_req" => Ok(Request::MoveRequest {
                id: id_from_value(&value_field(v, "id")?)?,
                dest: u64_field(v, "dest")? as u32,
            }),
            "where" => Ok(Request::WhereIs {
                id: id_from_value(&value_field(v, "id")?)?,
            }),
            "locate" => Ok(Request::LocateQuery {
                id: id_from_value(&value_field(v, "id")?)?,
            }),
            "shard_list" => Ok(Request::ShardList),
            "subscribe" => Ok(Request::Subscribe {
                selector: str_field(v, "selector")?,
                threshold: v.get("threshold").and_then(Value::as_f64),
                above: v.get("above").and_then(Value::as_bool).unwrap_or(true),
                listener: listener_from_value(&value_field(v, "listener")?)?,
            }),
            "unsubscribe" => Ok(Request::Unsubscribe {
                selector: str_field(v, "selector")?,
                listener: listener_from_value(&value_field(v, "listener")?)?,
            }),
            "list" => Ok(Request::ListComplets),
            "list_trk" => Ok(Request::ListTrackers),
            "trace_spans" => Ok(Request::TraceSpans {
                trace_id: u64_field(v, "trace")?,
            }),
            "journal" => Ok(Request::JournalEvents),
            "top" => Ok(Request::TopComplets {
                n: u64_field(v, "n")? as u32,
            }),
            "matrix" => Ok(Request::TrafficMatrix),
            "ping" => Ok(Request::Ping),
            other => Err(FargoError::Protocol(format!(
                "unknown request kind {other:?}"
            ))),
        }
    }
}

impl Reply {
    fn to_value(&self) -> Value {
        match self {
            Reply::InvokeOk {
                value,
                final_location,
                target,
                epoch,
            } => {
                let mut m = Value::map([
                    ("kind", Value::from("invoke_ok")),
                    ("value", value.clone()),
                    ("loc", Value::from(*final_location)),
                    ("target", id_to_value(*target)),
                ]);
                // Only stamped when non-zero, keeping replies for
                // never-moved complets byte-identical to the pre-epoch
                // wire format.
                if *epoch != 0 {
                    m.insert("epoch", Value::I64(*epoch as i64));
                }
                m
            }
            Reply::MoveOk { arrived } => Value::map([
                ("kind", Value::from("move_ok")),
                ("arrived", ids_to_value(arrived)),
            ]),
            Reply::PrepareOk { epoch } => Value::map([
                ("kind", Value::from("prep_ok")),
                ("epoch", Value::I64(*epoch as i64)),
            ]),
            Reply::MoveState { state } => Value::map([
                ("kind", Value::from("move_state")),
                ("state", Value::from(state.as_str())),
            ]),
            Reply::NewOk { desc } => Value::map([
                ("kind", Value::from("new_ok")),
                ("desc", ref_to_value(desc)),
            ]),
            Reply::NameOk { desc } => {
                let mut m = Value::map([("kind", Value::from("name_ok"))]);
                if let Some(d) = desc {
                    m.insert("desc", ref_to_value(d));
                }
                m
            }
            Reply::StateOk { type_name, state } => Value::map([
                ("kind", Value::from("state_ok")),
                ("type", Value::from(type_name.as_str())),
                ("state", state.clone()),
            ]),
            Reply::WhereOk { node } => Value::map([
                ("kind", Value::from("where_ok")),
                ("node", Value::from(node.map(i64::from))),
            ]),
            Reply::LocateOk { node, epoch } => {
                let mut m = Value::map([
                    ("kind", Value::from("locate_ok")),
                    ("node", Value::from(node.map(i64::from))),
                ]);
                // Non-zero only, as for `Reply::InvokeOk::epoch`.
                if *epoch != 0 {
                    m.insert("epoch", Value::I64(*epoch as i64));
                }
                m
            }
            Reply::ShardEntries { entries } => Value::map([
                ("kind", Value::from("shard_entries")),
                (
                    "entries",
                    Value::List(
                        entries
                            .iter()
                            .map(|(id, node, epoch)| {
                                Value::list([
                                    id_to_value(*id),
                                    Value::from(*node),
                                    Value::I64(*epoch as i64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Reply::Complets { items } => Value::map([
                ("kind", Value::from("complets")),
                (
                    "items",
                    Value::List(
                        items
                            .iter()
                            .map(|(id, t)| Value::list([id_to_value(*id), Value::from(t.as_str())]))
                            .collect(),
                    ),
                ),
            ]),
            Reply::Trackers { items } => Value::map([
                ("kind", Value::from("trackers")),
                (
                    "items",
                    Value::List(
                        items
                            .iter()
                            .map(|(id, fwd, hits)| {
                                Value::list([
                                    id_to_value(*id),
                                    Value::from(fwd.map(i64::from)),
                                    Value::I64(*hits as i64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Reply::Spans { spans } => Value::map([
                ("kind", Value::from("spans")),
                (
                    "spans",
                    Value::List(spans.iter().map(span_to_value).collect()),
                ),
            ]),
            Reply::Journal { events } => Value::map([
                ("kind", Value::from("journal")),
                (
                    "events",
                    Value::List(events.iter().map(journal_event_to_value).collect()),
                ),
            ]),
            Reply::TopComplets { rows } => Value::map([
                ("kind", Value::from("top")),
                (
                    "rows",
                    Value::List(rows.iter().map(account_to_value).collect()),
                ),
            ]),
            Reply::Matrix { cells } => Value::map([
                ("kind", Value::from("matrix")),
                (
                    "cells",
                    Value::List(cells.iter().map(matrix_cell_to_value).collect()),
                ),
            ]),
            Reply::Ok => Value::map([("kind", Value::from("ok"))]),
            Reply::Pong => Value::map([("kind", Value::from("pong"))]),
            Reply::Err(e) => {
                Value::map([("kind", Value::from("err")), ("error", error_to_value(e))])
            }
        }
    }

    fn from_value(v: &Value) -> Result<Reply> {
        match str_field(v, "kind")?.as_str() {
            "invoke_ok" => Ok(Reply::InvokeOk {
                value: value_field(v, "value")?,
                final_location: u64_field(v, "loc")? as u32,
                target: id_from_value(&value_field(v, "target")?)?,
                epoch: v
                    .get("epoch")
                    .and_then(Value::as_i64)
                    .map_or(0, |e| e as u64),
            }),
            "move_ok" => Ok(Reply::MoveOk {
                arrived: ids_from_value(&value_field(v, "arrived")?)?,
            }),
            "prep_ok" => Ok(Reply::PrepareOk {
                epoch: u64_field(v, "epoch")?,
            }),
            "move_state" => {
                let s = str_field(v, "state")?;
                Ok(Reply::MoveState {
                    state: MoveTxnState::parse(&s)
                        .ok_or_else(|| FargoError::Protocol(format!("unknown move state {s:?}")))?,
                })
            }
            "new_ok" => Ok(Reply::NewOk {
                desc: ref_from_value(&value_field(v, "desc")?)?,
            }),
            "name_ok" => Ok(Reply::NameOk {
                desc: match v.get("desc") {
                    Some(d) => Some(ref_from_value(d)?),
                    None => None,
                },
            }),
            "state_ok" => Ok(Reply::StateOk {
                type_name: str_field(v, "type")?,
                state: value_field(v, "state")?,
            }),
            "where_ok" => Ok(Reply::WhereOk {
                node: v.get("node").and_then(Value::as_i64).map(|n| n as u32),
            }),
            "locate_ok" => Ok(Reply::LocateOk {
                node: v.get("node").and_then(Value::as_i64).map(|n| n as u32),
                epoch: v
                    .get("epoch")
                    .and_then(Value::as_i64)
                    .map_or(0, |e| e as u64),
            }),
            "shard_entries" => {
                let entries =
                    list_field(v, "entries")?
                        .iter()
                        .map(|item| {
                            let id =
                                id_from_value(item.index(0).ok_or_else(|| {
                                    FargoError::Protocol("bad shard entry".into())
                                })?)?;
                            let node = item.index(1).and_then(Value::as_i64).ok_or_else(|| {
                                FargoError::Protocol("bad shard entry node".into())
                            })? as u32;
                            let epoch = item.index(2).and_then(Value::as_i64).ok_or_else(|| {
                                FargoError::Protocol("bad shard entry epoch".into())
                            })? as u64;
                            Ok((id, node, epoch))
                        })
                        .collect::<Result<Vec<_>>>()?;
                Ok(Reply::ShardEntries { entries })
            }
            "complets" => {
                let items = list_field(v, "items")?
                    .iter()
                    .map(|item| {
                        let id = id_from_value(
                            item.index(0)
                                .ok_or_else(|| FargoError::Protocol("bad item".into()))?,
                        )?;
                        let t = item
                            .index(1)
                            .and_then(Value::as_str)
                            .ok_or_else(|| FargoError::Protocol("bad item type".into()))?;
                        Ok((id, t.to_owned()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Reply::Complets { items })
            }
            "trackers" => {
                let items = list_field(v, "items")?
                    .iter()
                    .map(|item| {
                        let id = id_from_value(
                            item.index(0)
                                .ok_or_else(|| FargoError::Protocol("bad tracker".into()))?,
                        )?;
                        let fwd = item.index(1).and_then(Value::as_i64).map(|n| n as u32);
                        let hits = item
                            .index(2)
                            .and_then(Value::as_i64)
                            .ok_or_else(|| FargoError::Protocol("bad tracker hits".into()))?
                            as u64;
                        Ok((id, fwd, hits))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Reply::Trackers { items })
            }
            "spans" => Ok(Reply::Spans {
                spans: list_field(v, "spans")?
                    .iter()
                    .map(span_from_value)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "journal" => Ok(Reply::Journal {
                events: list_field(v, "events")?
                    .iter()
                    .map(journal_event_from_value)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "top" => Ok(Reply::TopComplets {
                rows: list_field(v, "rows")?
                    .iter()
                    .map(account_from_value)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "matrix" => Ok(Reply::Matrix {
                cells: list_field(v, "cells")?
                    .iter()
                    .map(matrix_cell_from_value)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "ok" => Ok(Reply::Ok),
            "pong" => Ok(Reply::Pong),
            "err" => Ok(Reply::Err(error_from_value(&value_field(v, "error")?)?)),
            other => Err(FargoError::Protocol(format!(
                "unknown reply kind {other:?}"
            ))),
        }
    }
}

impl Notify {
    fn to_value(&self) -> Value {
        match self {
            Notify::LocationUpdate {
                target,
                now_at,
                epoch,
            } => {
                let mut m = Value::map([
                    ("kind", Value::from("loc")),
                    ("target", id_to_value(*target)),
                    ("at", Value::from(*now_at)),
                ]);
                // Non-zero only, as for `CompletPacket::epoch`.
                if *epoch != 0 {
                    m.insert("epoch", Value::I64(*epoch as i64));
                }
                m
            }
            Notify::Event { token, payload } => Value::map([
                ("kind", Value::from("event")),
                ("token", Value::I64(*token as i64)),
                ("payload", payload.to_value()),
            ]),
            Notify::ShardDelta { entries } => Value::map([
                ("kind", Value::from("shard_delta")),
                (
                    "entries",
                    Value::List(entries.iter().map(shard_delta_to_value).collect()),
                ),
            ]),
            Notify::CoreShutdown { node } => Value::map([
                ("kind", Value::from("shutdown")),
                ("node", Value::from(*node)),
            ]),
        }
    }

    fn from_value(v: &Value) -> Result<Notify> {
        match str_field(v, "kind")?.as_str() {
            "loc" => Ok(Notify::LocationUpdate {
                target: id_from_value(&value_field(v, "target")?)?,
                now_at: u64_field(v, "at")? as u32,
                epoch: v
                    .get("epoch")
                    .and_then(Value::as_i64)
                    .map_or(0, |e| e as u64),
            }),
            "event" => Ok(Notify::Event {
                token: u64_field(v, "token")?,
                payload: EventPayload::from_value(&value_field(v, "payload")?)?,
            }),
            "shard_delta" => Ok(Notify::ShardDelta {
                entries: list_field(v, "entries")?
                    .iter()
                    .map(shard_delta_from_value)
                    .collect::<Result<Vec<_>>>()?,
            }),
            "shutdown" => Ok(Notify::CoreShutdown {
                node: u64_field(v, "node")? as u32,
            }),
            other => Err(FargoError::Protocol(format!(
                "unknown notify kind {other:?}"
            ))),
        }
    }
}

impl Message {
    /// Stable lowercase label for per-message-type metrics: the request
    /// kind for requests, `reply` / `notify` otherwise.
    pub(crate) fn kind_label(&self) -> &'static str {
        match self {
            Message::Request { body, .. } => body.kind_name(),
            Message::Reply { .. } => "reply",
            Message::Notify(_) => "notify",
        }
    }

    /// Encodes the message without an envelope HLC (the runtime send path
    /// always goes through [`Message::encode_with_hlc`]; this form pins
    /// down the unstamped wire shape).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn encode(&self) -> bytes::Bytes {
        self.encode_with_hlc(None)
    }

    /// Encodes the message, piggybacking the sender's hybrid logical
    /// clock on the envelope (optional `hlc` field, like the `tr` trace
    /// field) so receivers can merge it and keep the journal's global
    /// timeline causally consistent. Envelopes without the field stay
    /// byte-compatible with peers that never heard of HLCs.
    pub fn encode_with_hlc(&self, hlc: Option<Hlc>) -> bytes::Bytes {
        self.encode_with_meta(hlc, None)
    }

    /// Encodes the message with the full set of optional envelope
    /// metadata: the HLC (see [`Message::encode_with_hlc`]) and the
    /// sender's shared-clock send timestamp in µs (optional `ts` field),
    /// from which the receiver measures one-way network latency for the
    /// per-phase histograms and the layout cost model. Both fields are
    /// omitted entirely when `None`, so envelopes stay byte-compatible
    /// with peers (and configurations) that never stamp them.
    pub fn encode_with_meta(&self, hlc: Option<Hlc>, ts: Option<u64>) -> bytes::Bytes {
        self.encode_with_meta_nd(hlc, ts, &[])
    }

    /// Encodes the message with the optional envelope metadata plus a
    /// batch of piggybacked location-shard deltas (`nd` field, flat
    /// `[id, node, epoch, alive]` lists). Gossip rides whatever traffic
    /// is already flowing between two Cores; an empty batch omits the
    /// field entirely, so delta-free envelopes stay byte-compatible.
    pub fn encode_with_meta_nd(
        &self,
        hlc: Option<Hlc>,
        ts: Option<u64>,
        nd: &[(CompletId, u32, u64, bool)],
    ) -> bytes::Bytes {
        let mut v = match self {
            Message::Request {
                req_id,
                origin,
                trace,
                body,
            } => {
                let mut m = Value::map([
                    ("t", Value::from("req")),
                    ("id", Value::I64(*req_id as i64)),
                    ("origin", Value::from(*origin)),
                    ("body", body.to_value()),
                ]);
                if let Some(tr) = trace {
                    m.insert(
                        "tr",
                        Value::list([
                            Value::I64(tr.trace_id as i64),
                            Value::I64(tr.span_id as i64),
                        ]),
                    );
                }
                m
            }
            Message::Reply {
                req_id,
                route,
                body,
            } => Value::map([
                ("t", Value::from("rep")),
                ("id", Value::I64(*req_id as i64)),
                ("route", nodes_to_value(route)),
                ("body", body.to_value()),
            ]),
            Message::Notify(n) => Value::map([("t", Value::from("ntf")), ("body", n.to_value())]),
        };
        if let Some(h) = hlc {
            v.insert(
                "hlc",
                Value::list([
                    Value::I64(h.wall_us as i64),
                    Value::I64(i64::from(h.logical)),
                ]),
            );
        }
        if let Some(ts) = ts {
            v.insert("ts", Value::I64(ts as i64));
        }
        if !nd.is_empty() {
            v.insert(
                "nd",
                Value::List(nd.iter().map(shard_delta_to_value).collect()),
            );
        }
        encode_value(&v)
    }

    /// Decodes a message received from a peer, discarding any envelope
    /// HLC (the runtime receive path uses [`Message::decode_with_hlc`]).
    ///
    /// # Errors
    ///
    /// Fails with [`FargoError::Protocol`] or a wire error on malformed
    /// input.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn decode(bytes: &[u8]) -> Result<Message> {
        Ok(Message::decode_with_hlc(bytes)?.0)
    }

    /// Decodes a message plus the sender's envelope HLC, if it carried
    /// one. The receiver merges the timestamp into its own clock before
    /// dispatching, which is what makes journal events at the two Cores
    /// order causally.
    pub fn decode_with_hlc(bytes: &[u8]) -> Result<(Message, Option<Hlc>)> {
        let (msg, hlc, _) = Message::decode_with_meta(bytes)?;
        Ok((msg, hlc))
    }

    /// Decodes a message plus all optional envelope metadata: the
    /// sender's HLC and its send timestamp (`ts`, shared-clock µs). The
    /// receive path subtracts `ts` from its own clock to attribute the
    /// network phase of the request's latency.
    pub fn decode_with_meta(bytes: &[u8]) -> Result<(Message, Option<Hlc>, Option<u64>)> {
        let (msg, hlc, ts, _) = Message::decode_with_meta_nd(bytes)?;
        Ok((msg, hlc, ts))
    }

    /// Decodes a message plus all optional envelope metadata *and* any
    /// piggybacked location-shard deltas (`nd` field). The receive path
    /// feeds the deltas to the local shard/cache before dispatching the
    /// message itself.
    #[allow(clippy::type_complexity)]
    pub fn decode_with_meta_nd(
        bytes: &[u8],
    ) -> Result<(
        Message,
        Option<Hlc>,
        Option<u64>,
        Vec<(CompletId, u32, u64, bool)>,
    )> {
        let v = decode_value(bytes)?;
        let hlc = v.get("hlc").and_then(|h| {
            Some(Hlc {
                wall_us: h.index(0)?.as_i64()? as u64,
                logical: h.index(1)?.as_i64()? as u32,
            })
        });
        let ts = v.get("ts").and_then(|t| t.as_i64()).map(|t| t as u64);
        let msg = match str_field(&v, "t")?.as_str() {
            "req" => Ok(Message::Request {
                req_id: u64_field(&v, "id")?,
                origin: u64_field(&v, "origin")? as u32,
                trace: v.get("tr").and_then(|tr| {
                    Some(TraceContext {
                        trace_id: tr.index(0)?.as_i64()? as u64,
                        span_id: tr.index(1)?.as_i64()? as u64,
                    })
                }),
                body: Request::from_value(&value_field(&v, "body")?)?,
            }),
            "rep" => Ok(Message::Reply {
                req_id: u64_field(&v, "id")?,
                route: nodes_from_value(&value_field(&v, "route")?)?,
                body: Reply::from_value(&value_field(&v, "body")?)?,
            }),
            "ntf" => Ok(Message::Notify(Notify::from_value(&value_field(
                &v, "body",
            )?)?)),
            other => Err(FargoError::Protocol(format!("unknown envelope {other:?}"))),
        }?;
        let nd = match v.get("nd").and_then(Value::as_list) {
            Some(items) => items
                .iter()
                .map(shard_delta_from_value)
                .collect::<Result<Vec<_>>>()?,
            None => Vec::new(),
        };
        Ok((msg, hlc, ts, nd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let bytes = m.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn invoke_roundtrips() {
        roundtrip(Message::Request {
            req_id: 42,
            origin: 1,
            trace: None,
            body: Request::Invoke {
                target: CompletId::new(0, 7),
                method: "print".into(),
                args: vec![Value::from("hi"), Value::Null],
                chain: vec![CompletId::new(1, 1)],
                path: vec![1, 2, 3],
                hops: 2,
            },
        });
    }

    #[test]
    fn move_stream_roundtrips() {
        roundtrip(Message::Request {
            req_id: 1,
            origin: 0,
            trace: None,
            body: Request::Move {
                packets: vec![CompletPacket {
                    id: CompletId::new(0, 1),
                    type_name: "Message".into(),
                    state: Value::map([("text", Value::from("x"))]),
                    names: vec!["msg".into()],
                    epoch: 0,
                }],
                continuation: Some(Continuation {
                    target: CompletId::new(0, 1),
                    method: "start".into(),
                    args: vec![Value::I64(1)],
                }),
            },
        });
    }

    #[test]
    fn two_phase_move_messages_roundtrip() {
        let root = CompletId::new(0, 1);
        roundtrip(Message::Request {
            req_id: 2,
            origin: 0,
            trace: None,
            body: Request::MovePrepare {
                root,
                epoch: 3,
                packets: vec![CompletPacket {
                    id: root,
                    type_name: "Message".into(),
                    state: Value::Null,
                    names: vec![],
                    epoch: 3,
                }],
                continuation: Some(Continuation {
                    target: root,
                    method: "start".into(),
                    args: vec![],
                }),
            },
        });
        for body in [
            Request::MoveCommit { root, epoch: 3 },
            Request::MoveAbort { root, epoch: 3 },
            Request::MoveQuery { root, epoch: 3 },
            Request::MoveDecision { root, epoch: 3 },
        ] {
            roundtrip(Message::Request {
                req_id: 2,
                origin: 0,
                trace: None,
                body,
            });
        }
        for body in [
            Reply::PrepareOk { epoch: 3 },
            Reply::MoveState {
                state: MoveTxnState::Held,
            },
            Reply::MoveState {
                state: MoveTxnState::Committed,
            },
            Reply::MoveState {
                state: MoveTxnState::Aborted,
            },
            Reply::MoveState {
                state: MoveTxnState::Unknown,
            },
        ] {
            roundtrip(Message::Reply {
                req_id: 2,
                route: vec![0],
                body,
            });
        }
    }

    #[test]
    fn epochless_packet_stays_byte_compatible() {
        // epoch 0 must not appear on the wire at all, so a pre-epoch peer
        // decodes the stream unchanged — same guarantee the HLC field made.
        let packet = CompletPacket {
            id: CompletId::new(0, 1),
            type_name: "T".into(),
            state: Value::Null,
            names: vec![],
            epoch: 0,
        };
        let encoded = encode_value(&packet_to_value(&packet));
        assert!(packet_to_value(&packet).get("epoch").is_none());
        let back = packet_from_value(&decode_value(&encoded).unwrap()).unwrap();
        assert_eq!(back, packet);
        // And a stamped packet round-trips its epoch.
        let stamped = CompletPacket { epoch: 7, ..packet };
        let back =
            packet_from_value(&decode_value(&encode_value(&packet_to_value(&stamped))).unwrap())
                .unwrap();
        assert_eq!(back.epoch, 7);
    }

    #[test]
    fn move_without_continuation_roundtrips() {
        roundtrip(Message::Request {
            req_id: 1,
            origin: 0,
            trace: None,
            body: Request::Move {
                packets: vec![],
                continuation: None,
            },
        });
    }

    #[test]
    fn replies_roundtrip() {
        for body in [
            Reply::InvokeOk {
                value: Value::from(5i64),
                final_location: 3,
                target: CompletId::new(0, 7),
                epoch: 0,
            },
            Reply::InvokeOk {
                value: Value::from(5i64),
                final_location: 3,
                target: CompletId::new(0, 7),
                epoch: 4,
            },
            Reply::MoveOk {
                arrived: vec![CompletId::new(1, 1)],
            },
            Reply::NewOk {
                desc: RefDescriptor::link(CompletId::new(2, 2), "T", 2),
            },
            Reply::NameOk { desc: None },
            Reply::StateOk {
                type_name: "T".into(),
                state: Value::Null,
            },
            Reply::WhereOk { node: Some(4) },
            Reply::WhereOk { node: None },
            Reply::Complets {
                items: vec![(CompletId::new(0, 1), "Message".into())],
            },
            Reply::Trackers {
                items: vec![
                    (CompletId::new(0, 1), Some(3), 7),
                    (CompletId::new(1, 2), None, 0),
                ],
            },
            Reply::Ok,
            Reply::Pong,
        ] {
            roundtrip(Message::Reply {
                req_id: 9,
                route: vec![2, 1],
                body,
            });
        }
    }

    #[test]
    fn errors_roundtrip_typed() {
        let cases = [
            FargoError::UnknownComplet(CompletId::new(3, 4)),
            FargoError::Timeout,
            FargoError::NoSuchMethod {
                complet_type: "A".into(),
                method: "b".into(),
            },
            FargoError::App("boom".into()),
            FargoError::ReentrantInvocation(CompletId::new(1, 1)),
            FargoError::StampUnresolved("Printer".into()),
            FargoError::NameNotBound("x".into()),
            FargoError::ShuttingDown,
            FargoError::HopLimit(64),
            FargoError::MoveInDoubt(CompletId::new(0, 9)),
        ];
        for e in cases {
            let m = Message::Reply {
                req_id: 1,
                route: vec![],
                body: Reply::Err(e.clone()),
            };
            let back = Message::decode(&m.encode()).unwrap();
            match back {
                Message::Reply {
                    body: Reply::Err(got),
                    ..
                } => assert_eq!(got, e),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn notifies_roundtrip() {
        for epoch in [0, 6] {
            roundtrip(Message::Notify(Notify::LocationUpdate {
                target: CompletId::new(1, 2),
                now_at: 5,
                epoch,
            }));
        }
        roundtrip(Message::Notify(Notify::CoreShutdown { node: 2 }));
    }

    #[test]
    fn epochless_tracker_updates_stay_byte_compatible() {
        // As for `CompletPacket`: epoch 0 must not appear on the wire, so
        // replies and notifies about never-moved complets decode on a
        // pre-epoch peer unchanged.
        let reply = Reply::InvokeOk {
            value: Value::Null,
            final_location: 1,
            target: CompletId::new(0, 1),
            epoch: 0,
        };
        assert!(reply.to_value().get("epoch").is_none());
        let notify = Notify::LocationUpdate {
            target: CompletId::new(0, 1),
            now_at: 1,
            epoch: 0,
        };
        assert!(notify.to_value().get("epoch").is_none());
        // Stamped ones carry it.
        let stamped = Reply::InvokeOk {
            value: Value::Null,
            final_location: 1,
            target: CompletId::new(0, 1),
            epoch: 9,
        };
        assert_eq!(
            stamped.to_value().get("epoch").and_then(Value::as_i64),
            Some(9)
        );
    }

    #[test]
    fn naming_messages_roundtrip() {
        let id = CompletId::new(2, 9);
        roundtrip(Message::Request {
            req_id: 11,
            origin: 0,
            trace: None,
            body: Request::LocateQuery { id },
        });
        roundtrip(Message::Request {
            req_id: 12,
            origin: 0,
            trace: None,
            body: Request::ShardList,
        });
        for body in [
            Reply::LocateOk {
                node: Some(3),
                epoch: 5,
            },
            Reply::LocateOk {
                node: Some(3),
                epoch: 0,
            },
            Reply::LocateOk {
                node: None,
                epoch: 0,
            },
            Reply::ShardEntries {
                entries: vec![(id, 3, 5), (CompletId::new(0, 1), 1, 0)],
            },
            Reply::ShardEntries { entries: vec![] },
        ] {
            roundtrip(Message::Reply {
                req_id: 11,
                route: vec![0],
                body,
            });
        }
        roundtrip(Message::Notify(Notify::ShardDelta {
            entries: vec![(id, 3, 5, true), (CompletId::new(0, 1), 1, 2, false)],
        }));
    }

    #[test]
    fn epochless_locate_reply_stays_byte_compatible() {
        // As for `Reply::InvokeOk`: epoch 0 must not appear on the wire.
        let reply = Reply::LocateOk {
            node: Some(1),
            epoch: 0,
        };
        assert!(reply.to_value().get("epoch").is_none());
        let stamped = Reply::LocateOk {
            node: Some(1),
            epoch: 4,
        };
        assert_eq!(
            stamped.to_value().get("epoch").and_then(Value::as_i64),
            Some(4)
        );
    }

    #[test]
    fn envelope_shard_deltas_piggyback_and_are_optional() {
        let msg = Message::Request {
            req_id: 8,
            origin: 0,
            trace: None,
            body: Request::Ping,
        };
        // No deltas → byte-identical to the plain encoding.
        assert_eq!(msg.encode_with_meta_nd(None, None, &[]), msg.encode());
        let deltas = vec![
            (CompletId::new(0, 1), 2, 3, true),
            (CompletId::new(1, 4), 0, 7, false),
        ];
        let stamped = msg.encode_with_meta_nd(
            Some(Hlc {
                wall_us: 10,
                logical: 1,
            }),
            Some(99),
            &deltas,
        );
        let (back, hlc, ts, nd) = Message::decode_with_meta_nd(&stamped).unwrap();
        assert_eq!(back, msg);
        assert_eq!(
            hlc,
            Some(Hlc {
                wall_us: 10,
                logical: 1
            })
        );
        assert_eq!(ts, Some(99));
        assert_eq!(nd, deltas);
        // Plain decode ignores the field without failing.
        let (back, _, _) = Message::decode_with_meta(&stamped).unwrap();
        assert_eq!(back, msg);
        // Delta-free envelopes decode with an empty batch.
        let (_, _, _, nd) = Message::decode_with_meta_nd(&msg.encode()).unwrap();
        assert!(nd.is_empty());
    }

    #[test]
    fn subscribe_roundtrips_both_listener_kinds() {
        for listener in [
            ListenerAddr::Complet(RefDescriptor::link(CompletId::new(1, 1), "L", 0)),
            ListenerAddr::Core { node: 3, token: 99 },
        ] {
            roundtrip(Message::Request {
                req_id: 5,
                origin: 0,
                trace: None,
                body: Request::Subscribe {
                    selector: "completLoad".into(),
                    threshold: Some(3.0),
                    above: true,
                    listener,
                },
            });
        }
    }

    #[test]
    fn account_request_and_reply_roundtrip() {
        roundtrip(Message::Request {
            req_id: 4,
            origin: 0,
            trace: None,
            body: Request::TopComplets { n: 10 },
        });
        roundtrip(Message::Request {
            req_id: 5,
            origin: 0,
            trace: None,
            body: Request::TrafficMatrix,
        });
        roundtrip(Message::Reply {
            req_id: 4,
            route: vec![0],
            body: Reply::TopComplets {
                rows: vec![AccountRecord {
                    key: (2, 17),
                    invokes: 40,
                    exec_us: 123,
                    bytes_in: 4_096,
                    bytes_out: 512,
                    load: 163,
                    err: 3,
                }],
            },
        });
        roundtrip(Message::Reply {
            req_id: 5,
            route: vec![0],
            body: Reply::Matrix {
                cells: vec![MatrixCell {
                    src: "core0".into(),
                    dst: "core1".into(),
                    msgs: 9,
                    bytes: 900,
                }],
            },
        });
    }

    #[test]
    fn journal_request_and_reply_roundtrip() {
        roundtrip(Message::Request {
            req_id: 3,
            origin: 0,
            trace: None,
            body: Request::JournalEvents,
        });
        roundtrip(Message::Reply {
            req_id: 3,
            route: vec![0],
            body: Reply::Journal {
                events: vec![
                    JournalEvent {
                        hlc: Hlc {
                            wall_us: 123,
                            logical: 4,
                        },
                        core: 1,
                        seq: 9,
                        kind: JournalKind::CompletDeparted,
                        subject: "c0.1".into(),
                        object: "Agent".into(),
                        detail: String::new(),
                        peer: Some(2),
                    },
                    JournalEvent {
                        hlc: Hlc {
                            wall_us: 124,
                            logical: 0,
                        },
                        core: 2,
                        seq: 0,
                        kind: JournalKind::RefEdgeCreated,
                        subject: "c0.1".into(),
                        object: "c0.2".into(),
                        detail: "pull".into(),
                        peer: None,
                    },
                ],
            },
        });
    }

    #[test]
    fn envelope_hlc_piggybacks_and_is_optional() {
        let msg = Message::Request {
            req_id: 7,
            origin: 0,
            trace: None,
            body: Request::Ping,
        };
        let stamped = msg.encode_with_hlc(Some(Hlc {
            wall_us: 55,
            logical: 3,
        }));
        let (back, hlc) = Message::decode_with_hlc(&stamped).unwrap();
        assert_eq!(back, msg);
        assert_eq!(
            hlc,
            Some(Hlc {
                wall_us: 55,
                logical: 3
            })
        );
        // Unstamped envelopes decode with no HLC — backwards compatible.
        let (back, hlc) = Message::decode_with_hlc(&msg.encode()).unwrap();
        assert_eq!(back, msg);
        assert_eq!(hlc, None);
        // All three envelope shapes accept the field.
        for m in [
            Message::Reply {
                req_id: 1,
                route: vec![0],
                body: Reply::Ok,
            },
            Message::Notify(Notify::CoreShutdown { node: 1 }),
        ] {
            let (_, h) = Message::decode_with_hlc(&m.encode_with_hlc(Some(Hlc {
                wall_us: 9,
                logical: 0,
            })))
            .unwrap();
            assert_eq!(h.unwrap().wall_us, 9);
        }
    }

    #[test]
    fn envelope_send_timestamp_piggybacks_and_is_optional() {
        let msg = Message::Request {
            req_id: 7,
            origin: 0,
            trace: None,
            body: Request::Ping,
        };
        let stamped = msg.encode_with_meta(None, Some(123_456));
        let (back, hlc, ts) = Message::decode_with_meta(&stamped).unwrap();
        assert_eq!(back, msg);
        assert_eq!(hlc, None);
        assert_eq!(ts, Some(123_456));
        // An unstamped envelope encodes to the exact same bytes as one
        // that never heard of the field — byte compatible, not merely
        // decode compatible.
        assert_eq!(msg.encode_with_meta(None, None), msg.encode());
        let (_, _, ts) = Message::decode_with_meta(&msg.encode()).unwrap();
        assert_eq!(ts, None);
        // HLC and ts stack on the same envelope.
        let both = msg.encode_with_meta(
            Some(Hlc {
                wall_us: 55,
                logical: 3,
            }),
            Some(9),
        );
        let (_, hlc, ts) = Message::decode_with_meta(&both).unwrap();
        assert_eq!(hlc.unwrap().wall_us, 55);
        assert_eq!(ts, Some(9));
        // All three envelope shapes accept the field.
        for m in [
            Message::Reply {
                req_id: 1,
                route: vec![0],
                body: Reply::Ok,
            },
            Message::Notify(Notify::CoreShutdown { node: 1 }),
        ] {
            let (_, _, ts) = Message::decode_with_meta(&m.encode_with_meta(None, Some(4))).unwrap();
            assert_eq!(ts, Some(4));
        }
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(Message::decode(b"garbage").is_err());
        let v = Value::map([("t", Value::from("nope"))]);
        assert!(Message::decode(&encode_value(&v)).is_err());
    }
}
