//! The Core's event mechanism (§4.2).
//!
//! Every profiling service has a corresponding event complets can register
//! for with a per-listener threshold; in addition each Core fires
//! non-measurable layout events (`completArrived`, `completDeparted`,
//! `coreShutdown`). Listeners may be local closures, remote Cores, or
//! complets — the latter are notified by invoking their `on_event` method
//! through a normal complet reference, which is what lets listeners keep
//! receiving events after they migrate (the paper's distributed events).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fargo_telemetry::{JournalEvent, JournalKind};
use fargo_wire::{CompletId, Value};
use parking_lot::Mutex;

use crate::error::{FargoError, Result};
use crate::proto::ListenerAddr;

/// A fired event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventPayload {
    /// A complet arrived at the Core with node index `core`.
    CompletArrived {
        /// The arriving complet.
        id: CompletId,
        /// Its anchor type.
        type_name: String,
        /// Node index of the receiving Core.
        core: u32,
    },
    /// A complet departed towards `dest`.
    CompletDeparted {
        /// The departing complet.
        id: CompletId,
        /// Its anchor type.
        type_name: String,
        /// Node index of the destination Core.
        dest: u32,
        /// Node index of the Core it left.
        core: u32,
    },
    /// A Core announced it is shutting down.
    CoreShutdown {
        /// Node index of the Core going down.
        core: u32,
    },
    /// A follow-up move (e.g. a remotely hosted pull target trailing a
    /// committed move) failed after retrying.
    MoveFailed {
        /// The complet that could not be moved.
        id: CompletId,
        /// Node index of the intended destination Core.
        dest: u32,
        /// Node index of the Core that attempted the move.
        core: u32,
        /// The final error, rendered.
        error: String,
    },
    /// A continuous profiling measurement crossed a listener's threshold.
    Profile {
        /// Profiling service name (e.g. `completLoad`).
        service: String,
        /// Service-specific key (e.g. the reference `c0.1->c0.2`).
        key: String,
        /// The measured (averaged) value.
        value: f64,
        /// Node index of the measuring Core.
        core: u32,
    },
}

impl EventPayload {
    /// The canonical selector string of this event.
    ///
    /// Layout events select by kind (`completArrived`, `completDeparted`,
    /// `coreShutdown`); profile events by `service` or `service:key`.
    pub fn selector(&self) -> String {
        match self {
            EventPayload::CompletArrived { .. } => "completArrived".to_owned(),
            EventPayload::CompletDeparted { .. } => "completDeparted".to_owned(),
            EventPayload::CoreShutdown { .. } => "coreShutdown".to_owned(),
            EventPayload::MoveFailed { .. } => "moveFailed".to_owned(),
            EventPayload::Profile { service, key, .. } => {
                if key.is_empty() {
                    service.clone()
                } else {
                    format!("{service}:{key}")
                }
            }
        }
    }

    /// Whether this event matches a subscription selector.
    ///
    /// A selector matches its exact canonical form, and a bare profile
    /// service name matches every key of that service.
    pub fn matches(&self, selector: &str) -> bool {
        let own = self.selector();
        if own == selector {
            return true;
        }
        match self {
            EventPayload::Profile { service, .. } => service == selector,
            _ => false,
        }
    }

    /// The measured value for profile events.
    pub fn value(&self) -> Option<f64> {
        match self {
            EventPayload::Profile { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Node index of the Core that fired the event.
    pub fn core(&self) -> u32 {
        match self {
            EventPayload::CompletArrived { core, .. }
            | EventPayload::CompletDeparted { core, .. }
            | EventPayload::CoreShutdown { core }
            | EventPayload::MoveFailed { core, .. }
            | EventPayload::Profile { core, .. } => *core,
        }
    }

    /// Encodes the event for the wire and for `on_event` listener calls.
    pub fn to_value(&self) -> Value {
        match self {
            EventPayload::CompletArrived {
                id,
                type_name,
                core,
            } => Value::map([
                ("kind", Value::from("completArrived")),
                ("id", Value::from(id.to_string())),
                ("type", Value::from(type_name.as_str())),
                ("core", Value::from(*core)),
            ]),
            EventPayload::CompletDeparted {
                id,
                type_name,
                dest,
                core,
            } => Value::map([
                ("kind", Value::from("completDeparted")),
                ("id", Value::from(id.to_string())),
                ("type", Value::from(type_name.as_str())),
                ("dest", Value::from(*dest)),
                ("core", Value::from(*core)),
            ]),
            EventPayload::CoreShutdown { core } => Value::map([
                ("kind", Value::from("coreShutdown")),
                ("core", Value::from(*core)),
            ]),
            EventPayload::MoveFailed {
                id,
                dest,
                core,
                error,
            } => Value::map([
                ("kind", Value::from("moveFailed")),
                ("id", Value::from(id.to_string())),
                ("dest", Value::from(*dest)),
                ("core", Value::from(*core)),
                ("error", Value::from(error.as_str())),
            ]),
            EventPayload::Profile {
                service,
                key,
                value,
                core,
            } => Value::map([
                ("kind", Value::from("profile")),
                ("service", Value::from(service.as_str())),
                ("key", Value::from(key.as_str())),
                ("value", Value::from(*value)),
                ("core", Value::from(*core)),
            ]),
        }
    }

    /// Decodes an event from its wire form.
    ///
    /// # Errors
    ///
    /// Fails with [`FargoError::Protocol`] on malformed input.
    pub fn from_value(v: &Value) -> Result<EventPayload> {
        let field = |k: &str| -> Result<String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| FargoError::Protocol(format!("event missing {k:?}")))
        };
        let num = |k: &str| -> Result<u32> {
            v.get(k)
                .and_then(Value::as_i64)
                .map(|n| n as u32)
                .ok_or_else(|| FargoError::Protocol(format!("event missing {k:?}")))
        };
        let id = |k: &str| -> Result<CompletId> {
            let s = field(k)?;
            parse_complet_id(&s)
                .ok_or_else(|| FargoError::Protocol(format!("bad complet id {s:?}")))
        };
        match field("kind")?.as_str() {
            "completArrived" => Ok(EventPayload::CompletArrived {
                id: id("id")?,
                type_name: field("type")?,
                core: num("core")?,
            }),
            "completDeparted" => Ok(EventPayload::CompletDeparted {
                id: id("id")?,
                type_name: field("type")?,
                dest: num("dest")?,
                core: num("core")?,
            }),
            "coreShutdown" => Ok(EventPayload::CoreShutdown { core: num("core")? }),
            "moveFailed" => Ok(EventPayload::MoveFailed {
                id: id("id")?,
                dest: num("dest")?,
                core: num("core")?,
                error: field("error")?,
            }),
            "profile" => Ok(EventPayload::Profile {
                service: field("service")?,
                key: field("key")?,
                value: v
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| FargoError::Protocol("event missing value".into()))?,
                core: num("core")?,
            }),
            other => Err(FargoError::Protocol(format!(
                "unknown event kind {other:?}"
            ))),
        }
    }

    /// Reconstructs a fireable layout event from a flight-recorder journal
    /// entry, so replayed history flows through the same hub — and the
    /// same remote-listener deliveries — as live events. Journal kinds
    /// with no event counterpart (tracker bookkeeping, reference edges,
    /// invocation steps) yield `None`.
    pub fn from_journal(ev: &JournalEvent) -> Option<EventPayload> {
        match ev.kind {
            JournalKind::CompletArrived => Some(EventPayload::CompletArrived {
                id: parse_complet_id(&ev.subject)?,
                type_name: ev.object.clone(),
                core: ev.core,
            }),
            JournalKind::CompletDeparted => Some(EventPayload::CompletDeparted {
                id: parse_complet_id(&ev.subject)?,
                type_name: ev.object.clone(),
                // A released complet has no destination; report the Core
                // it vanished from.
                dest: ev.peer.unwrap_or(ev.core),
                core: ev.core,
            }),
            _ => None,
        }
    }
}

impl fmt::Display for EventPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventPayload::Profile { value, .. } => {
                write!(f, "{} = {value:.3}", self.selector())
            }
            other => write!(f, "{}", other.selector()),
        }
    }
}

fn parse_complet_id(s: &str) -> Option<CompletId> {
    let rest = s.strip_prefix('c')?;
    let (origin, seq) = rest.split_once('.')?;
    Some(CompletId::new(origin.parse().ok()?, seq.parse().ok()?))
}

/// A local event callback.
pub type EventHandler = Arc<dyn Fn(&EventPayload) + Send + Sync + 'static>;

/// Where a matching event should be delivered (computed by the hub,
/// executed by the Core, which owns the network).
#[derive(Clone)]
pub(crate) enum Delivery {
    Local(EventHandler),
    Remote(ListenerAddr),
}

struct Subscription {
    token: u64,
    selector: String,
    threshold: Option<f64>,
    /// `true`: fire when value rises to or above threshold;
    /// `false`: fire when it falls to or below.
    above: bool,
    /// Edge-trigger state: armed until the condition fires, re-armed when
    /// the condition clears. Prevents storms of identical notifications.
    armed: bool,
    sink: Delivery,
}

impl Subscription {
    /// Threshold/edge filtering (§4.2: "the threshold value is kept
    /// separately with the listener, in order to filter the results").
    fn wants(&mut self, payload: &EventPayload) -> bool {
        if !payload.matches(&self.selector) {
            return false;
        }
        let Some(threshold) = self.threshold else {
            return true;
        };
        let Some(value) = payload.value() else {
            return true;
        };
        let crossed = if self.above {
            value >= threshold
        } else {
            value <= threshold
        };
        if crossed {
            let fire = self.armed;
            self.armed = false;
            fire
        } else {
            self.armed = true;
            false
        }
    }
}

/// The per-Core listener registry.
#[derive(Default)]
pub(crate) struct EventHub {
    subs: Mutex<Vec<Subscription>>,
    next_token: AtomicU64,
}

impl EventHub {
    pub fn new() -> Self {
        EventHub::default()
    }

    fn add(&self, sub: Subscription) -> u64 {
        let token = sub.token;
        self.subs.lock().push(sub);
        token
    }

    /// Registers a local closure listener; returns its token.
    pub fn subscribe_local(
        &self,
        selector: &str,
        threshold: Option<f64>,
        above: bool,
        handler: EventHandler,
    ) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.add(Subscription {
            token,
            selector: selector.to_owned(),
            threshold,
            above,
            armed: true,
            sink: Delivery::Local(handler),
        })
    }

    /// Registers a remote listener (complet or peer Core).
    pub fn subscribe_remote(
        &self,
        selector: &str,
        threshold: Option<f64>,
        above: bool,
        listener: ListenerAddr,
    ) -> u64 {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.add(Subscription {
            token,
            selector: selector.to_owned(),
            threshold,
            above,
            armed: true,
            sink: Delivery::Remote(listener),
        })
    }

    /// Removes a subscription by token. Returns whether it existed.
    pub fn unsubscribe(&self, token: u64) -> bool {
        let mut subs = self.subs.lock();
        let before = subs.len();
        subs.retain(|s| s.token != token);
        subs.len() != before
    }

    /// Removes remote subscriptions matching a listener address and
    /// selector. Returns how many were removed.
    pub fn unsubscribe_remote(&self, selector: &str, listener: &ListenerAddr) -> usize {
        let mut subs = self.subs.lock();
        let before = subs.len();
        subs.retain(|s| {
            !(s.selector == selector && matches!(&s.sink, Delivery::Remote(l) if l == listener))
        });
        before - subs.len()
    }

    /// Returns the deliveries an event should trigger, applying each
    /// subscription's threshold filter.
    pub fn matching(&self, payload: &EventPayload) -> Vec<Delivery> {
        let mut subs = self.subs.lock();
        let mut out = Vec::new();
        for s in subs.iter_mut() {
            if s.wants(payload) {
                out.push(s.sink.clone());
            }
        }
        out
    }

    /// Number of active subscriptions.
    pub fn len(&self) -> usize {
        self.subs.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn profile(service: &str, key: &str, value: f64) -> EventPayload {
        EventPayload::Profile {
            service: service.into(),
            key: key.into(),
            value,
            core: 0,
        }
    }

    #[test]
    fn selector_matching() {
        let e = profile("methodInvokeRate", "c0.1->c0.2", 5.0);
        assert!(e.matches("methodInvokeRate"));
        assert!(e.matches("methodInvokeRate:c0.1->c0.2"));
        assert!(!e.matches("bandwidth"));
        let shutdown = EventPayload::CoreShutdown { core: 3 };
        assert!(shutdown.matches("coreShutdown"));
        assert!(!shutdown.matches("completArrived"));
    }

    #[test]
    fn payload_wire_roundtrip() {
        let cases = [
            EventPayload::CompletArrived {
                id: CompletId::new(1, 2),
                type_name: "T".into(),
                core: 3,
            },
            EventPayload::CompletDeparted {
                id: CompletId::new(1, 2),
                type_name: "T".into(),
                dest: 4,
                core: 3,
            },
            EventPayload::CoreShutdown { core: 9 },
            EventPayload::MoveFailed {
                id: CompletId::new(1, 2),
                dest: 4,
                core: 3,
                error: "remote core did not answer in time".into(),
            },
            profile("completLoad", "", 2.0),
        ];
        for e in cases {
            assert_eq!(EventPayload::from_value(&e.to_value()).unwrap(), e);
        }
    }

    #[test]
    fn journal_entries_reconstruct_layout_events() {
        use fargo_telemetry::Hlc;
        let entry = |kind, subject: &str, object: &str, peer| JournalEvent {
            hlc: Hlc::ZERO,
            core: 2,
            seq: 0,
            kind,
            subject: subject.into(),
            object: object.into(),
            detail: String::new(),
            peer,
        };
        assert_eq!(
            EventPayload::from_journal(&entry(JournalKind::CompletArrived, "c0.1", "T", None)),
            Some(EventPayload::CompletArrived {
                id: CompletId::new(0, 1),
                type_name: "T".into(),
                core: 2,
            })
        );
        assert_eq!(
            EventPayload::from_journal(&entry(JournalKind::CompletDeparted, "c0.1", "T", Some(4))),
            Some(EventPayload::CompletDeparted {
                id: CompletId::new(0, 1),
                type_name: "T".into(),
                dest: 4,
                core: 2,
            })
        );
        // Non-layout kinds and unparsable subjects reconstruct nothing.
        assert_eq!(
            EventPayload::from_journal(&entry(JournalKind::TrackerCreated, "c0.1", "", None)),
            None
        );
        assert_eq!(
            EventPayload::from_journal(&entry(JournalKind::CompletArrived, "bogus", "T", None)),
            None
        );
    }

    #[test]
    fn threshold_filters_per_listener() {
        let hub = EventHub::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        hub.subscribe_local(
            "completLoad",
            Some(3.0),
            true,
            Arc::new(move |_| {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // Below threshold: filtered.
        for d in hub.matching(&profile("completLoad", "", 1.0)) {
            if let Delivery::Local(f) = d {
                f(&profile("completLoad", "", 1.0));
            }
        }
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        // At/above threshold: delivered.
        assert_eq!(hub.matching(&profile("completLoad", "", 3.5)).len(), 1);
    }

    #[test]
    fn threshold_is_edge_triggered() {
        let hub = EventHub::new();
        hub.subscribe_local("load", Some(2.0), true, Arc::new(|_| {}));
        assert_eq!(hub.matching(&profile("load", "", 5.0)).len(), 1);
        // Still above: no re-fire until it clears.
        assert_eq!(hub.matching(&profile("load", "", 6.0)).len(), 0);
        // Clears…
        assert_eq!(hub.matching(&profile("load", "", 1.0)).len(), 0);
        // …and crosses again: re-fires.
        assert_eq!(hub.matching(&profile("load", "", 4.0)).len(), 1);
    }

    #[test]
    fn below_direction() {
        let hub = EventHub::new();
        hub.subscribe_local("bandwidth", Some(100.0), false, Arc::new(|_| {}));
        assert_eq!(hub.matching(&profile("bandwidth", "", 500.0)).len(), 0);
        assert_eq!(hub.matching(&profile("bandwidth", "", 50.0)).len(), 1);
    }

    #[test]
    fn unsubscribe_by_token_and_address() {
        let hub = EventHub::new();
        let t = hub.subscribe_local("coreShutdown", None, true, Arc::new(|_| {}));
        let addr = ListenerAddr::Core { node: 1, token: 5 };
        hub.subscribe_remote("coreShutdown", None, true, addr.clone());
        assert_eq!(hub.len(), 2);
        assert!(hub.unsubscribe(t));
        assert!(!hub.unsubscribe(t));
        assert_eq!(hub.unsubscribe_remote("coreShutdown", &addr), 1);
        assert_eq!(hub.len(), 0);
    }

    #[test]
    fn layout_events_ignore_thresholds() {
        let hub = EventHub::new();
        hub.subscribe_local("coreShutdown", Some(99.0), true, Arc::new(|_| {}));
        assert_eq!(
            hub.matching(&EventPayload::CoreShutdown { core: 0 }).len(),
            1
        );
    }
}
