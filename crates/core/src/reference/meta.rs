//! Meta-references: reflection on complet references (§3.2).
//!
//! FarGo reflects on the *reference* rather than the object: every complet
//! reference owns a meta-reference that reifies its relocation semantics
//! and lets a program inspect and change them at runtime, without touching
//! the invocation syntax. The Rust analog of:
//!
//! ```java
//! MetaRef metaRef = Core.getMetaRef(msg);
//! if (metaRef.getRelocator() instanceof Link)
//!     metaRef.setRelocator(new Pull());
//! ```
//!
//! is:
//!
//! ```no_run
//! # use fargo_core::{Core, CompletRegistry};
//! # use simnet::{Network, NetworkConfig};
//! # fn main() -> Result<(), fargo_core::FargoError> {
//! # let net = Network::new(NetworkConfig::default());
//! # let registry = CompletRegistry::new();
//! # let core = Core::builder(&net, "acadia").registry(&registry).spawn()?;
//! # let msg = core.new_complet("Message", &[])?;
//! let meta = msg.meta();
//! if meta.relocator_name() == "link" {
//!     meta.set_relocator("pull")?;
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::error::Result;
use crate::reference::relocator::Relocator;
use crate::reference::CompletRef;
use crate::runtime::Core;

/// The reflective handle of one complet reference.
///
/// Obtained with [`Core::meta_ref`] or
/// [`BoundRef::meta`](crate::BoundRef::meta). Changes made through a
/// `MetaRef` are visible to every clone of the underlying reference (they
/// share one meta-reference, as in Figure 2).
#[derive(Debug)]
pub struct MetaRef {
    core: Core,
    r: CompletRef,
}

impl MetaRef {
    pub(crate) fn new(core: Core, r: CompletRef) -> Self {
        MetaRef { core, r }
    }

    /// The reified relocator object of this reference.
    ///
    /// # Errors
    ///
    /// Fails if the reference carries a relocator name that is not
    /// registered at this Core.
    pub fn relocator(&self) -> Result<Arc<dyn Relocator>> {
        self.core.relocators().resolve(&self.r.relocator())
    }

    /// The relocator's name (`"link"`, `"pull"`, …).
    pub fn relocator_name(&self) -> String {
        self.r.relocator()
    }

    /// Replaces the reference's relocation semantics — the runtime
    /// evolution of reference types (§3.2).
    ///
    /// # Errors
    ///
    /// Fails with
    /// [`FargoError::UnknownRelocator`](crate::FargoError::UnknownRelocator)
    /// if `name` is not registered.
    pub fn set_relocator(&self, name: &str) -> Result<()> {
        // Validate against the registry before mutating.
        self.core.relocators().resolve(name)?;
        self.r.set_relocator_unchecked(name);
        Ok(())
    }

    /// The name of the Core currently hosting the reference's target.
    ///
    /// # Errors
    ///
    /// Fails when the target cannot be located.
    pub fn location(&self) -> Result<String> {
        let node = self.core.locate(self.r.id())?;
        Ok(self.core.core_name_of(node))
    }

    /// The underlying reference.
    pub fn complet_ref(&self) -> &CompletRef {
        &self.r
    }
}
