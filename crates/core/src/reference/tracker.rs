//! The per-Core tracker table.
//!
//! A tracker is the second half of the stub/tracker split (§3.1): exactly
//! one exists per target complet per Core, shared by every local stub
//! pointing at that target. While the target is local the tracker points
//! at it directly; when the target leaves, the tracker is repointed to the
//! destination Core, forming a forwarding chain that invocation returns
//! shorten.

use std::collections::HashMap;
use std::time::Instant;

use fargo_wire::CompletId;
use parking_lot::Mutex;

/// Where a tracker currently points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerTarget {
    /// The complet lives in this Core.
    Local,
    /// The complet left; forward to the Core at this node index.
    Forward(u32),
}

#[derive(Debug)]
struct Tracker {
    target: TrackerTarget,
    /// Invocations routed through this tracker.
    hits: u64,
    updated_at: Instant,
}

/// An externally visible view of one tracker (for the shell and monitor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerSnapshot {
    /// The tracked complet.
    pub id: CompletId,
    /// Current direction.
    pub target: TrackerTarget,
    /// Invocations routed through this tracker so far.
    pub hits: u64,
}

/// The Core's map of trackers, keyed by target complet id.
#[derive(Debug, Default)]
pub(crate) struct TrackerTable {
    map: Mutex<HashMap<CompletId, Tracker>>,
}

impl TrackerTable {
    pub fn new() -> Self {
        TrackerTable::default()
    }

    /// Looks up where invocations for `id` should go, recording a hit.
    pub fn route(&self, id: CompletId) -> Option<TrackerTarget> {
        let mut map = self.map.lock();
        map.get_mut(&id).map(|t| {
            t.hits += 1;
            t.target
        })
    }

    /// Reads a tracker without recording a hit.
    pub fn peek(&self, id: CompletId) -> Option<TrackerTarget> {
        self.map.lock().get(&id).map(|t| t.target)
    }

    /// Points the tracker for `id` at the given target, creating it if
    /// needed. This is both tracker creation on arrival (`Local`) and
    /// repointing on departure or chain shortening (`Forward`). Returns
    /// where the tracker pointed before, so callers can tell an actual
    /// repoint (a chain shortening) from a no-op confirmation.
    pub fn point(&self, id: CompletId, target: TrackerTarget) -> Option<TrackerTarget> {
        let mut map = self.map.lock();
        let now = Instant::now();
        match map.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let prev = e.get().target;
                let t = e.get_mut();
                t.target = target;
                t.updated_at = now;
                Some(prev)
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Tracker {
                    target,
                    hits: 0,
                    updated_at: now,
                });
                None
            }
        }
    }

    /// Creates a forwarding tracker only if none exists yet (used when a
    /// reference with a location hint arrives at a Core that has never
    /// seen the target).
    pub fn seed_forward(&self, id: CompletId, node: u32) {
        let mut map = self.map.lock();
        map.entry(id).or_insert(Tracker {
            target: TrackerTarget::Forward(node),
            hits: 0,
            updated_at: Instant::now(),
        });
    }

    /// Removes the tracker for `id` (complet garbage collected).
    pub fn remove(&self, id: CompletId) -> bool {
        self.map.lock().remove(&id).is_some()
    }

    /// Drops forwarding trackers that have not been touched for `max_idle`
    /// — the runtime's analog of the paper's tracker garbage collection.
    /// Local trackers are never collected. Returns the ids dropped, so the
    /// caller can journal each retirement.
    pub fn collect_idle(&self, max_idle: std::time::Duration) -> Vec<CompletId> {
        let mut map = self.map.lock();
        let now = Instant::now();
        let mut dropped = Vec::new();
        map.retain(|&id, t| {
            let keep =
                t.target == TrackerTarget::Local || now.duration_since(t.updated_at) < max_idle;
            if !keep {
                dropped.push(id);
            }
            keep
        });
        dropped.sort();
        dropped
    }

    /// Snapshot of every tracker, for inspection tools.
    pub fn snapshot(&self) -> Vec<TrackerSnapshot> {
        let map = self.map.lock();
        let mut out: Vec<TrackerSnapshot> = map
            .iter()
            .map(|(&id, t)| TrackerSnapshot {
                id,
                target: t.target,
                hits: t.hits,
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Number of trackers currently in the table.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn id(n: u64) -> CompletId {
        CompletId::new(0, n)
    }

    #[test]
    fn point_and_route() {
        let t = TrackerTable::new();
        assert_eq!(t.route(id(1)), None);
        t.point(id(1), TrackerTarget::Local);
        assert_eq!(t.route(id(1)), Some(TrackerTarget::Local));
        t.point(id(1), TrackerTarget::Forward(3));
        assert_eq!(t.route(id(1)), Some(TrackerTarget::Forward(3)));
    }

    #[test]
    fn hits_accumulate_on_route_not_peek() {
        let t = TrackerTable::new();
        t.point(id(1), TrackerTarget::Local);
        t.route(id(1));
        t.route(id(1));
        t.peek(id(1));
        assert_eq!(t.snapshot()[0].hits, 2);
    }

    #[test]
    fn seed_forward_does_not_clobber() {
        let t = TrackerTable::new();
        t.point(id(1), TrackerTarget::Local);
        t.seed_forward(id(1), 9);
        assert_eq!(t.peek(id(1)), Some(TrackerTarget::Local));
        t.seed_forward(id(2), 9);
        assert_eq!(t.peek(id(2)), Some(TrackerTarget::Forward(9)));
    }

    #[test]
    fn collect_idle_spares_local_trackers() {
        let t = TrackerTable::new();
        t.point(id(1), TrackerTarget::Local);
        t.point(id(2), TrackerTarget::Forward(4));
        std::thread::sleep(Duration::from_millis(5));
        let dropped = t.collect_idle(Duration::from_millis(1));
        assert_eq!(dropped, vec![id(2)]);
        assert_eq!(t.peek(id(1)), Some(TrackerTarget::Local));
        assert_eq!(t.peek(id(2)), None);
    }

    #[test]
    fn remove_and_len() {
        let t = TrackerTable::new();
        t.point(id(1), TrackerTarget::Local);
        assert_eq!(t.len(), 1);
        assert!(t.remove(id(1)));
        assert!(!t.remove(id(1)));
        assert_eq!(t.len(), 0);
    }
}
