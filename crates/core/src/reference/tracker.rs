//! The per-Core tracker table.
//!
//! A tracker is the second half of the stub/tracker split (§3.1): exactly
//! one exists per target complet per Core, shared by every local stub
//! pointing at that target. While the target is local the tracker points
//! at it directly; when the target leaves, the tracker is repointed to the
//! destination Core, forming a forwarding chain that invocation returns
//! shorten.
//!
//! Repoints are **epoch-guarded**: every update carries the move epoch of
//! the location it reports, and the table rejects updates older than what
//! it already knows. Without the guard, a delayed chain-shortening reply
//! from move epoch *n* can repoint a tracker away from the epoch *n+1*
//! location — in the worst case two such stragglers form a forwarding
//! cycle and the complet becomes unreachable from that Core.

use std::collections::HashMap;
use std::time::Duration;

use fargo_telemetry::Clock;
use fargo_wire::CompletId;
use parking_lot::Mutex;

/// Where a tracker currently points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackerTarget {
    /// The complet lives in this Core.
    Local,
    /// The complet left; forward to the Core at this node index.
    Forward(u32),
}

#[derive(Debug)]
struct Tracker {
    target: TrackerTarget,
    /// Invocations successfully dispatched through this tracker.
    hits: u64,
    /// Move epoch of the location this tracker reflects; updates carrying
    /// an older epoch are rejected.
    epoch: u64,
    /// Last update or successful dispatch, in [`Clock`] microseconds.
    updated_at: u64,
}

/// An externally visible view of one tracker (for the shell and monitor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerSnapshot {
    /// The tracked complet.
    pub id: CompletId,
    /// Current direction.
    pub target: TrackerTarget,
    /// Invocations successfully dispatched through this tracker so far.
    pub hits: u64,
    /// Move epoch the tracker last accepted.
    pub epoch: u64,
}

/// What [`TrackerTable::point`] did with an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PointOutcome {
    /// The tracker now points at the given target; `prev` is where it
    /// pointed before (`None` = freshly created), so callers can tell an
    /// actual repoint (a chain shortening) from a no-op confirmation.
    Updated { prev: Option<TrackerTarget> },
    /// The update carried a stale move epoch and was rejected; the
    /// tracker keeps pointing at `current` (epoch `current_epoch`).
    Stale {
        current: TrackerTarget,
        current_epoch: u64,
    },
}

/// The Core's map of trackers, keyed by target complet id.
#[derive(Debug)]
pub(crate) struct TrackerTable {
    map: Mutex<HashMap<CompletId, Tracker>>,
    clock: Clock,
}

impl TrackerTable {
    pub fn new(clock: Clock) -> Self {
        TrackerTable {
            map: Mutex::new(HashMap::new()),
            clock,
        }
    }

    /// Looks up where invocations for `id` should go. Routing alone does
    /// not count as a hit: the caller reports back with
    /// [`TrackerTable::credit`] once the dispatch actually succeeded, so
    /// failed or retried invokes do not inflate the traffic statistics
    /// the planner feeds on.
    pub fn route(&self, id: CompletId) -> Option<TrackerTarget> {
        self.map.lock().get(&id).map(|t| t.target)
    }

    /// Reads a tracker without any routing intent.
    pub fn peek(&self, id: CompletId) -> Option<TrackerTarget> {
        self.map.lock().get(&id).map(|t| t.target)
    }

    /// Reads a tracker together with the move epoch it was accepted at,
    /// so resolvers can rank it against other location hints.
    pub fn peek_with_epoch(&self, id: CompletId) -> Option<(TrackerTarget, u64)> {
        self.map.lock().get(&id).map(|t| (t.target, t.epoch))
    }

    /// Records one successful dispatch through the tracker for `id` and
    /// refreshes its idle timestamp.
    pub fn credit(&self, id: CompletId) {
        let mut map = self.map.lock();
        if let Some(t) = map.get_mut(&id) {
            t.hits += 1;
            t.updated_at = self.clock.now_us();
        }
    }

    /// Points the tracker for `id` at the given target, creating it if
    /// needed. This is both tracker creation on arrival (`Local`) and
    /// repointing on departure or chain shortening (`Forward`). `epoch`
    /// is the move epoch of the reported location: an update older than
    /// what the tracker already accepted is rejected as stale.
    pub fn point(&self, id: CompletId, target: TrackerTarget, epoch: u64) -> PointOutcome {
        let mut map = self.map.lock();
        let now = self.clock.now_us();
        match map.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let t = e.get_mut();
                if epoch < t.epoch {
                    return PointOutcome::Stale {
                        current: t.target,
                        current_epoch: t.epoch,
                    };
                }
                let prev = t.target;
                t.target = target;
                t.epoch = epoch;
                t.updated_at = now;
                PointOutcome::Updated { prev: Some(prev) }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Tracker {
                    target,
                    hits: 0,
                    epoch,
                    updated_at: now,
                });
                PointOutcome::Updated { prev: None }
            }
        }
    }

    /// Creates a forwarding tracker only if none exists yet (used when a
    /// reference with a location hint arrives at a Core that has never
    /// seen the target).
    pub fn seed_forward(&self, id: CompletId, node: u32) {
        let mut map = self.map.lock();
        map.entry(id).or_insert(Tracker {
            target: TrackerTarget::Forward(node),
            hits: 0,
            epoch: 0,
            updated_at: self.clock.now_us(),
        });
    }

    /// Removes the tracker for `id` (complet garbage collected).
    pub fn remove(&self, id: CompletId) -> bool {
        self.map.lock().remove(&id).is_some()
    }

    /// Drops forwarding trackers that have not been touched for `max_idle`
    /// — the runtime's analog of the paper's tracker garbage collection.
    /// Idleness is measured on the table's [`Clock`], so under the
    /// deterministic checker retirement is a function of the schedule
    /// (explicit clock advances), not of how fast the host ran the test.
    /// Local trackers are never collected. Returns the ids dropped, so the
    /// caller can journal each retirement.
    pub fn collect_idle(&self, max_idle: Duration) -> Vec<CompletId> {
        let mut map = self.map.lock();
        let now = self.clock.now_us();
        let max_idle_us = max_idle.as_micros() as u64;
        let mut dropped = Vec::new();
        map.retain(|&id, t| {
            let keep =
                t.target == TrackerTarget::Local || now.saturating_sub(t.updated_at) < max_idle_us;
            if !keep {
                dropped.push(id);
            }
            keep
        });
        dropped.sort();
        dropped
    }

    /// Snapshot of every tracker, for inspection tools.
    pub fn snapshot(&self) -> Vec<TrackerSnapshot> {
        let map = self.map.lock();
        let mut out: Vec<TrackerSnapshot> = map
            .iter()
            .map(|(&id, t)| TrackerSnapshot {
                id,
                target: t.target,
                hits: t.hits,
                epoch: t.epoch,
            })
            .collect();
        out.sort_by_key(|s| s.id);
        out
    }

    /// Number of trackers currently in the table.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> CompletId {
        CompletId::new(0, n)
    }

    fn table() -> TrackerTable {
        TrackerTable::new(Clock::new_virtual(1_000_000))
    }

    #[test]
    fn point_and_route() {
        let t = table();
        assert_eq!(t.route(id(1)), None);
        t.point(id(1), TrackerTarget::Local, 0);
        assert_eq!(t.route(id(1)), Some(TrackerTarget::Local));
        t.point(id(1), TrackerTarget::Forward(3), 1);
        assert_eq!(t.route(id(1)), Some(TrackerTarget::Forward(3)));
    }

    #[test]
    fn hits_accumulate_on_credit_not_route() {
        let t = table();
        t.point(id(1), TrackerTarget::Local, 0);
        t.route(id(1));
        t.route(id(1));
        t.peek(id(1));
        assert_eq!(t.snapshot()[0].hits, 0, "routing alone is not traffic");
        t.credit(id(1));
        t.credit(id(1));
        assert_eq!(t.snapshot()[0].hits, 2);
        t.credit(id(9));
        assert_eq!(t.len(), 1, "crediting a missing tracker is a no-op");
    }

    #[test]
    fn stale_epoch_is_rejected() {
        let t = table();
        t.point(id(1), TrackerTarget::Forward(2), 2);
        let out = t.point(id(1), TrackerTarget::Forward(9), 1);
        assert_eq!(
            out,
            PointOutcome::Stale {
                current: TrackerTarget::Forward(2),
                current_epoch: 2
            }
        );
        assert_eq!(t.peek(id(1)), Some(TrackerTarget::Forward(2)));
        // Same epoch is allowed: chain shortening within one incarnation.
        let out = t.point(id(1), TrackerTarget::Forward(5), 2);
        assert_eq!(
            out,
            PointOutcome::Updated {
                prev: Some(TrackerTarget::Forward(2))
            }
        );
        assert_eq!(t.snapshot()[0].epoch, 2);
        // Newer epochs advance the guard.
        t.point(id(1), TrackerTarget::Local, 3);
        assert_eq!(t.snapshot()[0].epoch, 3);
    }

    #[test]
    fn seed_forward_does_not_clobber() {
        let t = table();
        t.point(id(1), TrackerTarget::Local, 0);
        t.seed_forward(id(1), 9);
        assert_eq!(t.peek(id(1)), Some(TrackerTarget::Local));
        t.seed_forward(id(2), 9);
        assert_eq!(t.peek(id(2)), Some(TrackerTarget::Forward(9)));
    }

    #[test]
    fn collect_idle_is_clock_driven_and_spares_local() {
        let clock = Clock::new_virtual(0);
        let t = TrackerTable::new(clock.clone());
        t.point(id(1), TrackerTarget::Local, 0);
        t.point(id(2), TrackerTarget::Forward(4), 1);
        assert!(
            t.collect_idle(Duration::from_millis(1)).is_empty(),
            "no virtual time has passed, nothing is idle"
        );
        clock.advance(Duration::from_millis(5));
        let dropped = t.collect_idle(Duration::from_millis(1));
        assert_eq!(dropped, vec![id(2)]);
        assert_eq!(t.peek(id(1)), Some(TrackerTarget::Local));
        assert_eq!(t.peek(id(2)), None);
    }

    #[test]
    fn credit_refreshes_idleness() {
        let clock = Clock::new_virtual(0);
        let t = TrackerTable::new(clock.clone());
        t.point(id(2), TrackerTarget::Forward(4), 1);
        clock.advance(Duration::from_millis(5));
        t.credit(id(2));
        assert!(
            t.collect_idle(Duration::from_millis(1)).is_empty(),
            "a fresh dispatch keeps the tracker alive"
        );
    }

    #[test]
    fn remove_and_len() {
        let t = table();
        t.point(id(1), TrackerTarget::Local, 0);
        assert_eq!(t.len(), 1);
        assert!(t.remove(id(1)));
        assert!(!t.remove(id(1)));
        assert_eq!(t.len(), 0);
    }
}
