//! Complet references: stubs, trackers, meta-references, relocators.
//!
//! The paper splits the classic proxy into a **stub** (local, interface-
//! identical, held by the source) and a **tracker** (one per target
//! complet per Core, doing the actual forwarding) — §3.1. In FarGo-RS:
//!
//! * [`CompletRef`] is the stub's portable core: the reference descriptor
//!   plus its meta-reference state. It is what complet state stores and
//!   what crosses the wire.
//! * [`BoundRef`](crate::BoundRef) (in the runtime module) binds a
//!   `CompletRef` to a local Core, yielding the callable stub.
//! * [`TrackerTable`](tracker::TrackerTable) is the per-Core tracker map.
//! * [`Relocator`](relocator::Relocator) reifies reference relocation
//!   semantics; [`MetaRef`](meta::MetaRef) is the reflective handle that
//!   lets a program inspect and change them at runtime (§3.2).

pub(crate) mod meta;
pub(crate) mod relocator;
pub(crate) mod tracker;

pub use meta::MetaRef;
pub use relocator::{ArrivalAction, MarshalAction, Relocator, RelocatorRegistry};
pub use tracker::{TrackerSnapshot, TrackerTarget};

use std::fmt;
use std::sync::Arc;

use fargo_wire::{CompletId, RefDescriptor};
use parking_lot::RwLock;

/// A complet reference — the portable heart of a stub.
///
/// Cloning a `CompletRef` yields another handle to the *same* reference:
/// both clones share one meta-reference, so retyping the reference through
/// either is visible through both (one meta-ref per reference, as in
/// Figure 2 of the paper).
///
/// A `CompletRef` on its own carries no Core affiliation; to invoke
/// through it, bind it with [`Core::stub`](crate::Core::stub) (application
/// code) or call it through [`Ctx::call`](crate::Ctx::call) (complet
/// code).
#[derive(Clone)]
pub struct CompletRef {
    inner: Arc<RwLock<RefDescriptor>>,
}

impl CompletRef {
    /// Wraps a wire descriptor into a live reference.
    pub fn from_descriptor(desc: RefDescriptor) -> Self {
        CompletRef {
            inner: Arc::new(RwLock::new(desc)),
        }
    }

    /// A snapshot of the current descriptor.
    pub fn descriptor(&self) -> RefDescriptor {
        self.inner.read().clone()
    }

    /// The referenced complet's identity.
    pub fn id(&self) -> CompletId {
        self.inner.read().target
    }

    /// The target anchor's type name.
    pub fn target_type(&self) -> String {
        self.inner.read().target_type.clone()
    }

    /// The current relocator (reference type) name.
    pub fn relocator(&self) -> String {
        self.inner.read().relocator.clone()
    }

    /// Whether the reference currently has the default `link` type.
    pub fn is_link(&self) -> bool {
        self.inner.read().is_link()
    }

    /// The node index of the Core where the target was last observed.
    pub fn last_known(&self) -> u32 {
        self.inner.read().last_known
    }

    /// Overwrites the relocator name without registry validation.
    ///
    /// Public code should go through [`MetaRef::set_relocator`], which
    /// validates the name; the runtime uses this directly for degrades.
    pub(crate) fn set_relocator_unchecked(&self, name: &str) {
        self.inner.write().relocator = name.to_owned();
    }

    /// Updates the location hint after learning the target's position.
    pub(crate) fn set_last_known(&self, node: u32) {
        self.inner.write().last_known = node;
    }

    /// Returns a *new, independent* reference to the same target with the
    /// relocator degraded to `link` — the form in which references cross
    /// complet boundaries (§3.1).
    pub fn degraded(&self) -> CompletRef {
        CompletRef::from_descriptor(self.inner.read().degraded())
    }
}

impl fmt::Debug for CompletRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CompletRef({})", self.inner.read())
    }
}

impl fmt::Display for CompletRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner.read())
    }
}

impl PartialEq for CompletRef {
    /// Two references are equal when they point at the same complet
    /// (relocator type does not affect identity).
    fn eq(&self, other: &Self) -> bool {
        self.id() == other.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make() -> CompletRef {
        CompletRef::from_descriptor(RefDescriptor::link(CompletId::new(1, 5), "Message", 2))
    }

    #[test]
    fn accessors_reflect_descriptor() {
        let r = make();
        assert_eq!(r.id(), CompletId::new(1, 5));
        assert_eq!(r.target_type(), "Message");
        assert_eq!(r.relocator(), "link");
        assert_eq!(r.last_known(), 2);
        assert!(r.is_link());
    }

    #[test]
    fn clones_share_the_meta_reference() {
        let r = make();
        let clone = r.clone();
        clone.set_relocator_unchecked("pull");
        assert_eq!(r.relocator(), "pull");
    }

    #[test]
    fn degraded_is_independent() {
        let r = make();
        r.set_relocator_unchecked("pull");
        let d = r.degraded();
        assert!(d.is_link());
        assert_eq!(d.id(), r.id());
        // Changing the degraded copy does not affect the original.
        d.set_relocator_unchecked("stamp");
        assert_eq!(r.relocator(), "pull");
    }

    #[test]
    fn equality_is_target_identity() {
        let a = make();
        let b = make();
        b.set_relocator_unchecked("pull");
        assert_eq!(a, b);
    }
}
