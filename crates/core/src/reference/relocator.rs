//! Relocators: reified reference relocation semantics (§2, §3.3).
//!
//! Each complet reference carries a relocator *name*; the Core resolves it
//! through the [`RelocatorRegistry`] when a movement touches the
//! reference. The four built-in relocators implement the paper's
//! `link` / `pull` / `duplicate` / `stamp` types; applications extend the
//! hierarchy by registering their own [`Relocator`] implementations,
//! exactly as new Java `Relocator` subclasses plug into FarGo's movement
//! protocol.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{FargoError, Result};

/// What the movement unit does with an outgoing reference while marshaling
/// the source complet (§3.3's per-reference marshal routine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarshalAction {
    /// Leave the target where it is; the reference keeps tracking it.
    KeepTracking,
    /// Recurse into the target: it joins the move stream and relocates
    /// along with the source.
    PullTarget,
    /// Marshal a *copy* of the target into the stream; the original stays,
    /// and the moved source is re-bound to the copy.
    DuplicateTarget,
    /// Marshal only the target's type; the destination re-binds the
    /// reference to a local complet of that type.
    StampType,
}

/// What the receiving Core does with the reference while unmarshaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalAction {
    /// Keep the (possibly re-bound) target carried by the stream.
    Keep,
    /// Look up a local complet of the target's type and re-bind to it.
    ResolveByType,
}

/// Reified relocation semantics of a reference type.
///
/// Implementations must be stateless (they describe a *kind* of
/// reference); per-reference state lives in the reference descriptor.
pub trait Relocator: Send + Sync {
    /// The reference type name stored in descriptors (e.g. `"pull"`).
    fn name(&self) -> &str;

    /// Marshal-side behaviour when the *source* complet moves.
    fn marshal_action(&self) -> MarshalAction {
        MarshalAction::KeepTracking
    }

    /// Unmarshal-side behaviour at the destination Core.
    fn arrival_action(&self) -> ArrivalAction {
        ArrivalAction::Keep
    }

    /// One-line human description (shown by the shell and monitor).
    fn describe(&self) -> String {
        format!("user-defined relocator {:?}", self.name())
    }
}

macro_rules! builtin_relocator {
    ($(#[$doc:meta])* $ty:ident, $name:literal, $marshal:expr, $arrival:expr, $desc:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $ty;

        impl Relocator for $ty {
            fn name(&self) -> &str {
                $name
            }
            fn marshal_action(&self) -> MarshalAction {
                $marshal
            }
            fn arrival_action(&self) -> ArrivalAction {
                $arrival
            }
            fn describe(&self) -> String {
                $desc.to_owned()
            }
        }
    };
}

builtin_relocator!(
    /// The default reference type: a remote reference that keeps tracking
    /// its (possibly moving) target.
    Link,
    "link",
    MarshalAction::KeepTracking,
    ArrivalAction::Keep,
    "remote reference that tracks its moving target"
);

builtin_relocator!(
    /// When the source moves, the target automatically moves along.
    Pull,
    "pull",
    MarshalAction::PullTarget,
    ArrivalAction::Keep,
    "target is pulled along when the source relocates"
);

builtin_relocator!(
    /// When the source moves, a copy of the target moves along instead of
    /// the original (useful for read-only data sources).
    Duplicate,
    "duplicate",
    MarshalAction::DuplicateTarget,
    ArrivalAction::Keep,
    "a copy of the target accompanies the relocating source"
);

builtin_relocator!(
    /// When the source relocates, re-bind to an equivalent-typed complet
    /// at the new location (e.g. the local printer).
    Stamp,
    "stamp",
    MarshalAction::StampType,
    ArrivalAction::ResolveByType,
    "re-binds to a same-typed complet at the new location"
);

/// The extensible name → relocator map, shared by the Cores of a process.
#[derive(Clone)]
pub struct RelocatorRegistry {
    map: Arc<RwLock<HashMap<String, Arc<dyn Relocator>>>>,
}

impl RelocatorRegistry {
    /// A registry pre-populated with the four built-in relocators.
    pub fn with_builtins() -> Self {
        let reg = RelocatorRegistry {
            map: Arc::new(RwLock::new(HashMap::new())),
        };
        reg.register(Arc::new(Link));
        reg.register(Arc::new(Pull));
        reg.register(Arc::new(Duplicate));
        reg.register(Arc::new(Stamp));
        reg
    }

    /// Registers (or replaces) a relocator under its own name.
    pub fn register(&self, relocator: Arc<dyn Relocator>) {
        self.map
            .write()
            .insert(relocator.name().to_owned(), relocator);
    }

    /// Resolves a relocator by name.
    ///
    /// # Errors
    ///
    /// Returns [`FargoError::UnknownRelocator`] for unregistered names.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn Relocator>> {
        self.map
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| FargoError::UnknownRelocator(name.to_owned()))
    }

    /// Whether a name is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// All registered relocator names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl Default for RelocatorRegistry {
    fn default() -> Self {
        RelocatorRegistry::with_builtins()
    }
}

impl fmt::Debug for RelocatorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelocatorRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_registered() {
        let reg = RelocatorRegistry::with_builtins();
        assert_eq!(reg.names(), vec!["duplicate", "link", "pull", "stamp"]);
        assert_eq!(
            reg.resolve("pull").unwrap().marshal_action(),
            MarshalAction::PullTarget
        );
        assert_eq!(
            reg.resolve("stamp").unwrap().arrival_action(),
            ArrivalAction::ResolveByType
        );
    }

    #[test]
    fn unknown_name_fails() {
        let reg = RelocatorRegistry::with_builtins();
        assert!(matches!(
            reg.resolve("tether"),
            Err(FargoError::UnknownRelocator(_))
        ));
    }

    #[test]
    fn user_relocators_extend_the_hierarchy() {
        // A user-defined type that behaves like pull on departure but
        // resolves by type on arrival — a combination no builtin has.
        struct Tether;
        impl Relocator for Tether {
            fn name(&self) -> &str {
                "tether"
            }
            fn marshal_action(&self) -> MarshalAction {
                MarshalAction::PullTarget
            }
            fn arrival_action(&self) -> ArrivalAction {
                ArrivalAction::ResolveByType
            }
        }
        let reg = RelocatorRegistry::with_builtins();
        reg.register(Arc::new(Tether));
        assert!(reg.contains("tether"));
        let t = reg.resolve("tether").unwrap();
        assert_eq!(t.marshal_action(), MarshalAction::PullTarget);
        assert!(t.describe().contains("tether"));
    }

    #[test]
    fn builtin_descriptions_are_meaningful() {
        let reg = RelocatorRegistry::with_builtins();
        for name in reg.names() {
            assert!(!reg.resolve(&name).unwrap().describe().is_empty());
        }
    }
}
