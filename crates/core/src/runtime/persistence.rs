//! Core checkpointing — the paper's §7 "persistence model" future work.
//!
//! A checkpoint captures every complet resident on a Core (state, type,
//! and logical names) as one self-describing [`Value`] tree, using the
//! same marshal path movement uses. Restoring installs the complets into
//! another (or a restarted) Core with their identities preserved, so
//! naming re-binds and home registries re-learn locations exactly as if
//! the complets had moved there.
//!
//! A checkpoint is a *cold* snapshot: like movement, it waits for each
//! complet's current invocation to finish, and complets in transit are
//! skipped (they are owned by the move in progress).

use fargo_wire::{CompletId, Value};

use crate::error::{FargoError, Result};
use crate::events::EventPayload;
use crate::runtime::{Core, SlotState};

impl Core {
    /// Captures all resident complets into a portable snapshot.
    ///
    /// # Errors
    ///
    /// Fails with [`FargoError::Timeout`] if a complet stays locked past
    /// the configured transit wait.
    pub fn checkpoint(&self) -> Result<Value> {
        let slots: Vec<_> = self.inner.complets.read().values().cloned().collect();
        let mut complets = Vec::new();
        for slot in slots {
            let guard = slot
                .state
                .try_lock_for(self.inner.config.transit_wait)
                .ok_or(FargoError::Timeout)?;
            if let SlotState::Present(c) = &*guard {
                complets.push(Value::map([
                    ("id", Value::from(slot.id.to_string())),
                    ("type", Value::from(slot.type_name.as_str())),
                    ("state", c.marshal()),
                ]));
            }
        }
        let names: Vec<Value> = self
            .inner
            .naming
            .lock()
            .iter()
            .map(|(name, desc)| {
                Value::map([
                    ("name", Value::from(name.as_str())),
                    ("ref", Value::Ref(desc.clone())),
                ])
            })
            .collect();
        Ok(Value::map([
            ("fargo_checkpoint", Value::from(1i64)),
            ("core", Value::from(self.name())),
            ("complets", Value::List(complets)),
            ("names", Value::List(names)),
        ]))
    }

    /// Installs a snapshot's complets (and name bindings) into this Core.
    ///
    /// Identities are preserved: references that tracked the complets
    /// re-resolve here once their chains or home registries learn the new
    /// location (which this method announces, as arrival does).
    ///
    /// Returns the ids restored.
    ///
    /// # Errors
    ///
    /// Fails on a malformed snapshot, unknown complet types, or state
    /// mismatches; partially restored complets are kept (restoring is
    /// idempotent per complet — re-restore overwrites).
    pub fn restore_checkpoint(&self, snapshot: &Value) -> Result<Vec<CompletId>> {
        if snapshot.get("fargo_checkpoint").and_then(Value::as_i64) != Some(1) {
            return Err(FargoError::InvalidArgument(
                "not a fargo checkpoint".to_owned(),
            ));
        }
        let complets = snapshot
            .get("complets")
            .and_then(Value::as_list)
            .ok_or_else(|| FargoError::InvalidArgument("checkpoint missing complets".into()))?;
        let me = self.node().index();
        let mut restored = Vec::new();
        for entry in complets {
            let id = entry
                .get("id")
                .and_then(Value::as_str)
                .and_then(parse_id)
                .ok_or_else(|| FargoError::InvalidArgument("bad complet id".into()))?;
            let type_name = entry
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| FargoError::InvalidArgument("bad complet type".into()))?
                .to_owned();
            let state = entry
                .get("state")
                .cloned()
                .ok_or_else(|| FargoError::InvalidArgument("missing state".into()))?;
            let mut complet = self.inner.registry.construct(&type_name, &[])?;
            complet.unmarshal(state)?;
            self.install_complet_with_id(id, &type_name, complet);
            if id.origin != me {
                let _ = self.send_to(
                    id.origin,
                    &crate::proto::Message::Notify(crate::proto::Notify::LocationUpdate {
                        target: id,
                        now_at: me,
                        epoch: self.current_move_epoch(id),
                    }),
                );
            }
            self.fire_event(EventPayload::CompletArrived {
                id,
                type_name,
                core: me,
            });
            restored.push(id);
        }
        if let Some(names) = snapshot.get("names").and_then(Value::as_list) {
            let mut naming = self.inner.naming.lock();
            for entry in names {
                if let (Some(name), Some(desc)) = (
                    entry.get("name").and_then(Value::as_str),
                    entry.get("ref").and_then(Value::as_ref_desc),
                ) {
                    naming.insert(name.to_owned(), desc.clone());
                }
            }
        }
        Ok(restored)
    }
}

fn parse_id(s: &str) -> Option<CompletId> {
    let rest = s.strip_prefix('c')?;
    let (origin, seq) = rest.split_once('.')?;
    Some(CompletId::new(origin.parse().ok()?, seq.parse().ok()?))
}
