//! Durability: checkpoint/restore snapshots and the write-ahead log.
//!
//! The paper defers persistence to §7 future work; this module gives the
//! Core two complementary durability mechanisms built on the same
//! marshal path movement uses:
//!
//! * **Checkpoints** — explicit, portable snapshots. [`Core::checkpoint`]
//!   captures every resident complet (state, type, move epoch, logical
//!   names) as one self-describing [`Value`] tree;
//!   [`Core::restore_checkpoint`] installs it into another (or a
//!   restarted) Core with identities preserved. Restore publishes each
//!   complet's new placement to its owning location shard at an epoch
//!   *above* the checkpointed one, so the restored location wins over
//!   stale shard entries and trackers repoint exactly as after a move.
//!   A checkpoint is a *cold* snapshot: it waits for each complet's
//!   current invocation to finish, and complets in transit are skipped —
//!   they are owned by the move in progress — with the skipped ids
//!   reported in [`Checkpoint::skipped`] and journaled.
//!
//! * **The write-ahead log** — implicit, incremental durability
//!   ([`wal`](crate::runtime::wal)). When [`CoreConfig::wal_dir`] is
//!   set, the Core appends every state the caller could have observed as
//!   acknowledged — instantiation, each successful invocation (under
//!   `wal_sync_acks`), arrival, departure, and the two-phase move
//!   verdicts — *before* the acknowledgement leaves this process, and
//!   (under `wal_fsync`, the default) fsyncs each append so the
//!   guarantee covers OS crashes and power loss, not just process
//!   deaths. A
//!   restarted Core replays the log ([`Core::recover_from_wal`], run
//!   automatically at spawn), folds it to crash-time truth, re-installs
//!   survivors at their recorded epochs, re-holds prepared-but-undecided
//!   move streams, and republishes everything to the location shards.
//!   The monitor thread compacts the log once it grows past
//!   `wal_compact_records` appends.
//!
//! [`CoreConfig::wal_dir`]: crate::config::CoreConfig

use std::sync::atomic;
use std::time::Instant;

use fargo_telemetry::JournalKind;
use fargo_wire::{CompletId, RefDescriptor, Value};

use crate::error::{FargoError, Result};
use crate::events::EventPayload;
use crate::reference::tracker::TrackerTarget;
use crate::runtime::{wal, Core, SlotState};

/// The result of [`Core::checkpoint`]: the snapshot plus the ids the
/// snapshot does **not** cover.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The self-describing snapshot tree (feed to
    /// [`Core::restore_checkpoint`]).
    pub snapshot: Value,
    /// Complets that were in transit (or already gone) at capture time
    /// and are therefore absent from the snapshot. Callers that need a
    /// complete image must re-checkpoint once these moves settle.
    pub skipped: Vec<CompletId>,
}

impl Core {
    /// Captures all resident complets into a portable snapshot.
    ///
    /// Complets in transit are owned by their in-flight move and cannot
    /// be captured; their ids come back in [`Checkpoint::skipped`] (and
    /// are journaled as `ckpt_skip`) instead of being silently dropped.
    ///
    /// # Errors
    ///
    /// Fails with [`FargoError::Timeout`] if a complet stays locked past
    /// the configured transit wait.
    pub fn checkpoint(&self) -> Result<Checkpoint> {
        let slots: Vec<_> = self.inner.complets.read().values().cloned().collect();
        let mut complets = Vec::new();
        let mut skipped = Vec::new();
        for slot in slots {
            let guard = slot
                .state
                .try_lock_for(self.inner.config.transit_wait)
                .ok_or(FargoError::Timeout)?;
            match &*guard {
                SlotState::Present(c) => {
                    complets.push(Value::map([
                        ("id", Value::from(slot.id.to_string())),
                        ("type", Value::from(slot.type_name.as_str())),
                        ("state", c.marshal()),
                        (
                            "epoch",
                            Value::from(self.current_move_epoch(slot.id) as i64),
                        ),
                    ]));
                }
                other => {
                    let detail = match other {
                        SlotState::InTransit => "in_transit",
                        _ => "gone",
                    };
                    self.inner.telemetry.journal(
                        JournalKind::CheckpointSkipped,
                        &slot.id,
                        &slot.type_name,
                        detail,
                        None,
                    );
                    skipped.push(slot.id);
                }
            }
        }
        let names: Vec<Value> = self
            .inner
            .naming
            .lock()
            .iter()
            .map(|(name, desc)| {
                Value::map([
                    ("name", Value::from(name.as_str())),
                    ("ref", Value::Ref(desc.clone())),
                ])
            })
            .collect();
        Ok(Checkpoint {
            snapshot: Value::map([
                ("fargo_checkpoint", Value::from(1i64)),
                ("core", Value::from(self.name())),
                ("complets", Value::List(complets)),
                ("names", Value::List(names)),
            ]),
            skipped,
        })
    }

    /// Installs a snapshot's complets (and name bindings) into this Core.
    ///
    /// Identities are preserved: references that tracked the complets
    /// re-resolve here once their chains, home registries, or location
    /// shards learn the new placement — which this method publishes at an
    /// epoch above the checkpointed one, so the restored location beats
    /// any stale entry left by the pre-checkpoint host. Complets are
    /// revived through the side-effect-free reviver path: constructor
    /// (`init`) side effects ran at instantiation and do **not** run
    /// again here.
    ///
    /// Returns the ids restored.
    ///
    /// # Errors
    ///
    /// Fails on a malformed snapshot, unknown complet types, or state
    /// mismatches; partially restored complets are kept (restoring is
    /// idempotent per complet — re-restore overwrites).
    pub fn restore_checkpoint(&self, snapshot: &Value) -> Result<Vec<CompletId>> {
        if snapshot.get("fargo_checkpoint").and_then(Value::as_i64) != Some(1) {
            return Err(FargoError::InvalidArgument(
                "not a fargo checkpoint".to_owned(),
            ));
        }
        let complets = snapshot
            .get("complets")
            .and_then(Value::as_list)
            .ok_or_else(|| FargoError::InvalidArgument("checkpoint missing complets".into()))?;
        let me = self.node().index();
        let mut restored = Vec::new();
        for entry in complets {
            let id = entry
                .get("id")
                .and_then(Value::as_str)
                .and_then(wal::parse_id)
                .ok_or_else(|| FargoError::InvalidArgument("bad complet id".into()))?;
            let type_name = entry
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| FargoError::InvalidArgument("bad complet type".into()))?
                .to_owned();
            let state = entry
                .get("state")
                .cloned()
                .ok_or_else(|| FargoError::InvalidArgument("missing state".into()))?;
            let epoch = entry.get("epoch").and_then(Value::as_i64).unwrap_or(0) as u64;
            let complet = self.inner.registry.reconstruct(&type_name, state)?;
            // Seed the move epoch *above* the checkpointed one before
            // installing: the install path points the tracker and
            // publishes the shard delta at the current epoch, and only
            // an epoch past the snapshot's beats the stale entry still
            // naming the pre-checkpoint host.
            {
                let mut epochs = self.inner.move_epochs.lock();
                let e = epochs.entry(id).or_insert(0);
                *e = (*e).max(epoch + 1);
            }
            self.install_complet_with_id(id, &type_name, complet);
            self.wal_capture(id);
            if id.origin != me {
                let _ = self.send_to(
                    id.origin,
                    &crate::proto::Message::Notify(crate::proto::Notify::LocationUpdate {
                        target: id,
                        now_at: me,
                        epoch: self.current_move_epoch(id),
                    }),
                );
            }
            self.fire_event(EventPayload::CompletArrived {
                id,
                type_name,
                core: me,
            });
            restored.push(id);
        }
        if let Some(names) = snapshot.get("names").and_then(Value::as_list) {
            let mut naming = self.inner.naming.lock();
            for entry in names {
                if let (Some(name), Some(desc)) = (
                    entry.get("name").and_then(Value::as_str),
                    entry.get("ref").and_then(Value::as_ref_desc),
                ) {
                    naming.insert(name.to_owned(), desc.clone());
                }
            }
        }
        Ok(restored)
    }

    // --- write-ahead log ---------------------------------------------------

    /// Appends one record to the write-ahead log; a no-op when the log is
    /// disabled. Append failures are counted, not surfaced — durability
    /// degrades, the running cluster does not stop.
    pub(crate) fn wal_append(&self, record: &wal::WalRecord) {
        let Some(wal) = &self.inner.wal else { return };
        match wal.append(record) {
            Ok(()) => self.inner.telemetry.wal_appends_total.inc(),
            Err(_) => self.inner.telemetry.wal_errors_total.inc(),
        }
    }

    /// Captures a resident complet's current state into the log (no-op
    /// when the log is disabled, the complet is absent, or it is not
    /// `Present`). Must not be called while the caller holds the slot
    /// lock — use [`Core::wal_capture_state`] with a pre-marshaled state
    /// from inside a locked section.
    pub(crate) fn wal_capture(&self, id: CompletId) {
        if self.inner.wal.is_none() {
            return;
        }
        let Some(slot) = self.inner.complets.read().get(&id).cloned() else {
            return;
        };
        let state = {
            let guard = slot.state.lock();
            match &*guard {
                SlotState::Present(c) => c.marshal(),
                _ => return,
            }
        };
        self.wal_capture_state(id, &slot.type_name, state);
    }

    /// Appends a `State` record from an already-marshaled state. Safe
    /// to call while the caller holds the slot lock — the invocation
    /// path does exactly that, so a concurrent invocation of the same
    /// complet cannot interleave a newer append under this one.
    pub(crate) fn wal_capture_state(&self, id: CompletId, type_name: &str, state: Value) {
        if self.inner.wal.is_none() {
            return;
        }
        let names: Vec<String> = self
            .inner
            .naming
            .lock()
            .iter()
            .filter(|(_, d)| d.target == id)
            .map(|(n, _)| n.clone())
            .collect();
        self.wal_append(&wal::WalRecord::State(wal::WalState {
            id,
            type_name: type_name.to_owned(),
            state,
            epoch: self.current_move_epoch(id),
            names,
        }));
    }

    /// Replays this Core's write-ahead log after a restart: re-installs
    /// every complet whose state was acknowledged before the crash (at
    /// its recorded move epoch, republished to the location shards),
    /// reloads the two-phase verdict logs, and re-holds
    /// prepared-but-undecided move streams for resolution against their
    /// sources. Called automatically from `spawn` when `wal_recover` is
    /// on; the folded log is compacted afterwards so the next restart
    /// replays the minimum.
    pub(crate) fn recover_from_wal(&self) {
        let Some(wal) = &self.inner.wal else { return };
        let started = Instant::now();
        let replay = match wal::Wal::replay_path(wal.path()) {
            Ok(r) => r,
            Err(_) => {
                self.inner.telemetry.wal_errors_total.inc();
                return;
            }
        };
        if replay.records.is_empty() && replay.corrupt == 0 {
            return;
        }
        let me = self.inner.node.index();
        let t = &self.inner.telemetry;
        t.journal(
            JournalKind::RecoveryStarted,
            &CompletId::new(me, 0),
            "",
            &replay.records.len().to_string(),
            None,
        );
        let folded = wal::fold(&replay.records);
        // Re-seed the id allocator past every locally minted id the log
        // has ever seen — survivors *and* departed/decided ids — so a
        // post-recovery `new_complet` can never re-mint an id that is
        // still live here or, worse, living on elsewhere.
        let mut max_seq = 0u64;
        let mut bump = |id: CompletId| {
            if id.origin == me {
                max_seq = max_seq.max(id.seq);
            }
        };
        for r in &replay.records {
            match r {
                wal::WalRecord::State(s) => bump(s.id),
                wal::WalRecord::Departed { id, .. } => bump(*id),
                wal::WalRecord::Held(h) => {
                    bump(h.root);
                    for p in &h.packets {
                        bump(p.id);
                    }
                }
                wal::WalRecord::HeldResolved { root, .. } => bump(*root),
                wal::WalRecord::Decision { root, ids, .. } => {
                    bump(*root);
                    for id in ids {
                        bump(*id);
                    }
                }
            }
        }
        self.inner
            .complet_seq
            .fetch_max(max_seq + 1, atomic::Ordering::SeqCst);
        // The verdict logs first: a recovered survivor set is only safe
        // to expose once in-doubt queries from peers answer correctly.
        for &(root, epoch, committed) in &folded.decisions {
            self.inner.move_decisions.record(root, epoch, committed);
        }
        for &(root, epoch, committed) in &folded.outcomes {
            self.inner.move_outcomes.record(root, epoch, committed);
        }
        let mut replayed = 0usize;
        for s in &folded.survivors {
            if self.hosts(s.id) {
                continue;
            }
            let complet = match self
                .inner
                .registry
                .reconstruct(&s.type_name, s.state.clone())
            {
                Ok(c) => c,
                Err(_) => {
                    t.wal_errors_total.inc();
                    continue;
                }
            };
            // Re-install at the recorded epoch — the epoch the shards
            // already associate with this placement — so the republished
            // delta is idempotent rather than a spurious new incarnation.
            {
                let mut epochs = self.inner.move_epochs.lock();
                let e = epochs.entry(s.id).or_insert(0);
                *e = (*e).max(s.epoch);
            }
            self.install_complet_with_id(s.id, &s.type_name, complet);
            {
                let mut naming = self.inner.naming.lock();
                for name in &s.names {
                    naming.insert(name.clone(), RefDescriptor::link(s.id, &s.type_name, me));
                }
            }
            t.journal(
                JournalKind::RecoveryReplayed,
                &s.id,
                &s.type_name,
                &s.epoch.to_string(),
                None,
            );
            self.fire_event(EventPayload::CompletArrived {
                id: s.id,
                type_name: s.type_name.clone(),
                core: me,
            });
            replayed += 1;
        }
        // Rebuild the routing state the crash destroyed: every departure
        // still in effect becomes a forwarding tracker again, and — when
        // this Core is the complet's origin — a home-registry entry. A
        // restarted origin that forgot its forwards dead-ends every
        // tracker chain through it, orphaning complets that live on
        // elsewhere perfectly intact.
        let mut forwards = 0usize;
        for &(id, epoch, dest) in &folded.departed {
            if self.hosts(id) || dest == me {
                continue;
            }
            let _ = self
                .inner
                .trackers
                .point(id, TrackerTarget::Forward(dest), epoch);
            self.note_location(id, dest, epoch);
            t.journal(
                JournalKind::TrackerForwarded,
                &id,
                "",
                "recovered",
                Some(dest),
            );
            forwards += 1;
        }
        let mut held = 0usize;
        for h in folded.held {
            if self.rehold_recovered(h) {
                held += 1;
            }
        }
        t.recovery_replayed_total.add(replayed as u64);
        t.recovery_held_total.add(held as u64);
        t.recovery_corrupt_total.add(replay.corrupt as u64);
        let report = wal::RecoveryReport {
            replayed,
            held,
            forwards,
            corrupt: replay.corrupt,
            duration_us: started.elapsed().as_micros() as u64,
        };
        t.recovery_duration_us.set(report.duration_us as f64);
        *self.inner.recovery.lock() = Some(report);
        // Fold-and-rewrite: the replayed prefix (including any corrupt
        // tail) is dead weight for the next restart.
        self.wal_compact_now();
    }

    /// What the last [`Core::recover_from_wal`] run replayed, or `None`
    /// when this Core did not recover from a log.
    pub fn recovery_report(&self) -> Option<wal::RecoveryReport> {
        self.inner.recovery.lock().clone()
    }

    /// Rewrites the write-ahead log to its folded minimum: one `State`
    /// per resident complet, the unresolved held streams, the retained
    /// two-phase verdicts, and one `Departed` per live forward. A no-op
    /// when the log is disabled.
    ///
    /// The log itself is the source of truth — every acknowledged state
    /// change is already a record in it — so compaction folds the file
    /// under the append lock ([`wal::Wal::compact`]) instead of
    /// re-marshaling live slots. Re-marshaling raced the invoke path: a
    /// mutation acknowledged between the slot snapshot and the file
    /// swap was silently erased from the log.
    pub fn wal_compact_now(&self) {
        let Some(wal) = &self.inner.wal else { return };
        let mut extra: Vec<wal::WalRecord> = Vec::new();
        for (root, epoch, committed) in self.inner.move_decisions.snapshot() {
            // Departures are already folded into the log's Departed
            // records; the verdict itself must outlive the restart so
            // in-doubt peers still get an answer — hence empty
            // `ids`/`dest`.
            extra.push(wal::WalRecord::Decision {
                root,
                epoch,
                committed,
                ids: vec![],
                dest: 0,
            });
        }
        for (root, epoch, committed) in self.inner.move_outcomes.snapshot() {
            extra.push(wal::WalRecord::HeldResolved {
                root,
                epoch,
                committed,
            });
        }
        // Forwarding trackers are durable routing state: an origin Core
        // that compacted away its Departed records and then crashed would
        // otherwise dead-end every chain that runs through it. The
        // tracker table is at least as fresh as the log's own Departed
        // records (repoints land before the WAL append) and goes last,
        // so it wins the next fold.
        for t in self.inner.trackers.snapshot() {
            if let TrackerTarget::Forward(dest) = t.target {
                extra.push(wal::WalRecord::Departed {
                    id: t.id,
                    epoch: t.epoch,
                    dest: Some(dest),
                });
            }
        }
        match wal.compact(&extra) {
            Ok(n) => {
                self.inner.telemetry.wal_compactions_total.inc();
                self.inner.telemetry.journal(
                    JournalKind::WalCompacted,
                    &CompletId::new(self.inner.node.index(), 0),
                    "",
                    &n.to_string(),
                    None,
                );
            }
            Err(_) => self.inner.telemetry.wal_errors_total.inc(),
        }
    }

    /// Monitor-tick hook: compacts once the log accumulates
    /// `wal_compact_records` appends since the last rewrite.
    pub(crate) fn wal_compact_if_due(&self) {
        let Some(wal) = &self.inner.wal else { return };
        if wal.appends_since_rewrite() >= self.inner.config.wal_compact_records {
            self.wal_compact_now();
        }
    }
}
