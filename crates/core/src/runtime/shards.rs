//! The sharded location service: Core-side integration of `fargo-naming`.
//!
//! The home-registry role (§7) is consistent-hashed across Cores: each
//! complet id has one *owning* Core whose [`fargo_naming::LocationShard`]
//! holds the authoritative `(node, move_epoch)` entry for it. Layout
//! changes publish to the owner (locally or as a directed
//! [`Notify::ShardDelta`]); accepted deltas feed a bounded gossip log
//! whose contents piggyback on ordinary outgoing envelopes, so every
//! Core's tracker table doubles as a lazily-refreshed hint cache.
//! Resolution ([`Core::locate_explain`]) then goes cache → shard →
//! chain walk, with a stale cache detected by a move-epoch mismatch and
//! repaired in place.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use fargo_naming::{ApplyOutcome, Delta, HashRing, ShardEntry};
use fargo_telemetry::JournalKind;
use fargo_wire::CompletId;

use crate::error::{FargoError, Result};
use crate::proto::{Message, Notify, Reply, Request};
use crate::reference::tracker::TrackerTarget;
use crate::runtime::Core;

/// How a [`Core::locate_explain`] resolution found its answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveVia {
    /// The complet lives on the asking Core.
    Hosted,
    /// A local hint (tracker or home entry) pointed straight at the
    /// current host, confirmed without consulting the shard.
    Cache,
    /// The owning location shard answered (locally or in one hop).
    Shard,
    /// The tracker chain was walked, `WhereIs` hop by hop.
    Chain,
}

impl ResolveVia {
    /// Short label for shell output and test assertions.
    pub fn label(self) -> &'static str {
        match self {
            ResolveVia::Hosted => "hosted",
            ResolveVia::Cache => "cache",
            ResolveVia::Shard => "shard",
            ResolveVia::Chain => "chain",
        }
    }
}

/// The result of [`Core::locate_explain`]: where the complet is, how the
/// resolution got there, and what it cost.
#[derive(Debug, Clone, Copy)]
pub struct LocateReport {
    /// Node index of the Core hosting the complet.
    pub node: u32,
    /// Which layer of the resolution stack produced the answer.
    pub via: ResolveVia,
    /// Network round trips spent resolving.
    pub hops: u32,
    /// Move epoch of the winning belief (0 = never moved / unknown).
    pub epoch: u64,
}

impl Core {
    /// Whether the sharded location service is active on this Core.
    pub(crate) fn naming_enabled(&self) -> bool {
        self.inner.config.naming_shards
    }

    /// The Core owning `id`'s slice of the location ring, refreshing the
    /// ring first if cluster membership changed since it was built.
    /// Refreshing hands off entries this Core no longer owns, so the
    /// authoritative copy follows the ring.
    pub(crate) fn ring_owner(&self, id: CompletId) -> Option<u32> {
        self.refresh_ring();
        self.inner.ring.lock().owner_of(id)
    }

    /// Rebuilds the ring when membership changed. Returns how many
    /// entries were handed off to new owners (0 when nothing changed).
    fn refresh_ring(&self) -> usize {
        let members: Vec<u32> = self
            .inner
            .net
            .node_ids()
            .iter()
            .map(|n| n.index())
            .collect();
        let rebuilt = {
            let mut ring = self.inner.ring.lock();
            if !ring.membership_changed(&members) {
                return 0;
            }
            *ring = HashRing::new(&members, self.inner.config.naming_vnodes);
            ring.clone()
        };
        self.shard_handoff(&rebuilt)
    }

    /// Streams every shard entry the rebuilt ring assigns elsewhere to
    /// its new owner (grouped per owner into one `ShardDelta` notify).
    fn shard_handoff(&self, ring: &HashRing) -> usize {
        let me = self.inner.node.index();
        let lost = self.inner.shard.drain_not_owned(ring, me);
        if lost.is_empty() {
            return 0;
        }
        self.inner
            .telemetry
            .naming_handoffs_total
            .add(lost.len() as u64);
        let mut by_owner: BTreeMap<u32, Vec<(CompletId, u32, u64, bool)>> = BTreeMap::new();
        for (id, e) in &lost {
            if let Some(owner) = ring.owner_of(*id) {
                by_owner
                    .entry(owner)
                    .or_default()
                    .push((*id, e.node, e.epoch, e.alive));
            }
        }
        for (owner, entries) in by_owner {
            let _ = self.send_to(owner, &Message::Notify(Notify::ShardDelta { entries }));
        }
        lost.len()
    }

    /// Publishes one location fact to its owning shard: applied locally
    /// when this Core owns the id, otherwise sent as a directed delta.
    /// `alive = false` publishes a tombstone (release).
    pub(crate) fn publish_location(&self, id: CompletId, node: u32, epoch: u64, alive: bool) {
        if !self.naming_enabled() {
            return;
        }
        self.inner.telemetry.naming_publishes_total.inc();
        let Some(owner) = self.ring_owner(id) else {
            return;
        };
        if owner == self.inner.node.index() {
            self.apply_shard_delta(id, ShardEntry { node, epoch, alive });
        } else {
            let _ = self.send_to(
                owner,
                &Message::Notify(Notify::ShardDelta {
                    entries: vec![(id, node, epoch, alive)],
                }),
            );
        }
    }

    /// Applies one delta to the local authoritative shard under the
    /// epoch guard. An accepted entry is journaled (`shard_apply`:
    /// subject = complet, object = node or "gone", detail = epoch) and
    /// appended to the gossip log; a republish of what the shard already
    /// holds changes nothing and stays silent.
    pub(crate) fn apply_shard_delta(&self, id: CompletId, e: ShardEntry) -> ApplyOutcome {
        let out = self.inner.shard.apply(id, e);
        if out == ApplyOutcome::Applied {
            let object = if e.alive {
                e.node.to_string()
            } else {
                "gone".to_owned()
            };
            self.inner.telemetry.journal(
                JournalKind::ShardApplied,
                &id,
                &object,
                &e.epoch.to_string(),
                Some(e.node),
            );
            self.inner.shard_deltas.push(Delta {
                id,
                node: e.node,
                epoch: e.epoch,
                alive: e.alive,
            });
        }
        out
    }

    /// Handles a directed [`Notify::ShardDelta`]: entries this Core owns
    /// are applied; entries the ring assigns elsewhere (handoff overlap
    /// or a peer's momentarily older ring) are forwarded to their owner.
    /// Rings are pure functions of membership, so forwarding terminates
    /// as soon as the views agree.
    pub(crate) fn absorb_shard_publishes(&self, entries: Vec<(CompletId, u32, u64, bool)>) {
        let me = self.inner.node.index();
        let t = &self.inner.telemetry;
        t.naming_deltas_in_total.add(entries.len() as u64);
        let mut forward: BTreeMap<u32, Vec<(CompletId, u32, u64, bool)>> = BTreeMap::new();
        for (id, node, epoch, alive) in entries {
            match self.ring_owner(id) {
                Some(owner) if owner == me => {
                    self.apply_shard_delta(id, ShardEntry { node, epoch, alive });
                }
                Some(owner) => {
                    forward
                        .entry(owner)
                        .or_default()
                        .push((id, node, epoch, alive));
                }
                None => {}
            }
        }
        for (owner, entries) in forward {
            let _ = self.send_to(owner, &Message::Notify(Notify::ShardDelta { entries }));
        }
    }

    /// Drains the next batch of gossip deltas destined for `peer`,
    /// advancing its cursor. Empty when gossip is off or the peer is
    /// caught up — the envelope then omits the `nd` field entirely and
    /// stays byte-identical to the pre-gossip encoding.
    pub(crate) fn gossip_batch_for(&self, peer: u32) -> Vec<(CompletId, u32, u64, bool)> {
        let batch = self.inner.config.naming_gossip_batch;
        if !self.naming_enabled() || batch == 0 || peer == self.inner.node.index() {
            return Vec::new();
        }
        let mut cursors = self.inner.gossip_cursors.lock();
        let cursor = cursors.get(&peer).copied().unwrap_or(0);
        let (deltas, next) = self.inner.shard_deltas.since(cursor, batch);
        cursors.insert(peer, next);
        drop(cursors);
        if !deltas.is_empty() {
            self.inner
                .telemetry
                .naming_deltas_out_total
                .add(deltas.len() as u64);
        }
        deltas
            .into_iter()
            .map(|d| (d.id, d.node, d.epoch, d.alive))
            .collect()
    }

    /// Absorbs gossip that rode in on an envelope: every delta is a
    /// *hint*, fed through the same epoch-guarded tracker update a
    /// passing reply would get (chains demoted to cache). Deltas this
    /// Core happens to own are also applied authoritatively.
    pub(crate) fn absorb_gossip(&self, entries: Vec<(CompletId, u32, u64, bool)>) {
        if entries.is_empty() || !self.naming_enabled() {
            return;
        }
        let me = self.inner.node.index();
        self.inner
            .telemetry
            .naming_deltas_in_total
            .add(entries.len() as u64);
        for (id, node, epoch, alive) in entries {
            // Anti-entropy re-circulates old deltas forever by design, so
            // a hint that is not strictly fresher than the current belief
            // is dropped here silently — routing it through the tracker
            // update would journal a trk_stale rejection per round.
            let fresher = self
                .inner
                .trackers
                .peek_with_epoch(id)
                .is_none_or(|(_, cur)| epoch > cur);
            if alive && fresher {
                self.learn_location(id, node, epoch);
            }
            if self.ring_owner(id) == Some(me) {
                self.apply_shard_delta(id, ShardEntry { node, epoch, alive });
            }
        }
    }

    /// Consults the owning location shard for `id`: the local shard when
    /// this Core owns it (0 hops), otherwise one `LocateQuery` round
    /// trip. Returns `(node, epoch, hops)` for a live entry, `None` for
    /// no entry / a tombstone / naming disabled / owner unreachable.
    pub(crate) fn shard_consult(&self, id: CompletId) -> Option<(u32, u64, u32)> {
        if !self.naming_enabled() {
            return None;
        }
        let owner = self.ring_owner(id)?;
        if owner == self.inner.node.index() {
            let e = self.inner.shard.lookup(id)?;
            return e.alive.then_some((e.node, e.epoch, 0));
        }
        match self.rpc(owner, Request::LocateQuery { id }) {
            Ok(Reply::LocateOk {
                node: Some(n),
                epoch,
            }) => Some((n, epoch, 1)),
            _ => None,
        }
    }

    /// The freshest local hint for `id` — the tracker entry and (for
    /// complets originated here) the home-registry entry, ranked by move
    /// epoch — excluding hints that point at this Core itself. This is
    /// the fallback-ordering fix: an older resolver always restarted the
    /// walk from the tracker (or the origin) even when the home registry
    /// held a strictly fresher epoch.
    pub(crate) fn best_hint(&self, id: CompletId) -> Option<(u32, u64)> {
        let me = self.inner.node.index();
        let mut best: Option<(u32, u64)> = None;
        if let Some((TrackerTarget::Forward(n), e)) = self.inner.trackers.peek_with_epoch(id) {
            if n != me {
                best = Some((n, e));
            }
        }
        if id.origin == me {
            if let Some(&(n, e)) = self.inner.home.lock().get(&id) {
                if n != me && best.map(|(_, be)| e > be).unwrap_or(true) {
                    best = Some((n, e));
                }
            }
        }
        best
    }

    /// Resolves a complet's current host and reports how: local slot →
    /// hint cache → owning shard → tracker-chain walk. The shard answer
    /// also repairs a stale cache in place (epoch mismatch), so the next
    /// resolution short-circuits.
    ///
    /// # Errors
    ///
    /// Fails when no layer admits to knowing the complet, or the chain
    /// walk exhausts `max_hops`.
    pub fn locate_explain(&self, id: CompletId) -> Result<LocateReport> {
        let me = self.inner.node.index();
        let t = &self.inner.telemetry;
        t.naming_lookups_total.inc();
        if self.hosts(id) {
            t.naming_lookup_hops.observe(0);
            return Ok(LocateReport {
                node: me,
                via: ResolveVia::Hosted,
                hops: 0,
                epoch: self.current_move_epoch(id),
            });
        }
        let hint = self.best_hint(id);
        if let Some((node, epoch, shard_hops)) = self.shard_consult(id) {
            let via = match hint {
                // The cache already knew at least this incarnation; the
                // shard merely confirmed it.
                Some((hn, he)) if hn == node && he >= epoch => ResolveVia::Cache,
                // The cache was behind (or empty): adopt the shard's
                // belief so the next lookup is local.
                _ => {
                    if hint.is_some() {
                        t.naming_repairs_total.inc();
                    }
                    self.learn_location(id, node, epoch);
                    ResolveVia::Shard
                }
            };
            if node != me {
                t.naming_lookup_hops.observe(u64::from(shard_hops));
                return Ok(LocateReport {
                    node,
                    via,
                    hops: shard_hops,
                    epoch,
                });
            }
            // The shard says "here" but the slot is gone: a departure is
            // mid-flight and the shard has not heard yet. Fall through to
            // the chain, whose forward was repointed before our slot was
            // released.
            return self.chain_walk(id, hint, shard_hops);
        }
        self.chain_walk(id, hint, 0)
    }

    /// The demoted resolution path: walk `WhereIs` answers from the best
    /// local hint (or the origin Core) until some Core claims the
    /// complet. `spent` seeds the hop count with round trips the caller
    /// already paid.
    fn chain_walk(
        &self,
        id: CompletId,
        hint: Option<(u32, u64)>,
        spent: u32,
    ) -> Result<LocateReport> {
        let me = self.inner.node.index();
        let t = &self.inner.telemetry;
        let mut cur = match hint {
            Some((n, _)) => n,
            None => id.origin,
        };
        if cur == me {
            // No outbound hint and the trail leads to ourselves: nothing
            // left to ask.
            return Err(FargoError::UnknownComplet(id));
        }
        let mut hops = spent;
        for _ in 0..self.inner.config.max_hops {
            hops += 1;
            match self.rpc(cur, Request::WhereIs { id })? {
                Reply::WhereOk { node: Some(n) } => {
                    if n == cur {
                        t.naming_lookup_hops.observe(u64::from(hops));
                        return Ok(LocateReport {
                            node: n,
                            via: ResolveVia::Chain,
                            hops,
                            epoch: hint.map(|(_, e)| e).unwrap_or(0),
                        });
                    }
                    cur = n;
                }
                Reply::WhereOk { node: None } => return Err(FargoError::UnknownComplet(id)),
                Reply::Err(e) => return Err(e),
                other => return Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
            }
        }
        Err(FargoError::HopLimit(self.inner.config.max_hops))
    }

    /// Resolves a complet's current host (see [`Core::locate_explain`]
    /// for the how).
    ///
    /// # Errors
    ///
    /// Fails when no Core admits to knowing the complet.
    pub fn locate(&self, id: CompletId) -> Result<u32> {
        self.locate_explain(id).map(|r| r.node)
    }

    /// Forces a ring refresh (handing off entries whose ownership moved)
    /// and republishes one anti-entropy batch of this shard's entries
    /// into the gossip log. Called by the monitor tick; public so tests
    /// and tools can drive it with the monitor parked. Returns
    /// `(entries handed off, entries republished)`.
    pub fn naming_rebalance(&self) -> (usize, usize) {
        if !self.naming_enabled() {
            return (0, 0);
        }
        let handed = self.refresh_ring();
        let batch = self.inner.config.naming_gossip_batch;
        if batch == 0 {
            return (handed, 0);
        }
        let snapshot = self.inner.shard.snapshot();
        if snapshot.is_empty() {
            return (handed, 0);
        }
        // Rotate through the shard one batch per call so a large shard
        // is republished over several ticks instead of flooding one.
        let pos = self
            .inner
            .antientropy_pos
            .fetch_add(batch as u64, Ordering::Relaxed) as usize
            % snapshot.len();
        let mut republished = 0;
        for (id, e) in snapshot
            .iter()
            .cycle()
            .skip(pos)
            .take(batch.min(snapshot.len()))
        {
            self.inner.shard_deltas.push(Delta {
                id: *id,
                node: e.node,
                epoch: e.epoch,
                alive: e.alive,
            });
            republished += 1;
        }
        (handed, republished)
    }

    /// Current size of this Core's authoritative shard:
    /// `(total entries, live entries)`.
    pub fn naming_shard_size(&self) -> (usize, usize) {
        let total = self.inner.shard.len();
        let alive = self.inner.shard.alive().len();
        (total, alive)
    }

    /// The live entries of the authoritative shard at `node` — `(id,
    /// host, epoch)` triples; this Core's own shard when `node` is
    /// itself. The union across all Cores is the cluster's placement in
    /// one RPC per Core, however many complets each Core hosts.
    ///
    /// # Errors
    ///
    /// Fails when the peer is unknown or unreachable.
    pub fn shard_live_at(&self, node: u32) -> Result<Vec<(CompletId, u32, u64)>> {
        if node == self.inner.node.index() {
            return Ok(self
                .inner
                .shard
                .alive()
                .into_iter()
                .map(|(id, e)| (id, e.node, e.epoch))
                .collect());
        }
        match self.rpc(node, Request::ShardList)? {
            Reply::ShardEntries { entries } => Ok(entries),
            Reply::Err(e) => Err(e),
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}
