//! The Core: FarGo's stationary per-host runtime component (§3).
//!
//! One [`Core`] runs per network node. It hosts complets, realises complet
//! references (stub/tracker), moves complets under layout constraints,
//! implements the invocation parameter-passing scheme, serves naming, and
//! runs the monitoring facility — the architecture of the paper's
//! Figure 1, with `simnet` as the Peer Interface.

pub(crate) mod invocation;
pub(crate) mod movement;
pub(crate) mod naming;
pub(crate) mod persistence;
pub(crate) mod reliable;
pub(crate) mod shards;
pub(crate) mod wal;

pub use persistence::Checkpoint;
pub use shards::{LocateReport, ResolveVia};
pub use wal::RecoveryReport;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use fargo_net::{
    DeliveryGate, SimnetTransport, TcpTransport, TcpTransportConfig, Transport, TransportError,
};
use fargo_telemetry::{
    merge_timelines, render_snapshots_json, render_span_tree, AccountRecord, HealthEngine,
    HealthSample, Histogram, Hlc, JournalEvent, JournalKind, LayoutHistory, MatrixCell,
    Registry as TelemetryRegistry, RuleStatus, SlowRecord, SpanRecord, TraceContext,
};
use fargo_wire::{CompletId, RefDescriptor, Value};
use parking_lot::{Mutex, RwLock};
use simnet::{Endpoint, Network, NodeId};

use crate::complet::{Complet, CompletRegistry};
use crate::config::{CoreConfig, TransportKind};
use crate::ctx::Ctx;
use crate::error::{FargoError, Result};
use crate::events::{Delivery, EventHandler, EventHub, EventPayload};
use crate::monitor::{Monitor, Service};
use crate::proto::{ListenerAddr, Message, Notify, Reply, ReqId, Request};
use crate::reference::relocator::RelocatorRegistry;
use crate::reference::tracker::{PointOutcome, TrackerSnapshot, TrackerTable, TrackerTarget};
use crate::reference::{CompletRef, MetaRef};
use crate::runtime::movement::HeldMove;
use crate::runtime::reliable::{CacheDecision, DecisionLog, ReplyCache, WorkRequest};
use crate::telemetry::CoreTelemetry;

/// How many two-phase move verdicts each Core retains for in-doubt
/// resolution (FIFO-evicted; far above any realistic concurrent load).
const MOVE_DECISION_LOG: usize = 1024;

/// How many recent shard deltas the gossip log retains. A cursor that
/// falls off this window resumes at the window start; anti-entropy
/// republish covers the gap.
const SHARD_DELTA_LOG: usize = 1024;

/// The synthetic "source complet" id used when application code outside
/// any complet invokes through a reference; profiling keys on it.
pub(crate) const APP_SEQ: u64 = 0;

/// Lifecycle of a complet slot.
pub(crate) enum SlotState {
    /// The complet lives here and is invocable.
    Present(Box<dyn Complet>),
    /// The complet is being marshaled away; invocations wait.
    InTransit,
    /// The complet has left; the tracker knows where.
    Gone,
}

pub(crate) struct CompletSlot {
    pub id: CompletId,
    pub type_name: String,
    pub state: Mutex<SlotState>,
}

pub(crate) struct CoreInner {
    pub name: String,
    pub node: NodeId,
    pub net: Network,
    /// The backend carrying this Core's envelopes: the simnet adapter or
    /// real TCP sockets, chosen at spawn. Everything above this field is
    /// backend-agnostic.
    pub transport: Arc<dyn Transport>,
    pub registry: CompletRegistry,
    pub relocators: RelocatorRegistry,
    pub config: CoreConfig,
    pub complets: RwLock<HashMap<CompletId, Arc<CompletSlot>>>,
    pub trackers: TrackerTable,
    pub naming: Mutex<HashMap<String, RefDescriptor>>,
    /// For complets originated here: their authoritative current node and
    /// the move epoch it was reported at (the §7 future-work home
    /// registry; also the E1 ablation baseline). The epoch guards the map
    /// against reordered `LocationUpdate` notifies.
    pub home: Mutex<HashMap<CompletId, (u32, u64)>>,
    pub pending: Mutex<HashMap<ReqId, Sender<Reply>>>,
    /// Local sinks receiving events from remote subscriptions.
    pub sinks: Mutex<HashMap<u64, EventHandler>>,
    pub sink_seq: AtomicU64,
    pub req_seq: AtomicU64,
    pub complet_seq: AtomicU64,
    pub monitor: Monitor,
    pub hub: EventHub,
    pub telemetry: CoreTelemetry,
    pub shutdown: AtomicBool,
    /// Receiver-side reply-dedup cache: the at-most-once half of the
    /// reliable messaging layer.
    pub reply_cache: ReplyCache,
    /// Bounded queue feeding the request-worker pool.
    pub work_tx: Sender<WorkRequest>,
    /// A receiver handle kept only so queue depth is observable
    /// (crossbeam senders cannot report length).
    pub work_rx: Receiver<WorkRequest>,
    /// Workers currently executing a request (quiescence detection).
    pub busy_workers: AtomicU64,
    /// Per-complet move-epoch counters (updated on departure and arrival
    /// so epochs stay monotonic across hosts).
    pub move_epochs: Mutex<HashMap<CompletId, u64>>,
    /// Source-side verdicts of two-phase moves this Core coordinated.
    pub move_decisions: DecisionLog,
    /// Destination-side verdicts of two-phase moves this Core received.
    pub move_outcomes: DecisionLog,
    /// Prepared-but-uncommitted move streams, keyed `(root, epoch)`.
    pub held_moves: Mutex<HashMap<(CompletId, u64), HeldMove>>,
    /// Callbacks run by the monitor thread after each tick (the adaptive
    /// layout planner's cadence source), keyed for removal.
    pub tick_hooks: Mutex<Vec<(u64, TickHook)>>,
    pub tick_hook_seq: AtomicU64,
    /// The SLO/health engine, fed one [`HealthSample`] per monitor tick.
    pub health: Mutex<HealthEngine>,
    /// Consistent-hash ring assigning each complet id's authoritative
    /// location shard to a Core (rebuilt when membership changes).
    pub ring: Mutex<fargo_naming::HashRing>,
    /// This Core's slice of the sharded location service: the
    /// authoritative `(complet → node, epoch)` entries for ids the ring
    /// assigns here.
    pub shard: fargo_naming::LocationShard,
    /// Recent accepted shard deltas — the feed piggybacked gossip and
    /// anti-entropy republish drain from.
    pub shard_deltas: fargo_naming::DeltaLog,
    /// Per-peer read cursor into `shard_deltas` (next sequence to ship).
    pub gossip_cursors: Mutex<HashMap<u32, u64>>,
    /// Rotation position of the anti-entropy republish pass.
    pub antientropy_pos: AtomicU64,
    /// Write-ahead passivation log; `None` when durability is off
    /// (`CoreConfig::wal_dir` unset).
    pub wal: Option<wal::Wal>,
    /// What the spawn-time recovery pass replayed (`None` when no pass
    /// ran: durability off, recovery disabled, or an empty log).
    pub recovery: Mutex<Option<wal::RecoveryReport>>,
}

/// Percentile summary of one latency histogram, as returned by
/// [`Core::latency_summaries`]. Percentiles are geometric log-bucket
/// estimates in µs; `None` while the histogram is empty.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Which component of the request this row covers (`queue`,
    /// `marshal`, `network`, `exec`, `forward`, `invoke`,
    /// `invoke(recent)`).
    pub phase: &'static str,
    /// Observations behind the estimates.
    pub count: u64,
    /// Estimated median in µs.
    pub p50: Option<f64>,
    /// Estimated 99th percentile in µs.
    pub p99: Option<f64>,
    /// Estimated 99.9th percentile in µs.
    pub p999: Option<f64>,
}

/// A callback invoked by the Core's monitor thread once per tick.
///
/// Hooks must be cheap and non-blocking: they run on the monitor thread
/// itself, between the sampling pass and the next sleep. Anything heavy
/// (like a planning round) should flip a flag or send on a channel for a
/// worker thread to pick up.
pub type TickHook = Arc<dyn Fn() + Send + Sync + 'static>;

/// A handle to a running Core. Cloning yields another handle to the same
/// Core.
///
/// ```no_run
/// # use fargo_core::{Core, CompletRegistry};
/// # use simnet::{Network, NetworkConfig};
/// # fn main() -> Result<(), fargo_core::FargoError> {
/// let net = Network::new(NetworkConfig::default());
/// let registry = CompletRegistry::new();
/// let core = Core::builder(&net, "acadia").registry(&registry).spawn()?;
/// assert_eq!(core.name(), "acadia");
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Core {
    pub(crate) inner: Arc<CoreInner>,
}

/// Configures and starts a [`Core`]; created by [`Core::builder`].
pub struct CoreBuilder<'a> {
    net: &'a Network,
    name: String,
    endpoint: Option<Endpoint>,
    registry: Option<CompletRegistry>,
    relocators: Option<RelocatorRegistry>,
    config: CoreConfig,
    telemetry: Option<TelemetryRegistry>,
    tcp: Option<(std::net::TcpListener, Vec<String>)>,
}

impl<'a> CoreBuilder<'a> {
    /// Runs the Core on an endpoint that already exists on the network
    /// (e.g. one produced by [`simnet::Topology::build`]); the Core takes
    /// the endpoint's registered name.
    pub fn endpoint(mut self, endpoint: Endpoint) -> Self {
        self.endpoint = Some(endpoint);
        self
    }

    /// Shares a complet type registry (the "classpath") with this Core.
    pub fn registry(mut self, registry: &CompletRegistry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Shares a relocator registry with this Core.
    pub fn relocators(mut self, relocators: &RelocatorRegistry) -> Self {
        self.relocators = Some(relocators.clone());
        self
    }

    /// Replaces the Core configuration.
    pub fn config(mut self, config: CoreConfig) -> Self {
        self.config = config;
        self
    }

    /// Shares a metrics registry with this Core (so one registry can
    /// aggregate several Cores; series are disambiguated by the `core`
    /// label). A fresh registry is created when none is shared.
    pub fn telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = Some(registry.clone());
        self
    }

    /// Runs the Core over real TCP sockets on an **already-bound**
    /// listener (binding first lets callers discover ephemeral ports and
    /// hand out a consistent peer table). `peers[i]` is the listen
    /// address of the Core registered `i`-th on `net`. Overrides
    /// [`CoreConfig::transport`](crate::CoreConfig); the network passed
    /// to [`Core::builder`] stays attached as the cluster directory and
    /// fault-injection control plane.
    pub fn tcp_transport(mut self, listener: std::net::TcpListener, peers: Vec<String>) -> Self {
        self.tcp = Some((listener, peers));
        self
    }

    /// Registers the node, starts the Core's threads, and returns the
    /// handle.
    ///
    /// # Errors
    ///
    /// Fails if the Core name is already registered on the network, if
    /// the worker pool is configured with zero threads or zero queue
    /// depth, or if the TCP transport cannot start.
    pub fn spawn(self) -> Result<Core> {
        // A zero here used to be silently clamped to 1, which made
        // "depth 0" mean "depth 1" while reading like "no queue". It is
        // a configuration error now.
        if self.config.worker_threads == 0 {
            return Err(FargoError::InvalidArgument(
                "worker_threads must be at least 1".into(),
            ));
        }
        if self.config.worker_queue_depth == 0 {
            return Err(FargoError::InvalidArgument(
                "worker_queue_depth must be at least 1".into(),
            ));
        }
        let (endpoint, name) = match self.endpoint {
            Some(ep) => {
                let name = self.net.node_name(ep.id())?;
                (ep, name)
            }
            None => (self.net.add_node(&self.name)?, self.name),
        };
        let node = endpoint.id();
        let config = self.config;
        // Whatever the backend, simnet stays the control plane: TCP sends
        // are first *offered* to the network model, so partitions, loss
        // and link statistics behave identically on both backends. Simnet
        // sends run the same admission inside `Network::send` itself.
        let gate_net = self.net.clone();
        let gate: DeliveryGate = Arc::new(move |src, dst, len| {
            gate_net
                .offer(NodeId::from_index(src), NodeId::from_index(dst), len)
                .map_err(TransportError::from)
        });
        let transport: Arc<dyn Transport> = if let Some((listener, peers)) = self.tcp {
            Arc::new(TcpTransport::start(
                TcpTransportConfig {
                    local: node.index(),
                    peers,
                },
                listener,
                Some(gate),
            )?)
        } else {
            match &config.transport {
                TransportKind::Simnet => {
                    Arc::new(SimnetTransport::new(endpoint, config.clock.clone()))
                }
                TransportKind::Tcp { bind, peers } => Arc::new(TcpTransport::bind(
                    TcpTransportConfig {
                        local: node.index(),
                        peers: peers.clone(),
                    },
                    bind,
                    Some(gate),
                )?),
            }
        };
        let telemetry = CoreTelemetry::new(
            self.telemetry.unwrap_or_default(),
            &name,
            node.index(),
            &config,
        );
        let monitor = Monitor::new(
            config.monitor_cache_ttl,
            config.monitor_alpha,
            config.clock.clone(),
        );
        monitor.register_metrics(&telemetry.registry, &name);
        let wal_log = match &config.wal_dir {
            Some(dir) => Some(
                wal::Wal::open(dir, &name, config.wal_fsync)
                    .map_err(|e| FargoError::App(format!("wal open: {e}")))?,
            ),
            None => None,
        };
        let (work_tx, work_rx) = bounded(config.worker_queue_depth);
        let inner = Arc::new(CoreInner {
            name,
            node,
            net: self.net.clone(),
            transport,
            registry: self.registry.unwrap_or_default(),
            relocators: self.relocators.unwrap_or_default(),
            monitor,
            telemetry,
            complets: RwLock::new(HashMap::new()),
            trackers: TrackerTable::new(config.clock.clone()),
            naming: Mutex::new(HashMap::new()),
            home: Mutex::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            sinks: Mutex::new(HashMap::new()),
            sink_seq: AtomicU64::new(1),
            // Salt request ids with the WAL's durable incarnation number:
            // a restarted Core that re-minted ids from 1 would hit peers'
            // reply-dedup caches and be served the previous incarnation's
            // cached replies instead of executing.
            req_seq: AtomicU64::new(wal_log.as_ref().map_or(1, |w| (w.generation() << 32) | 1)),
            // Seq 0 is reserved for the application pseudo-complet.
            complet_seq: AtomicU64::new(1),
            hub: EventHub::new(),
            shutdown: AtomicBool::new(false),
            reply_cache: ReplyCache::new(config.dedup_cache_capacity),
            work_tx,
            work_rx: work_rx.clone(),
            busy_workers: AtomicU64::new(0),
            move_epochs: Mutex::new(HashMap::new()),
            move_decisions: DecisionLog::new(MOVE_DECISION_LOG),
            move_outcomes: DecisionLog::new(MOVE_DECISION_LOG),
            held_moves: Mutex::new(HashMap::new()),
            tick_hooks: Mutex::new(Vec::new()),
            tick_hook_seq: AtomicU64::new(1),
            health: Mutex::new(HealthEngine::new(config.slo_rules.clone())),
            // Membership may still be growing while Cores spawn one by
            // one; every use refreshes the ring against the live node
            // list, so starting from what is visible now is safe.
            ring: Mutex::new(fargo_naming::HashRing::new(
                &self
                    .net
                    .node_ids()
                    .iter()
                    .map(|n| n.index())
                    .collect::<Vec<u32>>(),
                config.naming_vnodes,
            )),
            shard: fargo_naming::LocationShard::new(),
            shard_deltas: fargo_naming::DeltaLog::new(SHARD_DELTA_LOG),
            gossip_cursors: Mutex::new(HashMap::new()),
            antientropy_pos: AtomicU64::new(0),
            wal: wal_log,
            recovery: Mutex::new(None),
            config,
        });
        let core = Core { inner };
        core.install_sampler();
        core.spawn_workers(work_rx);
        core.spawn_receiver();
        core.spawn_monitor_thread();
        if core.inner.wal.is_some() && core.inner.config.wal_recover {
            core.recover_from_wal();
        }
        Ok(core)
    }
}

impl Core {
    /// Starts building a Core named `name` on `net`.
    pub fn builder<'a>(net: &'a Network, name: &str) -> CoreBuilder<'a> {
        CoreBuilder {
            net,
            name: name.to_owned(),
            endpoint: None,
            registry: None,
            relocators: None,
            config: CoreConfig::default(),
            telemetry: None,
            tcp: None,
        }
    }

    /// This Core's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// This Core's network node id.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The network this Core is attached to.
    pub fn network(&self) -> &Network {
        &self.inner.net
    }

    /// The complet type registry this Core constructs from.
    pub fn registry(&self) -> &CompletRegistry {
        &self.inner.registry
    }

    /// The relocator registry governing reference semantics here.
    pub fn relocators(&self) -> &RelocatorRegistry {
        &self.inner.relocators
    }

    /// The monitoring facility (§4.1).
    pub fn monitor(&self) -> &Monitor {
        &self.inner.monitor
    }

    /// This Core's metrics registry (possibly shared with other Cores).
    pub fn telemetry(&self) -> &TelemetryRegistry {
        &self.inner.telemetry.registry
    }

    /// This Core's configuration (immutable once spawned).
    pub fn config(&self) -> &CoreConfig {
        &self.inner.config
    }

    /// Registers a callback run by the monitor thread after every tick
    /// and returns a handle for [`Core::remove_monitor_tick_hook`].
    ///
    /// This is the extension point the adaptive layout planner hangs off:
    /// the Core does not know about planning, it just provides cadence.
    /// Hooks must be cheap (see [`TickHook`]).
    pub fn add_monitor_tick_hook(&self, hook: TickHook) -> u64 {
        let id = self.inner.tick_hook_seq.fetch_add(1, Ordering::SeqCst);
        self.inner.tick_hooks.lock().push((id, hook));
        id
    }

    /// Removes a tick hook by the handle `add_monitor_tick_hook` returned.
    /// Unknown handles are ignored.
    pub fn remove_monitor_tick_hook(&self, id: u64) {
        self.inner.tick_hooks.lock().retain(|(h, _)| *h != id);
    }

    /// Appends a decision/annotation event to this Core's journal (no-op
    /// when journaling is disabled). Used by subsystems layered on top of
    /// the Core — notably the layout planner — so their decisions land in
    /// the same causally-ordered timeline as the moves they cause.
    pub fn journal_note(
        &self,
        kind: JournalKind,
        subject: &str,
        object: &str,
        detail: &str,
        peer: Option<u32>,
    ) {
        self.inner
            .telemetry
            .journal(kind, &subject, object, detail, peer);
    }

    /// Reliable-messaging counters for this Core, in order:
    /// (rpc retransmissions, dedup-cache replays, reply send failures,
    /// in-doubt moves resolved by epoch query).
    pub fn reliability_stats(&self) -> (u64, u64, u64, u64) {
        let t = &self.inner.telemetry;
        (
            t.rpc_retries_total.get(),
            t.dedup_hits_total.get(),
            t.reply_send_failures.get(),
            t.move_indoubt_total.get(),
        )
    }

    /// The trace id of the most recently recorded span here, if any.
    pub fn last_trace_id(&self) -> Option<u64> {
        self.inner.telemetry.spans.last_trace_id()
    }

    /// Collects the spans of `trace_id` from this Core **and** every peer
    /// Core on the network, so a multi-Core invocation or move can be
    /// reassembled into one tree. Unreachable peers are skipped.
    pub fn collect_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans = self.inner.telemetry.spans.for_trace(trace_id);
        for node in self.inner.net.node_ids() {
            if node == self.inner.node {
                continue;
            }
            if let Ok(Reply::Spans { spans: remote }) =
                self.rpc(node.index(), Request::TraceSpans { trace_id })
            {
                spans.extend(remote);
            }
        }
        spans.sort_by_key(|s| (s.start_us, s.span_id));
        spans.dedup_by_key(|s| s.span_id);
        spans
    }

    /// Renders the full multi-Core span tree of `trace_id` as text.
    pub fn render_trace(&self, trace_id: u64) -> String {
        render_span_tree(&self.collect_trace(trace_id))
    }

    // --- tail-latency observatory ------------------------------------------

    /// The slowest requests this Core has retained (slowest first), each
    /// with the local span snapshot taken at admission.
    pub fn slow_records(&self) -> Vec<SlowRecord> {
        self.inner.telemetry.slow.records()
    }

    /// Drops every retained slow request (shell `slow clear`).
    pub fn clear_slow_log(&self) {
        self.inner.telemetry.slow.clear();
    }

    /// Every span currently held in this Core's local ring, oldest
    /// first — the checker snapshots this to assert span determinism.
    pub fn span_snapshot(&self) -> Vec<SpanRecord> {
        self.inner.telemetry.spans.all()
    }

    /// Percentile summaries of every latency histogram this Core keeps:
    /// the per-phase decomposition (queue / marshal / network / exec /
    /// forward) plus end-to-end invoke latency, lifetime and — for
    /// invokes — over the recent window.
    pub fn latency_summaries(&self) -> Vec<LatencySummary> {
        let t = &self.inner.telemetry;
        let phase = |phase: &'static str, h: &Histogram| LatencySummary {
            phase,
            count: h.count(),
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        };
        let recent = &t.invoke_latency_us;
        vec![
            phase("queue", &t.latency_queue_us),
            phase("marshal", &t.latency_marshal_us),
            phase("network", &t.latency_network_us),
            phase("exec", &t.latency_exec_us),
            phase("forward", &t.latency_forward_us),
            phase("invoke", recent.lifetime()),
            LatencySummary {
                phase: "invoke(recent)",
                count: recent.recent_count(),
                p50: recent.quantile_recent(0.50),
                p99: recent.quantile_recent(0.99),
                p999: recent.quantile_recent(0.999),
            },
        ]
    }

    // --- flight recorder ---------------------------------------------------

    /// This Core's layout-event journal, oldest first.
    pub fn journal_snapshot(&self) -> Vec<JournalEvent> {
        self.inner.telemetry.journal.snapshot()
    }

    /// The sequence number this Core's next journal entry will take.
    /// Restart harnesses feed it to
    /// [`CoreConfig::with_journal_seq_base`](crate::CoreConfig) so a
    /// replacement incarnation's entries never collide with this one's.
    pub fn journal_next_seq(&self) -> u64 {
        self.inner.telemetry.journal.next_seq()
    }

    /// Collects the journals of this Core **and** every reachable peer
    /// Core and merges them into one causally-consistent timeline ordered
    /// by hybrid logical clock. Unreachable peers are skipped.
    pub fn collect_journal(&self) -> Vec<JournalEvent> {
        let mut batches = vec![self.journal_snapshot()];
        for node in self.inner.net.node_ids() {
            if node == self.inner.node {
                continue;
            }
            if let Ok(Reply::Journal { events }) = self.rpc(node.index(), Request::JournalEvents) {
                batches.push(events);
            }
        }
        merge_timelines(batches)
    }

    /// The layout observatory: the merged cluster-wide timeline wrapped
    /// for reconstruction (`at`), final-state queries, and the anomaly
    /// pass.
    pub fn layout_history(&self) -> LayoutHistory {
        LayoutHistory::from_events(self.collect_journal())
    }

    /// The current reading of this Core's hybrid logical clock (no tick).
    pub fn hlc_now(&self) -> Hlc {
        self.inner.telemetry.clock.peek()
    }

    /// Replays journal-recorded layout events newer than `since` through
    /// this Core's event hub, so listeners subscribed to `completArrived`
    /// / `completDeparted` — including complet listeners that have since
    /// migrated to another Core — observe reconstructed history. Returns
    /// how many events were fired.
    pub fn replay_layout_events(&self, since: Option<Hlc>) -> usize {
        let since = since.unwrap_or(Hlc::ZERO);
        let mut fired = 0;
        for ev in self.collect_journal() {
            if ev.hlc <= since {
                continue;
            }
            if let Some(payload) = EventPayload::from_journal(&ev) {
                self.fire_event(payload);
                fired += 1;
            }
        }
        fired
    }

    /// Folds simnet's per-link traffic counters (for links leaving this
    /// node) into the metrics registry as gauges, so the exposition also
    /// covers the network layer. Links that never carried traffic are
    /// skipped.
    pub fn refresh_link_metrics(&self) {
        let me = self.inner.node;
        for peer in self.inner.net.node_ids() {
            if peer == me {
                continue;
            }
            let stats = self.inner.net.link_stats(me, peer);
            if stats.messages == 0 && stats.dropped == 0 {
                continue;
            }
            let peer_name = self.core_name_of(peer.index());
            let l = &[
                ("src", self.inner.name.as_str()),
                ("dst", peer_name.as_str()),
            ][..];
            let reg = &self.inner.telemetry.registry;
            reg.gauge("fargo_link_messages", l)
                .set(stats.messages as f64);
            reg.gauge("fargo_link_bytes", l).set(stats.bytes as f64);
            reg.gauge("fargo_link_dropped", l).set(stats.dropped as f64);
            reg.gauge("fargo_link_throughput_bytes_per_sec", l)
                .set(stats.throughput);
        }
    }

    /// Prometheus-style text exposition of this Core's registry, with the
    /// link gauges refreshed first.
    pub fn render_metrics(&self) -> String {
        self.refresh_link_metrics();
        self.refresh_accounting_metrics();
        self.inner.telemetry.registry.render_prometheus()
    }

    /// JSON exposition of this Core's registry (same refresh pass as
    /// [`Core::render_metrics`]), for machine consumers like `stats json`.
    pub fn render_metrics_json(&self) -> String {
        self.refresh_link_metrics();
        self.refresh_accounting_metrics();
        render_snapshots_json(&self.inner.telemetry.registry.snapshot())
    }

    // --- cluster health observatory ----------------------------------------

    /// The heaviest complets tracked by this Core's accountant, heaviest
    /// first. Load is `exec_µs + invokes`; `err` bounds the overcount a
    /// Space-Saving eviction may have introduced.
    pub fn account_top(&self, n: usize) -> Vec<AccountRecord> {
        self.inner.telemetry.accountant.top(n)
    }

    /// The heaviest complets **cluster-wide**: this Core's top-`n` merged
    /// with every reachable peer's, re-ranked by load, truncated to `n`.
    /// Each row carries the name of the Core that reported it.
    pub fn collect_top(&self, n: usize) -> Vec<(String, AccountRecord)> {
        let mut rows: Vec<(String, AccountRecord)> = self
            .account_top(n)
            .into_iter()
            .map(|r| (self.inner.name.clone(), r))
            .collect();
        for node in self.inner.net.node_ids() {
            if node == self.inner.node {
                continue;
            }
            if let Ok(Reply::TopComplets { rows: remote }) =
                self.rpc(node.index(), Request::TopComplets { n: n as u32 })
            {
                let peer = self.core_name_of(node.index());
                rows.extend(remote.into_iter().map(|r| (peer.clone(), r)));
            }
        }
        rows.sort_by(|(ca, a), (cb, b)| {
            b.load.cmp(&a.load).then(a.key.cmp(&b.key)).then(ca.cmp(cb))
        });
        rows.truncate(n);
        rows
    }

    /// This Core's outbound Core↔Core traffic matrix cells (src is always
    /// this Core), ordered by destination.
    pub fn traffic_matrix(&self) -> Vec<MatrixCell> {
        self.inner.telemetry.matrix.snapshot()
    }

    /// The **cluster-wide** traffic matrix: every Core reports its own
    /// outbound cells, so the union covers all directed pairs that have
    /// carried messages. Ordered by (src, dst).
    pub fn collect_matrix(&self) -> Vec<MatrixCell> {
        let mut cells = self.traffic_matrix();
        for node in self.inner.net.node_ids() {
            if node == self.inner.node {
                continue;
            }
            if let Ok(Reply::Matrix { cells: remote }) =
                self.rpc(node.index(), Request::TrafficMatrix)
            {
                cells.extend(remote);
            }
        }
        cells.sort_by(|a, b| (&a.src, &a.dst).cmp(&(&b.src, &b.dst)));
        cells
    }

    /// Current state of every SLO rule on this Core: short/long window
    /// burn rates and whether the alert is firing.
    pub fn health_status(&self) -> Vec<RuleStatus> {
        self.inner.health.lock().status()
    }

    /// Every alert transition journaled cluster-wide, oldest first.
    pub fn collect_alerts(&self) -> Vec<JournalEvent> {
        self.collect_journal()
            .into_iter()
            .filter(|ev| ev.kind == JournalKind::Alert)
            .collect()
    }

    /// Folds the accountant's current top complets into `fargo_complet_*`
    /// gauges (bounded by the sketch capacity, so exposition cardinality
    /// stays safe no matter how many complets exist).
    pub fn refresh_accounting_metrics(&self) {
        let t = &self.inner.telemetry;
        if !t.accounting {
            return;
        }
        let reg = &t.registry;
        for row in t.accountant.top(usize::MAX) {
            let complet = CompletId {
                origin: row.key.0,
                seq: row.key.1,
            }
            .to_string();
            let l = &[
                ("complet", complet.as_str()),
                ("core", self.inner.name.as_str()),
            ][..];
            reg.gauge("fargo_complet_load", l).set(row.load as f64);
            reg.gauge("fargo_complet_invokes", l)
                .set(row.invokes as f64);
            reg.gauge("fargo_complet_exec_us", l)
                .set(row.exec_us as f64);
            reg.gauge("fargo_complet_bytes_in", l)
                .set(row.bytes_in as f64);
            reg.gauge("fargo_complet_bytes_out", l)
                .set(row.bytes_out as f64);
        }
    }

    /// Builds the cumulative [`HealthSample`] the SLO engine consumes —
    /// one call per monitor tick, but public so tests and the checker can
    /// drive the engine deterministically.
    pub fn health_sample(&self) -> HealthSample {
        let t = &self.inner.telemetry;
        HealthSample {
            p99_invoke_us: t.invoke_latency_us.quantile_recent(0.99),
            invokes: t.invoke_total.get(),
            errors: t.invoke_errors_total.get(),
            sheds: t.worker_rejections_total.get(),
            moves: t.moves_attempted_total.get(),
            move_failures: t.move_failures_total.get(),
        }
    }

    /// Feeds one sample to the SLO engine, journals every alert
    /// transition, and updates the per-rule alert counter/status gauge.
    /// Called by the monitor thread each tick; public for deterministic
    /// tests.
    pub fn evaluate_health(&self) {
        let sample = self.health_sample();
        let transitions = self.inner.health.lock().observe(sample);
        let t = &self.inner.telemetry;
        for tr in &transitions {
            let detail = format!(
                "short={:.4} long={:.4} threshold={:.4}",
                tr.short, tr.long, tr.threshold
            );
            let object = if tr.firing { "firing" } else { "resolved" };
            t.journal(JournalKind::Alert, &tr.rule, object, &detail, None);
            if let Some((fired, status)) = t.health_series.get(&tr.rule) {
                if tr.firing {
                    fired.inc();
                    status.set(1.0);
                } else {
                    status.set(0.0);
                }
            }
        }
    }

    /// Whether the Core is still accepting work.
    pub fn is_running(&self) -> bool {
        !self.inner.shutdown.load(Ordering::SeqCst)
    }

    // --- complet management ----------------------------------------------

    /// Instantiates a complet of a registered type on this Core and
    /// returns a bound reference to it — the Rust form of Figure 3's
    /// `msg = new Message_()`.
    ///
    /// # Errors
    ///
    /// Fails if the type is unregistered or its constructor fails.
    pub fn new_complet(&self, type_name: &str, args: &[Value]) -> Result<BoundRef> {
        self.admit(1)?;
        let complet = self.inner.registry.construct(type_name, args)?;
        let id = self.install_complet(type_name, complet);
        self.wal_capture(id);
        self.fire_event(EventPayload::CompletArrived {
            id,
            type_name: type_name.to_owned(),
            core: self.inner.node.index(),
        });
        Ok(self.stub(self.make_ref(id, type_name)))
    }

    /// Instantiates a complet on a *remote* Core.
    ///
    /// # Errors
    ///
    /// Fails if the Core is unknown, unreachable, or cannot construct the
    /// type.
    pub fn new_complet_at(
        &self,
        core_name: &str,
        type_name: &str,
        args: &[Value],
    ) -> Result<BoundRef> {
        if core_name == self.inner.name {
            return self.new_complet(type_name, args);
        }
        let node = self.resolve_core(core_name)?;
        match self.rpc(
            node,
            Request::NewComplet {
                type_name: type_name.to_owned(),
                args: args.to_vec(),
            },
        )? {
            Reply::NewOk { desc } => Ok(self.stub(CompletRef::from_descriptor(desc))),
            Reply::Err(e) => Err(e),
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    pub(crate) fn install_complet(&self, type_name: &str, complet: Box<dyn Complet>) -> CompletId {
        let id = CompletId::new(
            self.inner.node.index(),
            self.inner.complet_seq.fetch_add(1, Ordering::Relaxed),
        );
        self.install_complet_with_id(id, type_name, complet);
        id
    }

    pub(crate) fn install_complet_with_id(
        &self,
        id: CompletId,
        type_name: &str,
        complet: Box<dyn Complet>,
    ) {
        let slot = Arc::new(CompletSlot {
            id,
            type_name: type_name.to_owned(),
            state: Mutex::new(SlotState::Present(complet)),
        });
        self.inner.complets.write().insert(id, slot);
        let epoch = self.current_move_epoch(id);
        let _ = self.inner.trackers.point(id, TrackerTarget::Local, epoch);
        self.note_location(id, self.inner.node.index(), epoch);
        self.inner
            .telemetry
            .journal(JournalKind::CompletArrived, &id, type_name, "", None);
        self.inner
            .telemetry
            .journal(JournalKind::TrackerCreated, &id, type_name, "", None);
        self.publish_location(id, self.inner.node.index(), epoch, true);
    }

    /// Whether a complet currently lives on this Core.
    pub fn hosts(&self, id: CompletId) -> bool {
        self.inner.complets.read().contains_key(&id)
    }

    /// Ids of all complets resident here.
    pub fn complet_ids(&self) -> Vec<CompletId> {
        let mut ids: Vec<CompletId> = self.inner.complets.read().keys().copied().collect();
        ids.sort();
        ids
    }

    /// `(id, type_name)` of all complets resident here.
    pub fn complet_inventory(&self) -> Vec<(CompletId, String)> {
        let map = self.inner.complets.read();
        let mut out: Vec<(CompletId, String)> =
            map.values().map(|s| (s.id, s.type_name.clone())).collect();
        out.sort();
        out
    }

    /// Number of complets resident here (the `completLoad` measure).
    pub fn complet_count(&self) -> usize {
        self.inner.complets.read().len()
    }

    /// The first local complet whose anchor type is `type_name` (stamp
    /// resolution, §3.3).
    pub fn find_local_by_type(&self, type_name: &str) -> Option<CompletId> {
        let map = self.inner.complets.read();
        let mut ids: Vec<CompletId> = map
            .values()
            .filter(|s| s.type_name == type_name)
            .map(|s| s.id)
            .collect();
        ids.sort();
        ids.first().copied()
    }

    /// Snapshot of this Core's tracker table.
    pub fn tracker_snapshot(&self) -> Vec<TrackerSnapshot> {
        self.inner.trackers.snapshot()
    }

    /// Garbage-collects forwarding trackers idle for at least `max_idle`
    /// (local trackers are never collected). Returns how many were
    /// dropped — the runtime analog of the paper's tracker reclamation.
    pub fn collect_trackers(&self, max_idle: Duration) -> usize {
        let collected = self.inner.trackers.collect_idle(max_idle);
        for id in &collected {
            self.inner
                .telemetry
                .journal(JournalKind::TrackerRetired, id, "", "idle", None);
        }
        collected.len()
    }

    /// Drops a complet hosted here, releasing its tracker and bindings.
    ///
    /// # Errors
    ///
    /// Fails if the complet is not hosted on this Core.
    pub fn release_complet(&self, id: CompletId) -> Result<()> {
        let slot = self
            .inner
            .complets
            .write()
            .remove(&id)
            .ok_or(FargoError::UnknownComplet(id))?;
        *slot.state.lock() = SlotState::Gone;
        self.inner.trackers.remove(id);
        let mut naming = self.inner.naming.lock();
        naming.retain(|_, d| d.target != id);
        drop(naming);
        let t = &self.inner.telemetry;
        t.journal(
            JournalKind::CompletDeparted,
            &id,
            &slot.type_name,
            "released",
            None,
        );
        t.journal(JournalKind::TrackerRetired, &id, "", "released", None);
        t.journal(JournalKind::RefEdgeDropped, &id, "*", "", None);
        // Tombstone the shard entry at the current epoch so a delayed
        // publish cannot resurrect the released complet.
        self.publish_location(
            id,
            self.inner.node.index(),
            self.current_move_epoch(id),
            false,
        );
        self.wal_append(&wal::WalRecord::Departed {
            id,
            epoch: self.current_move_epoch(id),
            dest: None,
        });
        Ok(())
    }

    /// Number of active event subscriptions at this Core.
    pub fn subscription_count(&self) -> usize {
        self.inner.hub.len()
    }

    /// Number of trackers (local and forwarding) in this Core's table.
    pub fn tracker_count(&self) -> usize {
        self.inner.trackers.len()
    }

    // --- references --------------------------------------------------------

    /// Binds a portable reference to this Core, yielding a callable stub.
    pub fn stub(&self, r: CompletRef) -> BoundRef {
        BoundRef {
            core: self.clone(),
            r,
        }
    }

    /// The reflective meta-reference of a reference (§3.2) — the Rust form
    /// of `Core.getMetaRef(msg)`.
    pub fn meta_ref(&self, r: &CompletRef) -> MetaRef {
        MetaRef::new(self.clone(), r.clone())
    }

    pub(crate) fn make_ref(&self, id: CompletId, type_name: &str) -> CompletRef {
        CompletRef::from_descriptor(RefDescriptor::link(id, type_name, self.inner.node.index()))
    }

    // --- events ------------------------------------------------------------

    /// Registers a local listener for this Core's events; returns a token
    /// for [`Core::unsubscribe`].
    ///
    /// Subscribing to a profiling-service selector implicitly starts
    /// continuous profiling of that service, as in §4.2: "the event
    /// registration mechanism invokes the proper start method".
    pub fn on_event(
        &self,
        selector: &str,
        threshold: Option<f64>,
        above: bool,
        handler: EventHandler,
    ) -> u64 {
        self.start_profiling_for_selector(selector);
        self.inner
            .hub
            .subscribe_local(selector, threshold, above, handler)
    }

    /// If the selector names a profiling service, begin continuous
    /// profiling so the corresponding events are produced.
    ///
    /// The implicit sampling interval is ten monitor ticks — coarse
    /// enough that sporadic traffic does not alias into rate spikes; an
    /// explicit [`Core::profile_start`] with a finer interval tightens it.
    fn start_profiling_for_selector(&self, selector: &str) {
        if let Ok(service) = Service::parse(selector) {
            self.inner.monitor.start(
                service,
                (self.inner.config.monitor_tick * 10).max(Duration::from_millis(1)),
            );
        }
    }

    fn stop_profiling_for_selector(&self, selector: &str) {
        if let Ok(service) = Service::parse(selector) {
            self.inner.monitor.stop(&service);
        }
    }

    /// The tracker table of a (possibly remote) Core, for reference
    /// inspection: `(target, forward-to node — None when local, hits)`.
    ///
    /// # Errors
    ///
    /// Fails when the Core is unknown or unreachable.
    pub fn trackers_at(&self, core_name: &str) -> Result<Vec<(CompletId, Option<u32>, u64)>> {
        if core_name == self.inner.name {
            return Ok(self
                .tracker_snapshot()
                .into_iter()
                .map(|t| {
                    let fwd = match t.target {
                        TrackerTarget::Local => None,
                        TrackerTarget::Forward(n) => Some(n),
                    };
                    (t.id, fwd, t.hits)
                })
                .collect());
        }
        let node = self.resolve_core(core_name)?;
        match self.rpc(node, Request::ListTrackers)? {
            Reply::Trackers { items } => Ok(items),
            Reply::Err(e) => Err(e),
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// The complets resident at a (possibly remote) Core:
    /// `(id, type_name)` pairs.
    ///
    /// # Errors
    ///
    /// Fails when the Core is unknown or unreachable.
    pub fn complets_at(&self, core_name: &str) -> Result<Vec<(CompletId, String)>> {
        if core_name == self.inner.name {
            return Ok(self.complet_inventory());
        }
        let node = self.resolve_core(core_name)?;
        match self.rpc(node, Request::ListComplets)? {
            Reply::Complets { items } => Ok(items),
            Reply::Err(e) => Err(e),
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Removes a local subscription.
    pub fn unsubscribe(&self, token: u64) -> bool {
        self.inner.hub.unsubscribe(token)
    }

    /// Registers a complet as a listener at this Core. Delivery is an
    /// `on_event` invocation through the reference, so it follows the
    /// listener when it moves (distributed events, §4.2).
    pub fn subscribe_complet(
        &self,
        selector: &str,
        threshold: Option<f64>,
        above: bool,
        listener: CompletRef,
    ) -> u64 {
        self.start_profiling_for_selector(selector);
        self.inner.hub.subscribe_remote(
            selector,
            threshold,
            above,
            ListenerAddr::Complet(listener.descriptor()),
        )
    }

    /// Subscribes a local handler to events fired by a **remote** Core.
    ///
    /// # Errors
    ///
    /// Fails if the remote Core is unknown or unreachable.
    pub fn subscribe_at(
        &self,
        core_name: &str,
        selector: &str,
        threshold: Option<f64>,
        above: bool,
        handler: EventHandler,
    ) -> Result<RemoteSubscription> {
        if core_name == self.inner.name {
            let token = self.on_event(selector, threshold, above, handler);
            return Ok(RemoteSubscription {
                core: self.clone(),
                peer: None,
                token,
                selector: selector.to_owned(),
            });
        }
        let node = self.resolve_core(core_name)?;
        let token = self.inner.sink_seq.fetch_add(1, Ordering::Relaxed);
        self.inner.sinks.lock().insert(token, handler);
        let listener = ListenerAddr::Core {
            node: self.inner.node.index(),
            token,
        };
        match self.rpc(
            node,
            Request::Subscribe {
                selector: selector.to_owned(),
                threshold,
                above,
                listener,
            },
        )? {
            Reply::Ok => Ok(RemoteSubscription {
                core: self.clone(),
                peer: Some(node),
                token,
                selector: selector.to_owned(),
            }),
            Reply::Err(e) => {
                self.inner.sinks.lock().remove(&token);
                Err(e)
            }
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fires an event: delivers to every matching listener, each on its
    /// own thread (the paper's asynchronous notification).
    pub(crate) fn fire_event(&self, payload: EventPayload) {
        for delivery in self.inner.hub.matching(&payload) {
            match delivery {
                Delivery::Local(handler) => {
                    let p = payload.clone();
                    thread::spawn(move || handler(&p));
                }
                Delivery::Remote(ListenerAddr::Core { node, token }) => {
                    let msg = Message::Notify(Notify::Event {
                        token,
                        payload: payload.clone(),
                    });
                    let _ = self.send_to(node, &msg);
                }
                Delivery::Remote(ListenerAddr::Complet(desc)) => {
                    let core = self.clone();
                    let p = payload.clone();
                    thread::spawn(move || {
                        let r = CompletRef::from_descriptor(desc);
                        let _ = core.invoke(&r, "on_event", &[p.to_value()]);
                    });
                }
            }
        }
    }

    // --- monitoring convenience ---------------------------------------------

    /// Instant measurement of a profiling service (cached, §4.1).
    ///
    /// # Errors
    ///
    /// Fails when the service cannot be measured on this Core.
    pub fn profile_instant(&self, service: &Service) -> Result<f64> {
        self.inner.monitor.instant(service)
    }

    /// Starts continuous profiling of a service.
    pub fn profile_start(&self, service: Service, interval: Duration) {
        self.inner.monitor.start(service, interval);
    }

    /// Current exponential average of a continuously profiled service.
    pub fn profile_get(&self, service: &Service) -> Option<f64> {
        self.inner.monitor.get(service)
    }

    /// Releases interest in a continuously profiled service.
    pub fn profile_stop(&self, service: &Service) {
        self.inner.monitor.stop(service);
    }

    // --- lifecycle -----------------------------------------------------------

    /// Measures round-trip time to a peer Core.
    ///
    /// # Errors
    ///
    /// Fails if the peer is unknown or unreachable.
    pub fn ping(&self, core_name: &str) -> Result<Duration> {
        let node = self.resolve_core(core_name)?;
        let start = self.inner.config.clock.now_us();
        match self.rpc(node, Request::Ping)? {
            Reply::Pong => Ok(Duration::from_micros(
                self.inner.config.clock.now_us().saturating_sub(start),
            )),
            Reply::Err(e) => Err(e),
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Announces shutdown: fires `coreShutdown` to local and remote
    /// listeners (who typically evacuate complets), waits out the grace
    /// period, then stops the Core.
    pub fn shutdown(&self, grace: Duration) {
        let payload = EventPayload::CoreShutdown {
            core: self.inner.node.index(),
        };
        self.fire_event(payload);
        thread::sleep(grace);
        self.stop();
    }

    /// Stops the Core immediately: no more requests are served.
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Mark the node down on the control plane first (so peers' sends
        // start refusing), then tear the transport down.
        let _ = self.inner.net.set_node_up(self.inner.node, false);
        self.inner.transport.shutdown();
    }

    // --- internals -------------------------------------------------------------

    /// Admission control (§7 resource negotiation): refuses work that
    /// would push the Core past its configured complet capacity.
    pub(crate) fn admit(&self, incoming: usize) -> Result<()> {
        if let Some(capacity) = self.inner.config.capacity {
            let resident = self.inner.complets.read().len();
            if resident + incoming > capacity {
                return Err(FargoError::CapacityExceeded {
                    core: self.inner.name.clone(),
                    capacity,
                });
            }
        }
        Ok(())
    }

    pub(crate) fn resolve_core(&self, core_name: &str) -> Result<u32> {
        self.inner
            .net
            .node_by_name(core_name)
            .map(|n| n.index())
            .ok_or_else(|| FargoError::UnknownCore(core_name.to_owned()))
    }

    /// The name of the Core at a node index.
    pub fn core_name_of(&self, node: u32) -> String {
        self.inner
            .net
            .node_name(NodeId::from_index(node))
            .unwrap_or_else(|_| format!("n{node}"))
    }

    pub(crate) fn send_to(&self, node: u32, msg: &Message) -> Result<()> {
        let t = &self.inner.telemetry;
        // Every outbound envelope carries this Core's HLC (when the
        // journal is on), so the receiver's merge keeps the global
        // timeline causally consistent — plus, when phase timing is on,
        // the shared-clock send stamp the receiver subtracts from its
        // own clock to attribute the network phase. The stamp is read
        // before encoding (it rides inside the payload), so the network
        // measurement absorbs the marshal time also recorded here.
        let ts = t.phase_send_stamp();
        // Gossip piggyback: whatever shard deltas this peer has not seen
        // yet ride along in the envelope's optional `nd` field (absent —
        // and byte-identical to the plain encoding — when caught up).
        let nd = self.gossip_batch_for(node);
        let payload = msg.encode_with_meta_nd(t.hlc_send_stamp(), ts, &nd);
        if !nd.is_empty() {
            t.naming_gossip_bytes_total.add(payload.len() as u64);
        }
        if let Some(t0) = ts {
            t.latency_marshal_us
                .observe(t.phase_now_us().saturating_sub(t0));
        }
        t.record_msg_out(msg.kind_label(), payload.len());
        if t.accounting && node != self.inner.node.index() {
            t.matrix
                .record(self.inner.node.index(), node, payload.len() as u64, || {
                    (self.inner.name.clone(), self.core_name_of(node))
                });
        }
        self.inner
            .transport
            .send(node, payload)
            .map_err(FargoError::from)
    }

    /// Sends a request and waits for its reply. The ambient trace context
    /// (set while a traced invocation or move is in progress on this
    /// thread) rides along in the envelope. Unanswered requests are
    /// retransmitted with capped exponential backoff until the overall
    /// `rpc_timeout` budget runs out; receiver-side dedup keeps the
    /// retries at-most-once.
    pub(crate) fn rpc(&self, node: u32, body: Request) -> Result<Reply> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(FargoError::ShuttingDown);
        }
        let req_id = self.inner.req_seq.fetch_add(1, Ordering::Relaxed);
        let msg = Message::Request {
            req_id,
            origin: self.inner.node.index(),
            trace: crate::telemetry::current_trace(),
            body,
        };
        self.rpc_send_wait(node, req_id, &msg)
    }

    /// The retransmitting send-and-wait shared by [`Core::rpc`] and the
    /// invocation unit (which builds its own request envelope). The same
    /// `req_id` rides on every copy, so receivers can deduplicate.
    pub(crate) fn rpc_send_wait(&self, node: u32, req_id: ReqId, msg: &Message) -> Result<Reply> {
        let mut budget = self.retry_budget();
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(req_id, tx);
        let result = loop {
            if budget.attempt() > 0 {
                self.inner.telemetry.rpc_retries_total.inc();
            }
            // A synchronous send failure (unknown or down node) is
            // definitive — retransmitting cannot answer it.
            if let Err(e) = self.send_to(node, msg) {
                break Err(e);
            }
            let Some(wait) = budget.attempt_wait() else {
                break Err(FargoError::Timeout);
            };
            match rx.recv_timeout(wait) {
                Ok(reply) => break Ok(reply),
                Err(_) => {
                    if !budget.advance() {
                        break Err(FargoError::Timeout);
                    }
                }
            }
        };
        if result.is_err() {
            self.inner.pending.lock().remove(&req_id);
        }
        result
    }

    /// A fresh [`RetryBudget`] from this Core's rpc configuration.
    pub(crate) fn retry_budget(&self) -> reliable::RetryBudget {
        let cfg = &self.inner.config;
        reliable::RetryBudget::new(
            cfg.clock.clone(),
            cfg.rpc_timeout,
            cfg.rpc_max_retries,
            cfg.rpc_retry_base,
            cfg.rpc_retry_cap,
        )
    }

    /// Issues a request without waiting for its reply: the envelope is
    /// transmitted immediately and a [`PendingRpc`] tracks the
    /// correlation slot. The caller later blocks in
    /// [`PendingRpc::wait`], which retransmits on the same budget rules
    /// as [`Core::rpc`]. This is what lets one Core hold tens of
    /// thousands of requests in flight: issuing costs one send, not one
    /// parked thread.
    pub(crate) fn rpc_begin(&self, node: u32, body: Request) -> Result<PendingRpc> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(FargoError::ShuttingDown);
        }
        let req_id = self.inner.req_seq.fetch_add(1, Ordering::Relaxed);
        let msg = Message::Request {
            req_id,
            origin: self.inner.node.index(),
            trace: crate::telemetry::current_trace(),
            body,
        };
        let budget = self.retry_budget();
        let (tx, rx) = bounded(1);
        self.inner.pending.lock().insert(req_id, tx);
        // First transmission happens at issue time, so the request ages
        // (and the peer works on it) while the caller does other things.
        if let Err(e) = self.send_to(node, &msg) {
            self.inner.pending.lock().remove(&req_id);
            return Err(e);
        }
        Ok(PendingRpc {
            core: self.clone(),
            node,
            req_id,
            msg,
            rx,
            budget,
        })
    }

    /// Requests issued by this Core still awaiting their reply (both
    /// blocking rpcs and unresolved [`PendingCall`]s).
    pub fn inflight_rpcs(&self) -> usize {
        self.inner.pending.lock().len()
    }

    pub(crate) fn reply_to(&self, node: u32, req_id: ReqId, body: Reply) {
        let msg = Message::Reply {
            req_id,
            route: vec![],
            body,
        };
        if let Err(e) = self.send_to(node, &msg) {
            // A dropped reply leaves the requester to retransmit or time
            // out; count and journal it so lost-reply scenarios show up
            // in diagnostics instead of vanishing.
            self.inner.telemetry.reply_send_failures.inc();
            self.inner.telemetry.journal(
                JournalKind::ReplyDropped,
                &req_id,
                "",
                &e.to_string(),
                Some(node),
            );
        }
    }

    /// Records the reply for a deduplicated request, then sends it. Every
    /// reply-producing branch of `handle_request` funnels through here so
    /// retransmitted requests replay instead of re-executing.
    pub(crate) fn finish_request(&self, origin: u32, req_id: ReqId, body: Reply) {
        self.inner.reply_cache.complete(origin, req_id, &body);
        self.reply_to(origin, req_id, body);
    }

    // --- background threads -----------------------------------------------------

    fn spawn_receiver(&self) {
        let core = self.clone();
        thread::Builder::new()
            .name(format!("fargo-core-{}", self.inner.name))
            .spawn(move || core.receiver_loop())
            .expect("failed to spawn core receiver thread");
    }

    /// Starts the bounded request-worker pool. Workers share one queue;
    /// replies and notifies bypass it (handled inline on the receiver
    /// loop), so a pool saturated with requests blocked in nested rpcs
    /// can still be unblocked by incoming replies.
    fn spawn_workers(&self, work_rx: Receiver<WorkRequest>) {
        for i in 0..self.inner.config.worker_threads {
            let core = self.clone();
            let rx = work_rx.clone();
            thread::Builder::new()
                .name(format!("fargo-worker-{}-{i}", self.inner.name))
                .spawn(move || loop {
                    if core.inner.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    match rx.recv_timeout(Duration::from_millis(25)) {
                        Ok(job) => {
                            core.inner.busy_workers.fetch_add(1, Ordering::SeqCst);
                            let t = &core.inner.telemetry;
                            if let Some(enq) = job.enqueued_us {
                                // Queue-wait phase: receiver enqueue to
                                // worker pickup.
                                t.observe_phase(
                                    &t.latency_queue_us,
                                    t.phase_now_us().saturating_sub(enq),
                                );
                            }
                            core.handle_request(job.origin, job.req_id, job.trace, job.body);
                            core.inner.busy_workers.fetch_sub(1, Ordering::SeqCst);
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                    }
                })
                .expect("failed to spawn core worker thread");
        }
    }

    fn receiver_loop(&self) {
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match self.inner.transport.recv_timeout(Duration::from_millis(25)) {
                Ok(incoming) => match Message::decode_with_meta_nd(&incoming.payload) {
                    Ok((msg, hlc, ts, nd)) => {
                        let t = &self.inner.telemetry;
                        if let Some(h) = hlc {
                            t.observe_hlc(h);
                        }
                        if let Some(sent_us) = ts {
                            // One-way delivery latency as the application
                            // experienced it (propagation + queueing +
                            // marshal), measured on the shared clock. Fed
                            // back to the substrate so the layout cost
                            // model calibrates from observations.
                            let us = t.phase_now_us().saturating_sub(sent_us);
                            t.observe_phase(&t.latency_network_us, us);
                            self.inner.net.record_observed_latency(
                                NodeId::from_index(incoming.src),
                                self.inner.node,
                                us,
                            );
                        }
                        t.record_msg_in(msg.kind_label(), incoming.payload.len());
                        t.queue_depth.set(self.inner.transport.queue_len() as f64);
                        self.absorb_gossip(nd);
                        self.dispatch(msg);
                    }
                    Err(_) => { /* malformed datagram: drop, as a real core would */ }
                },
                Err(e) if e.is_timeout() => {}
                Err(_) => return,
            }
        }
    }

    fn dispatch(&self, msg: Message) {
        match msg {
            Message::Request {
                req_id,
                origin,
                trace,
                body,
            } => {
                // Read-only snapshot requests are served right here on
                // the dispatch loop: they never run complet code, never
                // block, and never rpc, so they cannot stall the loop —
                // and they no longer occupy (or get shed from) pool
                // slots while the pool is saturated with slow work.
                if body.inline_safe() {
                    self.inner.telemetry.worker_inline_total.inc();
                    self.inner.busy_workers.fetch_add(1, Ordering::SeqCst);
                    self.handle_request(origin, req_id, trace, body);
                    self.inner.busy_workers.fetch_sub(1, Ordering::SeqCst);
                    return;
                }
                // Everything else runs on the bounded worker pool. A full
                // queue drops the request — never blocks the receiver
                // loop (replies must keep flowing or workers blocked in
                // nested rpcs would deadlock) — and the sender's
                // retransmission recovers it once workers drain.
                let job = WorkRequest {
                    origin,
                    req_id,
                    trace,
                    enqueued_us: self.inner.telemetry.phase_send_stamp(),
                    body,
                };
                match self.inner.work_tx.try_send(job) {
                    Ok(()) => {}
                    // One shed, one count. Disconnection is shutdown, not
                    // load shedding — counting it inflated the rejection
                    // series on every teardown.
                    Err(TrySendError::Full(_)) => {
                        self.inner.telemetry.worker_rejections_total.inc();
                    }
                    Err(TrySendError::Disconnected(_)) => {}
                }
            }
            Message::Reply {
                req_id,
                route,
                body,
            } => self.handle_reply(req_id, route, body),
            Message::Notify(n) => self.handle_notify(n),
        }
    }

    fn handle_request(
        &self,
        origin: u32,
        req_id: ReqId,
        trace: Option<TraceContext>,
        body: Request,
    ) {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            self.reply_to(origin, req_id, Reply::Err(FargoError::ShuttingDown));
            return;
        }
        // At-most-once admission: a retransmitted copy of a request we
        // already executed replays the recorded reply; one we are still
        // executing is dropped. Idempotent (read-only) kinds skip the
        // cache and simply re-execute.
        if !body.idempotent() {
            let (decision, evicted) = self.inner.reply_cache.begin(origin, req_id);
            if evicted > 0 {
                self.inner.telemetry.dedup_evictions_total.add(evicted);
            }
            match decision {
                CacheDecision::Execute => {}
                CacheDecision::DropInFlight => {
                    self.inner.telemetry.dedup_inflight_total.inc();
                    return;
                }
                CacheDecision::Replay(reply) => {
                    self.inner.telemetry.dedup_hits_total.inc();
                    self.reply_to(origin, req_id, reply);
                    return;
                }
            }
        }
        match body {
            Request::Invoke {
                target,
                method,
                args,
                chain,
                path,
                hops,
            } => self.handle_invoke(
                origin, req_id, trace, target, method, args, chain, path, hops,
            ),
            Request::Move {
                packets,
                continuation,
            } => {
                let reply = self.handle_move_stream(packets, continuation, trace);
                self.finish_request(origin, req_id, reply);
            }
            Request::MovePrepare {
                root,
                epoch,
                packets,
                continuation,
            } => {
                let reply = self.handle_move_prepare(origin, root, epoch, packets, continuation);
                self.finish_request(origin, req_id, reply);
            }
            Request::MoveCommit { root, epoch } => {
                let reply = self.handle_move_commit(root, epoch, trace);
                self.finish_request(origin, req_id, reply);
            }
            Request::MoveAbort { root, epoch } => {
                let reply = self.handle_move_abort(root, epoch);
                self.finish_request(origin, req_id, reply);
            }
            Request::MoveQuery { root, epoch } => {
                let reply = self.handle_move_query(root, epoch);
                self.finish_request(origin, req_id, reply);
            }
            Request::MoveDecision { root, epoch } => {
                let reply = self.handle_move_decision(root, epoch);
                self.finish_request(origin, req_id, reply);
            }
            Request::NewComplet { type_name, args } => {
                let reply = match self.new_complet(&type_name, &args) {
                    Ok(b) => Reply::NewOk {
                        desc: b.r.descriptor(),
                    },
                    Err(e) => Reply::Err(e),
                };
                self.finish_request(origin, req_id, reply);
            }
            Request::NameLookup { name } => {
                let reply = Reply::NameOk {
                    desc: self.lookup(&name).map(|r| r.descriptor()),
                };
                self.finish_request(origin, req_id, reply);
            }
            Request::FetchState { id } => {
                let reply = self.handle_fetch_state(id);
                self.finish_request(origin, req_id, reply);
            }
            Request::MoveRequest { id, dest } => {
                let dest_name = self.core_name_of(dest);
                let reply = match self.move_complet(id, &dest_name, None) {
                    Ok(()) => Reply::Ok,
                    Err(e) => Reply::Err(e),
                };
                self.finish_request(origin, req_id, reply);
            }
            Request::WhereIs { id } => {
                let reply = Reply::WhereOk {
                    node: self.local_belief(id),
                };
                self.finish_request(origin, req_id, reply);
            }
            Request::LocateQuery { id } => {
                // The authoritative answer of this Core's shard slice.
                // `None` covers tombstones and unknown ids alike; the
                // epoch still rides back so the asker can rank hints.
                let (node, epoch) = match self.inner.shard.lookup(id) {
                    Some(e) if e.alive => (Some(e.node), e.epoch),
                    Some(e) => (None, e.epoch),
                    None => (None, 0),
                };
                self.reply_to(origin, req_id, Reply::LocateOk { node, epoch });
            }
            Request::ShardList => {
                let entries = self
                    .inner
                    .shard
                    .alive()
                    .into_iter()
                    .map(|(id, e)| (id, e.node, e.epoch))
                    .collect();
                self.reply_to(origin, req_id, Reply::ShardEntries { entries });
            }
            Request::Subscribe {
                selector,
                threshold,
                above,
                listener,
            } => {
                self.start_profiling_for_selector(&selector);
                self.inner
                    .hub
                    .subscribe_remote(&selector, threshold, above, listener);
                self.finish_request(origin, req_id, Reply::Ok);
            }
            Request::Unsubscribe { selector, listener } => {
                if self.inner.hub.unsubscribe_remote(&selector, &listener) > 0 {
                    self.stop_profiling_for_selector(&selector);
                }
                self.finish_request(origin, req_id, Reply::Ok);
            }
            Request::ListComplets => {
                let reply = Reply::Complets {
                    items: self.complet_inventory(),
                };
                self.reply_to(origin, req_id, reply);
            }
            Request::ListTrackers => {
                let items = self
                    .tracker_snapshot()
                    .into_iter()
                    .map(|t| {
                        let fwd = match t.target {
                            TrackerTarget::Local => None,
                            TrackerTarget::Forward(n) => Some(n),
                        };
                        (t.id, fwd, t.hits)
                    })
                    .collect();
                self.reply_to(origin, req_id, Reply::Trackers { items });
            }
            Request::TraceSpans { trace_id } => {
                let spans = self.inner.telemetry.spans.for_trace(trace_id);
                self.reply_to(origin, req_id, Reply::Spans { spans });
            }
            Request::JournalEvents => {
                let events = self.inner.telemetry.journal.snapshot();
                self.reply_to(origin, req_id, Reply::Journal { events });
            }
            Request::TopComplets { n } => {
                let rows = self.inner.telemetry.accountant.top(n as usize);
                self.reply_to(origin, req_id, Reply::TopComplets { rows });
            }
            Request::TrafficMatrix => {
                let cells = self.inner.telemetry.matrix.snapshot();
                self.reply_to(origin, req_id, Reply::Matrix { cells });
            }
            Request::Ping => self.reply_to(origin, req_id, Reply::Pong),
        }
    }

    fn handle_reply(&self, req_id: ReqId, route: Vec<u32>, body: Reply) {
        // Chain shortening (§3.1): every Core a reply passes through
        // learns the target's final location and repoints its tracker.
        // The move epoch stamped by the executing Core lets stragglers
        // from an earlier incarnation be recognised and rejected.
        if let Reply::InvokeOk {
            final_location,
            target,
            epoch,
            ..
        } = &body
        {
            self.learn_location(*target, *final_location, *epoch);
        }
        if route.is_empty() {
            if let Some(tx) = self.inner.pending.lock().remove(&req_id) {
                let _ = tx.send(body);
            }
            return;
        }
        let next = route[0];
        let msg = Message::Reply {
            req_id,
            route: route[1..].to_vec(),
            body,
        };
        let _ = self.send_to(next, &msg);
    }

    fn handle_notify(&self, n: Notify) {
        match n {
            Notify::LocationUpdate {
                target,
                now_at,
                epoch,
            } => {
                self.note_location(target, now_at, epoch);
            }
            Notify::Event { token, payload } => {
                let handler = self.inner.sinks.lock().get(&token).cloned();
                if let Some(h) = handler {
                    thread::spawn(move || h(&payload));
                }
            }
            Notify::ShardDelta { entries } => {
                self.absorb_shard_publishes(entries);
            }
            Notify::CoreShutdown { node } => {
                self.fire_event(EventPayload::CoreShutdown { core: node });
            }
        }
    }

    /// Updates tracker knowledge after learning where a complet is now,
    /// at the given move epoch. An actual repoint of an existing
    /// forwarding tracker counts as a chain shortening (§3.1); an update
    /// carrying a stale epoch — a reply or notify delayed across a later
    /// move — is rejected, counted, and journaled instead of corrupting
    /// the chain.
    pub(crate) fn learn_location(&self, target: CompletId, node: u32, epoch: u64) {
        if node == self.inner.node.index() {
            if self.hosts(target) {
                // Hosting is authoritative: our own epoch counter, not the
                // message's, decides the incarnation.
                let here = self.current_move_epoch(target).max(epoch);
                let _ = self
                    .inner
                    .trackers
                    .point(target, TrackerTarget::Local, here);
            }
            return;
        }
        match self
            .inner
            .trackers
            .point(target, TrackerTarget::Forward(node), epoch)
        {
            PointOutcome::Updated {
                prev: Some(TrackerTarget::Forward(p)),
            } if p != node => {
                self.inner.telemetry.chain_shortenings_total.inc();
                self.inner.telemetry.journal(
                    JournalKind::TrackerShortened,
                    &target,
                    "",
                    "",
                    Some(node),
                );
            }
            PointOutcome::Stale {
                current,
                current_epoch,
            } => {
                self.inner.telemetry.tracker_stale_total.inc();
                self.inner.telemetry.journal(
                    JournalKind::TrackerStale,
                    &target,
                    "",
                    &format!("epoch {epoch} < {current_epoch}, kept {current:?}"),
                    Some(node),
                );
            }
            PointOutcome::Updated { .. } => {}
        }
    }

    /// Records a complet's current node in the home registry (only kept
    /// for complets originated here). Epoch-guarded: a `LocationUpdate`
    /// reordered behind a later move's update must not roll the
    /// authoritative belief back to the older location.
    pub(crate) fn note_location(&self, id: CompletId, node: u32, epoch: u64) {
        if id.origin == self.inner.node.index() {
            let mut home = self.inner.home.lock();
            match home.entry(id) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if epoch >= e.get().1 {
                        e.insert((node, epoch));
                    } else {
                        drop(home);
                        self.inner.telemetry.tracker_stale_total.inc();
                        self.inner.telemetry.journal(
                            JournalKind::TrackerStale,
                            &id,
                            "home",
                            &format!("epoch {epoch}"),
                            Some(node),
                        );
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((node, epoch));
                }
            }
        }
    }

    /// The current move epoch of a complet as this Core knows it
    /// (0 = never moved through here).
    pub(crate) fn current_move_epoch(&self, id: CompletId) -> u64 {
        self.inner.move_epochs.lock().get(&id).copied().unwrap_or(0)
    }

    /// This Core's best belief of where a complet is (for `WhereIs`).
    fn local_belief(&self, id: CompletId) -> Option<u32> {
        if self.hosts(id) {
            return Some(self.inner.node.index());
        }
        if id.origin == self.inner.node.index() {
            if let Some(&(n, _)) = self.inner.home.lock().get(&id) {
                return Some(n);
            }
        }
        match self.inner.trackers.peek(id) {
            Some(TrackerTarget::Forward(n)) => Some(n),
            _ => None,
        }
    }

    /// Work the Core has accepted but not yet finished: undelivered
    /// datagrams, queued worker jobs, and requests currently executing.
    /// Zero across every Core (with the network drained) means the
    /// cluster is quiescent — the deterministic checker's step barrier.
    #[doc(hidden)]
    pub fn pending_work(&self) -> usize {
        self.inner.transport.queue_len()
            + self.inner.work_rx.len()
            + self.inner.busy_workers.load(Ordering::SeqCst) as usize
    }

    /// Feeds a location report into the tracker table exactly as a
    /// passing reply would — test tooling for replaying shrunk schedules
    /// that involve delayed/reordered chain-shortening messages.
    #[doc(hidden)]
    pub fn test_learn_location(&self, target: CompletId, node: u32, epoch: u64) {
        self.learn_location(target, node, epoch);
    }

    fn spawn_monitor_thread(&self) {
        let core = self.clone();
        thread::Builder::new()
            .name(format!("fargo-monitor-{}", self.inner.name))
            .spawn(move || {
                while !core.inner.shutdown.load(Ordering::SeqCst) {
                    thread::sleep(core.inner.config.monitor_tick);
                    for event in core.inner.monitor.tick(core.inner.node.index()) {
                        core.fire_event(event);
                    }
                    core.sweep_held_moves();
                    core.wal_compact_if_due();
                    core.evaluate_health();
                    // Ring refresh + anti-entropy republish for the
                    // sharded location service (a no-op when disabled).
                    core.naming_rebalance();
                    // Clone out of the lock: a hook may add/remove hooks.
                    let hooks: Vec<TickHook> = {
                        let guard = core.inner.tick_hooks.lock();
                        guard.iter().map(|(_, h)| h.clone()).collect()
                    };
                    for hook in hooks {
                        hook();
                    }
                }
            })
            .expect("failed to spawn monitor thread");
    }

    fn install_sampler(&self) {
        let weak: Weak<CoreInner> = Arc::downgrade(&self.inner);
        self.inner
            .monitor
            .install_sampler(Arc::new(move |service: &Service| {
                let inner = weak.upgrade()?;
                sample_service(&inner, service)
            }));
    }
}

/// Measures one profiling service against the live Core state.
fn sample_service(inner: &Arc<CoreInner>, service: &Service) -> Option<f64> {
    match service {
        Service::CompletLoad => Some(inner.complets.read().len() as f64),
        Service::Bandwidth { peer } => {
            let bw = inner
                .net
                .model_bandwidth(inner.node, NodeId::from_index(*peer))
                .ok()?;
            Some(bw.map(|b| b as f64).unwrap_or(f64::MAX / 4.0))
        }
        Service::Latency { peer } => Some(
            inner
                .net
                .model_latency(inner.node, NodeId::from_index(*peer))
                .ok()?
                .as_secs_f64(),
        ),
        Service::MethodInvokeRate { src, dst } => {
            let total = inner.monitor.invocations.total(*src, *dst);
            Some(inner.monitor.rate_from_total(service, total))
        }
        Service::CompletSize { id } => {
            let slot = inner.complets.read().get(id).cloned()?;
            let guard = slot.state.try_lock()?;
            match &*guard {
                SlotState::Present(c) => Some(c.marshal().deep_size() as f64),
                _ => None,
            }
        }
        Service::MemoryUse => {
            let slots: Vec<_> = inner.complets.read().values().cloned().collect();
            let mut total = 0usize;
            for slot in slots {
                if let Some(guard) = slot.state.try_lock() {
                    if let SlotState::Present(c) = &*guard {
                        total += c.marshal().deep_size();
                    }
                }
            }
            Some(total as f64)
        }
        Service::QueueLen => Some(inner.transport.queue_len() as f64),
    }
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("name", &self.inner.name)
            .field("node", &self.inner.node)
            .field("complets", &self.complet_count())
            .finish()
    }
}

/// A handle for cancelling a subscription made with [`Core::subscribe_at`].
#[derive(Debug)]
pub struct RemoteSubscription {
    core: Core,
    /// `None` when the subscription was local after all.
    peer: Option<u32>,
    token: u64,
    selector: String,
}

impl RemoteSubscription {
    /// Cancels the subscription on both sides.
    pub fn cancel(self) {
        match self.peer {
            None => {
                self.core.unsubscribe(self.token);
            }
            Some(node) => {
                self.core.inner.sinks.lock().remove(&self.token);
                let listener = ListenerAddr::Core {
                    node: self.core.inner.node.index(),
                    token: self.token,
                };
                let _ = self.core.rpc(
                    node,
                    Request::Unsubscribe {
                        selector: self.selector.clone(),
                        listener,
                    },
                );
            }
        }
    }
}

/// One issued request awaiting its reply (transport-level correlation).
///
/// Created by [`Core::rpc_begin`]; dropping it abandons the request and
/// releases its correlation slot.
pub(crate) struct PendingRpc {
    core: Core,
    node: u32,
    req_id: ReqId,
    msg: Message,
    rx: Receiver<Reply>,
    budget: reliable::RetryBudget,
}

impl PendingRpc {
    /// Blocks for the reply, retransmitting on the same budget rules as
    /// the synchronous rpc path (the request has been aging since
    /// `rpc_begin`, so a long-issued call may time out immediately).
    pub(crate) fn wait(mut self) -> Result<Reply> {
        let result = loop {
            let Some(wait) = self.budget.attempt_wait() else {
                break Err(FargoError::Timeout);
            };
            match self.rx.recv_timeout(wait) {
                Ok(reply) => break Ok(reply),
                Err(_) => {
                    if !self.budget.advance() {
                        break Err(FargoError::Timeout);
                    }
                    self.core.inner.telemetry.rpc_retries_total.inc();
                    if let Err(e) = self.core.send_to(self.node, &self.msg) {
                        break Err(e);
                    }
                }
            }
        };
        if result.is_err() {
            self.core.inner.pending.lock().remove(&self.req_id);
        }
        result
    }
}

impl Drop for PendingRpc {
    fn drop(&mut self) {
        // Answered requests were already removed by `handle_reply`;
        // abandoned ones must not leak their correlation slot.
        self.core.inner.pending.lock().remove(&self.req_id);
    }
}

/// An invocation in flight, returned by [`BoundRef::call_async`] /
/// [`Core::invoke_async`]. The request was transmitted at issue time;
/// [`PendingCall::wait`] collects the result (retransmitting within the
/// rpc budget as needed). Dropping it abandons the call.
pub struct PendingCall {
    state: PendingCallState,
}

enum PendingCallState {
    /// The target was remote at issue time; a request is in flight.
    /// Boxed: the in-flight arm is several hundred bytes of retry
    /// state, the resolved arm just a `Result`.
    Remote {
        rpc: Box<PendingRpc>,
        target: CompletRef,
        method: String,
        args: Vec<Value>,
    },
    /// Resolved at issue time (local execution or an immediate error).
    Ready(Result<Value>),
}

impl PendingCall {
    pub(crate) fn ready(result: Result<Value>) -> Self {
        PendingCall {
            state: PendingCallState::Ready(result),
        }
    }

    pub(crate) fn remote(
        rpc: PendingRpc,
        target: CompletRef,
        method: String,
        args: Vec<Value>,
    ) -> Self {
        PendingCall {
            state: PendingCallState::Remote {
                rpc: Box::new(rpc),
                target,
                method,
                args,
            },
        }
    }

    /// Blocks until the invocation resolves and returns its result.
    ///
    /// # Errors
    ///
    /// Propagates invocation failures exactly as [`BoundRef::call`]
    /// does.
    pub fn wait(self) -> Result<Value> {
        match self.state {
            PendingCallState::Ready(r) => r,
            PendingCallState::Remote {
                rpc,
                target,
                method,
                args,
            } => {
                let core = rpc.core.clone();
                match rpc.wait()? {
                    Reply::InvokeOk {
                        value,
                        final_location,
                        target: id,
                        ..
                    } => {
                        core.inner.trackers.credit(id);
                        target.set_last_known(final_location);
                        Ok(value)
                    }
                    Reply::Err(FargoError::UnknownComplet(_)) => {
                        // The fast-path destination neither hosts nor
                        // tracks the target (it moved, or the tracker was
                        // collected). The blocking path re-routes through
                        // trackers and the home registry.
                        core.invoke(&target, &method, &args)
                    }
                    Reply::Err(e) => Err(e),
                    other => Err(FargoError::Protocol(format!(
                        "unexpected invoke reply {other:?}"
                    ))),
                }
            }
        }
    }
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            PendingCallState::Remote { rpc, method, .. } => f
                .debug_struct("PendingCall")
                .field("req_id", &rpc.req_id)
                .field("method", method)
                .finish(),
            PendingCallState::Ready(r) => f
                .debug_struct("PendingCall")
                .field("ready", &r.is_ok())
                .finish(),
        }
    }
}

/// A complet reference bound to a local Core: the callable **stub**.
///
/// `BoundRef` is what application code outside any complet holds; it
/// plays the role of the stub object in Figure 2 — interface-identical
/// calls (`call`), plus access to the meta-reference (`meta`).
#[derive(Clone)]
pub struct BoundRef {
    core: Core,
    r: CompletRef,
}

impl BoundRef {
    /// Invokes a method on the target complet, wherever it currently is.
    ///
    /// # Errors
    ///
    /// Propagates invocation failures (unknown complet, no such method,
    /// application errors, network failures, …).
    pub fn call(&self, method: &str, args: &[Value]) -> Result<Value> {
        self.core.invoke(&self.r, method, args)
    }

    /// Begins an invocation without blocking for its result: the request
    /// goes on the wire immediately and the returned [`PendingCall`]
    /// collects it later. Thousands of calls can be in flight from one
    /// thread this way; `wait` applies the same retransmission budget
    /// and at-most-once semantics as [`BoundRef::call`].
    pub fn call_async(&self, method: &str, args: &[Value]) -> PendingCall {
        self.core.invoke_async(&self.r, method, args)
    }

    /// The underlying portable reference (shared, not a copy: retyping
    /// through it is visible to this stub too).
    pub fn complet_ref(&self) -> &CompletRef {
        &self.r
    }

    /// The target's identity.
    pub fn id(&self) -> CompletId {
        self.r.id()
    }

    /// The target anchor's type name.
    pub fn target_type(&self) -> String {
        self.r.target_type()
    }

    /// The Core this stub is bound to.
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// The reference's meta-reference (§3.2).
    pub fn meta(&self) -> MetaRef {
        self.core.meta_ref(&self.r)
    }

    /// Moves the target complet to another Core.
    ///
    /// # Errors
    ///
    /// Fails if the destination is unknown or the move cannot complete.
    pub fn move_to(&self, core_name: &str) -> Result<()> {
        self.core.move_complet(self.r.id(), core_name, None)
    }

    /// Moves the target complet and invokes `method(args)` on it at the
    /// destination (call-with-continuation, §3.3).
    ///
    /// # Errors
    ///
    /// Fails if the destination is unknown or the move cannot complete.
    pub fn move_with(&self, core_name: &str, method: &str, args: Vec<Value>) -> Result<()> {
        self.core
            .move_complet(self.r.id(), core_name, Some((method.to_owned(), args)))
    }
}

impl std::fmt::Debug for BoundRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoundRef({} @ {})", self.r, self.core.name())
    }
}

/// Invocation context plumbing shared by the invocation and movement
/// units.
impl Core {
    pub(crate) fn make_ctx(&self, id: CompletId, type_name: &str, chain: Vec<CompletId>) -> Ctx {
        Ctx::new(self.clone(), id, type_name.to_owned(), chain)
    }

    /// Builds a bare invocation context for driving complet code outside
    /// the normal dispatch path — benchmarking and test tooling only.
    #[doc(hidden)]
    pub fn test_ctx(&self, id: CompletId, type_name: &str) -> Ctx {
        self.make_ctx(id, type_name, vec![id])
    }

    /// Executes the deferred relocations a [`Ctx`] accumulated.
    pub(crate) fn run_deferred(&self, ctx: Ctx) {
        for d in ctx.deferred {
            let _ = self.move_complet(d.target, &d.dest, d.continuation);
        }
    }
}
