//! The Movement unit: relocation under layout constraints (§3.3).
//!
//! Movement marshals the moved complet's closure, applying a per-relocator
//! routine to every outgoing complet reference it detects:
//!
//! * `link` — keep tracking;
//! * `pull` — the target joins the move stream (transitively);
//! * `duplicate` — a *copy* of the target joins the stream and the moved
//!   source is re-bound to the copy;
//! * `stamp` — only the target's type travels; the destination re-binds
//!   to a local complet of that type.
//!
//! Everything that moves as a result of one request ships in **one**
//! inter-Core message. Incoming references are preserved by repointing
//! the local trackers to the destination; outgoing references are
//! preserved because descriptors keep tracking their targets.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::thread;

use fargo_telemetry::{JournalKind, TraceContext};
use fargo_wire::{CompletId, RefDescriptor, Value};

use crate::complet::Complet;
use crate::error::{FargoError, Result};
use crate::events::EventPayload;
use crate::proto::{CompletPacket, Continuation, Reply, Request};
use crate::reference::relocator::{ArrivalAction, MarshalAction};
use crate::reference::tracker::TrackerTarget;
use crate::reference::CompletRef;
use crate::runtime::{CompletSlot, Core, SlotState};
use crate::telemetry;

/// A complet taken out of its slot for departure.
struct Departing {
    id: CompletId,
    type_name: String,
    complet: Box<dyn Complet>,
    names: Vec<String>,
}

impl Core {
    /// Moves a complet (and everything its references co-locate with it)
    /// to the Core named `dest`, optionally invoking
    /// `continuation = (method, args)` on it after arrival.
    ///
    /// The complet need not be hosted here: the request is forwarded to
    /// its current host.
    ///
    /// # Errors
    ///
    /// Fails when the destination or complet is unknown, the complet is
    /// already in transit, or the transfer fails. On failure the complet
    /// remains usable at its current Core.
    pub fn move_complet(
        &self,
        id: CompletId,
        dest: &str,
        continuation: Option<(String, Vec<Value>)>,
    ) -> Result<()> {
        let dest_node = self.resolve_core(dest)?;
        if !self.hosts(id) {
            let host = self.locate(id)?;
            if host == self.inner.node.index() {
                return Err(FargoError::UnknownComplet(id));
            }
            if host == dest_node {
                return Ok(());
            }
            return match self.rpc(
                host,
                Request::MoveRequest {
                    id,
                    dest: dest_node,
                },
            )? {
                Reply::Ok => Ok(()),
                Reply::Err(e) => Err(e),
                other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
            };
        }
        if dest_node == self.inner.node.index() {
            return Ok(());
        }
        self.move_local(id, dest_node, continuation)
    }

    /// The sending half of the mobility protocol for a locally hosted
    /// root complet. Wraps the actual work in a `move` span (root, or a
    /// child of the ambient trace when moved from inside an invocation).
    fn move_local(
        &self,
        root: CompletId,
        dest_node: u32,
        continuation: Option<(String, Vec<Value>)>,
    ) -> Result<()> {
        let t = &self.inner.telemetry;
        let span = if t.trace_enabled {
            let parent = telemetry::current_trace();
            let ctx = parent.map_or_else(TraceContext::new_root, |p| p.child());
            let timer = t.spans.start(
                ctx,
                parent.map_or(0, |p| p.span_id),
                format!("move {root} -> {}", self.core_name_of(dest_node)),
            );
            Some((timer, telemetry::enter_trace(ctx)))
        } else {
            None
        };
        let result = self.move_local_inner(root, dest_node, continuation);
        if let Some((timer, scope)) = span {
            drop(scope);
            timer.finish(&t.spans, &self.inner.name);
        }
        result
    }

    fn move_local_inner(
        &self,
        root: CompletId,
        dest_node: u32,
        continuation: Option<(String, Vec<Value>)>,
    ) -> Result<()> {
        let me = self.inner.node.index();
        let mut queue = VecDeque::from([root]);
        let mut visited: HashSet<CompletId> = HashSet::from([root]);
        let mut departing: Vec<Departing> = Vec::new();
        let mut packets: Vec<CompletPacket> = Vec::new();
        // Original target -> (copy id, type, state) for `duplicate` refs.
        let mut copies: HashMap<CompletId, (CompletId, String, Value)> = HashMap::new();
        let mut remote_pulls: Vec<(CompletId, u32)> = Vec::new();

        // Restores everything taken out so far after a failed move. Each
        // restored complet journals a compensating arrival: it had been
        // honestly marshalled out (and journaled as departed), and is now
        // resident here again.
        let restore = |departing: Vec<Departing>, core: &Core, departed_journaled: bool| {
            for d in departing {
                let slot = core.inner.complets.read().get(&d.id).cloned();
                if let Some(slot) = slot {
                    *slot.state.lock() = SlotState::Present(d.complet);
                }
                let mut naming = core.inner.naming.lock();
                for name in d.names {
                    naming.insert(
                        name,
                        RefDescriptor::link(d.id, &d.type_name, core.inner.node.index()),
                    );
                }
                drop(naming);
                if departed_journaled {
                    core.inner.telemetry.journal(
                        JournalKind::CompletArrived,
                        &d.id,
                        &d.type_name,
                        "restored",
                        None,
                    );
                }
            }
        };

        while let Some(cur) = queue.pop_front() {
            let Some(slot) = self.inner.complets.read().get(&cur).cloned() else {
                if cur == root {
                    restore(departing, self, false);
                    return Err(FargoError::UnknownComplet(root));
                }
                // A pull target hosted elsewhere: moved separately below.
                remote_pulls.push((cur, self.hint_for(cur)));
                continue;
            };
            let mut complet = match self.take_out(&slot) {
                Ok(c) => c,
                Err(e) => {
                    restore(departing, self, false);
                    return Err(e);
                }
            };

            let mut ctx = self.make_ctx(cur, &slot.type_name, vec![]);
            complet.pre_departure(&mut ctx);
            let mut state = complet.marshal();

            // The per-relocator marshal routines (§3.3).
            for r in state.collect_refs() {
                let action = match self.inner.relocators.resolve(&r.relocator) {
                    Ok(rl) => rl.marshal_action(),
                    Err(e) => {
                        *slot.state.lock() = SlotState::Present(complet);
                        restore(departing, self, false);
                        return Err(e);
                    }
                };
                self.inner.telemetry.record_relocator(&r.relocator);
                self.inner.telemetry.journal(
                    JournalKind::RelocatorDecision,
                    &cur,
                    &r.target.to_string(),
                    &r.relocator,
                    Some(dest_node),
                );
                self.inner.telemetry.journal(
                    JournalKind::RefEdgeCreated,
                    &cur,
                    &r.target.to_string(),
                    &r.relocator,
                    None,
                );
                match action {
                    MarshalAction::KeepTracking | MarshalAction::StampType => {}
                    MarshalAction::PullTarget => {
                        if visited.insert(r.target) {
                            queue.push_back(r.target);
                        }
                    }
                    MarshalAction::DuplicateTarget => {
                        if let std::collections::hash_map::Entry::Vacant(e) = copies.entry(r.target)
                        {
                            // An unreachable target falls back to
                            // tracking the original.
                            if let Some((type_name, dup_state)) =
                                self.snapshot_complet(r.target, r.last_known)
                            {
                                let copy_id = CompletId::new(
                                    me,
                                    self.inner.complet_seq.fetch_add(1, Ordering::Relaxed),
                                );
                                e.insert((copy_id, type_name, dup_state));
                            }
                        }
                    }
                }
            }
            // Re-bind duplicate references in the marshaled state to
            // their copies.
            if !copies.is_empty() {
                state = state.transform_refs(&mut |r| match copies.get(&r.target) {
                    Some((copy_id, _, _)) if r.relocator == "duplicate" => RefDescriptor {
                        target: *copy_id,
                        last_known: dest_node,
                        ..r
                    },
                    _ => r,
                });
            }

            let names = self.take_names(cur);
            packets.push(CompletPacket {
                id: cur,
                type_name: slot.type_name.clone(),
                state,
                names: names.clone(),
            });
            departing.push(Departing {
                id: cur,
                type_name: slot.type_name.clone(),
                complet,
                names,
            });
        }

        for (orig, (copy_id, type_name, state)) in &copies {
            let _ = orig;
            packets.push(CompletPacket {
                id: *copy_id,
                type_name: type_name.clone(),
                state: state.clone(),
                names: vec![],
            });
        }

        // One inter-Core message carries the whole co-moving closure.
        {
            let t = &self.inner.telemetry;
            t.move_comoved.observe(packets.len() as u64);
            t.move_update_set.observe(departing.len() as u64);
            t.move_marshal_bytes
                .observe(packets.iter().map(|p| p.state.deep_size() as u64).sum());
        }
        let continuation = continuation.map(|(method, args)| Continuation {
            target: root,
            method,
            args,
        });
        // Journal departures at marshal time, *before* the Move rpc is
        // sent: the rpc send stamps a later HLC, so the destination's
        // arrival entries — recorded after receive-side clock merge — are
        // guaranteed to order after these in the merged timeline.
        for d in &departing {
            self.inner.telemetry.journal(
                JournalKind::CompletDeparted,
                &d.id,
                &d.type_name,
                "move",
                Some(dest_node),
            );
        }
        match self.rpc(
            dest_node,
            Request::Move {
                packets,
                continuation,
            },
        ) {
            Ok(Reply::MoveOk { .. }) => {
                for mut d in departing {
                    let mut ctx = self.make_ctx(d.id, &d.type_name, vec![]);
                    d.complet.post_departure(&mut ctx);
                    // Release the old copy; the tracker forwards from now
                    // on (the incoming-reference fix-up of §3.3).
                    if let Some(slot) = self.inner.complets.write().remove(&d.id) {
                        *slot.state.lock() = SlotState::Gone;
                    }
                    self.inner
                        .trackers
                        .point(d.id, TrackerTarget::Forward(dest_node));
                    self.inner.telemetry.journal(
                        JournalKind::TrackerForwarded,
                        &d.id,
                        &d.type_name,
                        "",
                        Some(dest_node),
                    );
                    self.note_location(d.id, dest_node);
                    if d.id.origin != me {
                        let _ = self.send_to(
                            d.id.origin,
                            &crate::proto::Message::Notify(crate::proto::Notify::LocationUpdate {
                                target: d.id,
                                now_at: dest_node,
                            }),
                        );
                    }
                    self.fire_event(EventPayload::CompletDeparted {
                        id: d.id,
                        type_name: d.type_name,
                        dest: dest_node,
                        core: me,
                    });
                }
                // Pull targets hosted elsewhere follow with their own
                // (asynchronous) moves.
                for (id, _) in remote_pulls {
                    let core = self.clone();
                    let dest_name = self.core_name_of(dest_node);
                    thread::spawn(move || {
                        let _ = core.move_complet(id, &dest_name, None);
                    });
                }
                Ok(())
            }
            Ok(Reply::Err(e)) => {
                restore(departing, self, true);
                Err(e)
            }
            Ok(other) => {
                restore(departing, self, true);
                Err(FargoError::Protocol(format!("unexpected reply {other:?}")))
            }
            Err(e) => {
                restore(departing, self, true);
                Err(e)
            }
        }
    }

    /// Takes a complet out of its slot, marking it in transit.
    fn take_out(&self, slot: &CompletSlot) -> Result<Box<dyn Complet>> {
        let Some(mut guard) = slot.state.try_lock_for(self.inner.config.transit_wait) else {
            return Err(FargoError::Timeout);
        };
        match std::mem::replace(&mut *guard, SlotState::InTransit) {
            SlotState::Present(c) => Ok(c),
            SlotState::InTransit => Err(FargoError::AlreadyMoving(slot.id)),
            SlotState::Gone => {
                *guard = SlotState::Gone;
                Err(FargoError::UnknownComplet(slot.id))
            }
        }
    }

    /// Marshals a complet's state without removing it (for `duplicate`).
    /// Falls back to fetching from a remote host when not local.
    fn snapshot_complet(&self, id: CompletId, hint: u32) -> Option<(String, Value)> {
        if let Some(slot) = self.inner.complets.read().get(&id).cloned() {
            let guard = slot.state.try_lock_for(self.inner.config.transit_wait)?;
            if let SlotState::Present(c) = &*guard {
                return Some((slot.type_name.clone(), c.marshal()));
            }
            return None;
        }
        let host = self.locate(id).ok().or(Some(hint))?;
        match self.rpc(host, Request::FetchState { id }).ok()? {
            Reply::StateOk { type_name, state } => Some((type_name, state)),
            _ => None,
        }
    }

    fn hint_for(&self, id: CompletId) -> u32 {
        match self.inner.trackers.peek(id) {
            Some(TrackerTarget::Forward(n)) => n,
            _ => id.origin,
        }
    }

    /// Unbinds and returns every logical name bound to `id` here; the
    /// bindings travel with the complet.
    fn take_names(&self, id: CompletId) -> Vec<String> {
        let mut naming = self.inner.naming.lock();
        let names: Vec<String> = naming
            .iter()
            .filter(|(_, d)| d.target == id)
            .map(|(n, _)| n.clone())
            .collect();
        for n in &names {
            naming.remove(n);
        }
        names
    }

    /// The receiving half of the mobility protocol. Records an `arrive`
    /// span under the sender's move span when a trace context rode along.
    pub(crate) fn handle_move_stream(
        &self,
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
        trace: Option<TraceContext>,
    ) -> Reply {
        let t = &self.inner.telemetry;
        let span = match (t.trace_enabled, trace) {
            (true, Some(parent)) => {
                let ctx = parent.child();
                let timer =
                    t.spans
                        .start(ctx, parent.span_id, format!("arrive[{}]", packets.len()));
                Some((timer, telemetry::enter_trace(ctx)))
            }
            _ => None,
        };
        let reply = self.handle_move_stream_inner(packets, continuation);
        if let Some((timer, scope)) = span {
            drop(scope);
            timer.finish(&t.spans, &self.inner.name);
        }
        reply
    }

    fn handle_move_stream_inner(
        &self,
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
    ) -> Reply {
        let me = self.inner.node.index();

        // Admission control (§7): refuse the whole stream if it would
        // exceed this Core's capacity; the sender restores everything.
        if let Err(e) = self.admit(packets.len()) {
            return Reply::Err(e);
        }

        // Pass 1 — resolve arrival actions (notably `stamp`) for every
        // packet before installing anything, so a strict stamp failure
        // rejects the whole stream and the sender can restore.
        let mut prepared: Vec<(CompletPacket, Value)> = Vec::new();
        let arriving: HashSet<CompletId> = packets.iter().map(|p| p.id).collect();
        for packet in packets {
            let mut stamp_failure: Option<String> = None;
            let state = packet.state.clone().transform_refs(&mut |r| {
                let action = self
                    .inner
                    .relocators
                    .resolve(&r.relocator)
                    .map(|rl| rl.arrival_action())
                    .unwrap_or(ArrivalAction::Keep);
                match action {
                    ArrivalAction::Keep => r,
                    ArrivalAction::ResolveByType => match self.find_local_by_type(&r.target_type) {
                        Some(local) => RefDescriptor {
                            target: local,
                            last_known: me,
                            ..r
                        },
                        None if arriving.contains(&r.target) => r,
                        None => {
                            if self.inner.config.stamp_strict {
                                stamp_failure = Some(r.target_type.clone());
                            }
                            r
                        }
                    },
                }
            });
            if let Some(t) = stamp_failure {
                return Reply::Err(FargoError::StampUnresolved(t));
            }
            prepared.push((packet, state));
        }

        // Pass 2 — reconstruct and install.
        let mut arrived: Vec<CompletId> = Vec::new();
        for (packet, state) in prepared {
            let mut complet = match self.inner.registry.construct(&packet.type_name, &[]) {
                Ok(c) => c,
                Err(e) => return Reply::Err(e),
            };
            if let Err(e) = complet.unmarshal(state) {
                return Reply::Err(e);
            }
            let mut ctx = self.make_ctx(packet.id, &packet.type_name, vec![]);
            complet.pre_arrival(&mut ctx);
            self.install_complet_with_id(packet.id, &packet.type_name, complet);

            // Names travel with the complet.
            {
                let mut naming = self.inner.naming.lock();
                for name in &packet.names {
                    naming.insert(
                        name.clone(),
                        RefDescriptor::link(packet.id, &packet.type_name, me),
                    );
                }
            }
            if packet.id.origin != me {
                let _ = self.send_to(
                    packet.id.origin,
                    &crate::proto::Message::Notify(crate::proto::Notify::LocationUpdate {
                        target: packet.id,
                        now_at: me,
                    }),
                );
            }
            self.run_post_arrival(packet.id);
            self.fire_event(EventPayload::CompletArrived {
                id: packet.id,
                type_name: packet.type_name.clone(),
                core: me,
            });
            arrived.push(packet.id);
        }

        if let Some(cont) = continuation {
            let core = self.clone();
            thread::spawn(move || {
                let r = CompletRef::from_descriptor(RefDescriptor::link(
                    cont.target,
                    "",
                    core.inner.node.index(),
                ));
                let _ = core.invoke(&r, &cont.method, &cont.args);
            });
        }
        Reply::MoveOk { arrived }
    }

    /// Runs the `post_arrival` callback on a freshly installed complet,
    /// honouring any deferred moves it requests (itineraries).
    fn run_post_arrival(&self, id: CompletId) {
        let Some(slot) = self.inner.complets.read().get(&id).cloned() else {
            return;
        };
        let mut guard = slot.state.lock();
        if let SlotState::Present(complet) = &mut *guard {
            let mut ctx = self.make_ctx(id, &slot.type_name, vec![]);
            complet.post_arrival(&mut ctx);
            drop(guard);
            self.run_deferred(ctx);
        }
    }

    /// Serves `FetchState` (remote duplicate).
    pub(crate) fn handle_fetch_state(&self, id: CompletId) -> Reply {
        let Some(slot) = self.inner.complets.read().get(&id).cloned() else {
            return Reply::Err(FargoError::UnknownComplet(id));
        };
        let Some(guard) = slot.state.try_lock_for(self.inner.config.transit_wait) else {
            return Reply::Err(FargoError::Timeout);
        };
        match &*guard {
            SlotState::Present(c) => Reply::StateOk {
                type_name: slot.type_name.clone(),
                state: c.marshal(),
            },
            _ => Reply::Err(FargoError::AlreadyMoving(id)),
        }
    }

    /// Resolves a complet's current host by walking location knowledge
    /// (trackers or the home registry, depending on the mode of the Cores
    /// consulted).
    ///
    /// # Errors
    ///
    /// Fails when no Core admits to knowing the complet.
    pub fn locate(&self, id: CompletId) -> Result<u32> {
        let me = self.inner.node.index();
        if self.hosts(id) {
            return Ok(me);
        }
        let mut cur = match self.inner.trackers.peek(id) {
            Some(TrackerTarget::Forward(n)) => n,
            _ => id.origin,
        };
        if cur == me {
            return Err(FargoError::UnknownComplet(id));
        }
        for _ in 0..self.inner.config.max_hops {
            match self.rpc(cur, Request::WhereIs { id })? {
                Reply::WhereOk { node: Some(n) } => {
                    if n == cur {
                        return Ok(n);
                    }
                    cur = n;
                }
                Reply::WhereOk { node: None } => return Err(FargoError::UnknownComplet(id)),
                Reply::Err(e) => return Err(e),
                other => return Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
            }
        }
        Err(FargoError::HopLimit(self.inner.config.max_hops))
    }
}
