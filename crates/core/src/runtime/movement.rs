//! The Movement unit: relocation under layout constraints (§3.3).
//!
//! Movement marshals the moved complet's closure, applying a per-relocator
//! routine to every outgoing complet reference it detects:
//!
//! * `link` — keep tracking;
//! * `pull` — the target joins the move stream (transitively);
//! * `duplicate` — a *copy* of the target joins the stream and the moved
//!   source is re-bound to the copy;
//! * `stamp` — only the target's type travels; the destination re-binds
//!   to a local complet of that type.
//!
//! Everything that moves as a result of one request ships in **one**
//! inter-Core message. Incoming references are preserved by repointing
//! the local trackers to the destination; outgoing references are
//! preserved because descriptors keep tracking their targets.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::thread;

use fargo_telemetry::{JournalKind, TraceContext};
use fargo_wire::{CompletId, RefDescriptor, Value};

use crate::complet::Complet;
use crate::error::{FargoError, Result};
use crate::events::EventPayload;
use crate::proto::{CompletPacket, Continuation, MoveTxnState, Reply, Request};
use crate::reference::relocator::{ArrivalAction, MarshalAction};
use crate::reference::tracker::TrackerTarget;
use crate::reference::CompletRef;
use crate::runtime::{CompletSlot, Core, SlotState};
use crate::telemetry;

/// A complet taken out of its slot for departure.
struct Departing {
    id: CompletId,
    type_name: String,
    complet: Box<dyn Complet>,
    names: Vec<String>,
}

/// A move stream that passed `MovePrepare` validation and now waits for
/// the source's commit or abort. The complets are fully reconstructed
/// but **not** installed — invisible to invocation until committed.
pub(crate) struct HeldMove {
    complets: Vec<(CompletPacket, Box<dyn Complet>)>,
    continuation: Option<Continuation>,
    source: u32,
    /// When to start asking the source for its verdict, in [`Clock`]
    /// microseconds (re-armed after each unanswered query so monitor
    /// ticks don't stack resolvers).
    ///
    /// [`Clock`]: fargo_telemetry::Clock
    deadline: u64,
}

/// How the source resolved a move whose commit round went unanswered.
enum InDoubt {
    /// The destination holds (or already activated) the stream: the move
    /// happened; finalize the departure.
    Committed,
    /// The destination discarded the stream after an abort: restore.
    Aborted,
    /// The destination is unreachable; the recorded commit decision
    /// stands, so finalize — but report [`FargoError::MoveInDoubt`].
    Unconfirmed,
}

impl Core {
    /// Moves a complet (and everything its references co-locate with it)
    /// to the Core named `dest`, optionally invoking
    /// `continuation = (method, args)` on it after arrival.
    ///
    /// The complet need not be hosted here: the request is forwarded to
    /// its current host.
    ///
    /// # Errors
    ///
    /// Fails when the destination or complet is unknown, the complet is
    /// already in transit, or the transfer fails. On failure the complet
    /// remains usable at its current Core.
    pub fn move_complet(
        &self,
        id: CompletId,
        dest: &str,
        continuation: Option<(String, Vec<Value>)>,
    ) -> Result<()> {
        let dest_node = self.resolve_core(dest)?;
        if !self.hosts(id) {
            let host = self.locate(id)?;
            if host == self.inner.node.index() {
                return Err(FargoError::UnknownComplet(id));
            }
            if host == dest_node {
                return Ok(());
            }
            return match self.rpc(
                host,
                Request::MoveRequest {
                    id,
                    dest: dest_node,
                },
            )? {
                Reply::Ok => Ok(()),
                Reply::Err(e) => Err(e),
                other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
            };
        }
        if dest_node == self.inner.node.index() {
            return Ok(());
        }
        self.move_local(id, dest_node, continuation)
    }

    /// The sending half of the mobility protocol for a locally hosted
    /// root complet. Wraps the actual work in a `move` span (root, or a
    /// child of the ambient trace when moved from inside an invocation).
    fn move_local(
        &self,
        root: CompletId,
        dest_node: u32,
        continuation: Option<(String, Vec<Value>)>,
    ) -> Result<()> {
        let t = &self.inner.telemetry;
        let span = if t.trace_enabled {
            let parent = telemetry::current_trace();
            let ctx = parent.map_or_else(TraceContext::new_root, |p| p.child());
            let timer = t.spans.start(
                ctx,
                parent.map_or(0, |p| p.span_id),
                format!("move {root} -> {}", self.core_name_of(dest_node)),
            );
            Some((timer, telemetry::enter_trace(ctx)))
        } else {
            None
        };
        t.moves_attempted_total.inc();
        let result = self.move_local_inner(root, dest_node, continuation);
        if result.is_err() {
            t.move_failures_total.inc();
        }
        if let Some((timer, scope)) = span {
            drop(scope);
            timer.finish(&t.spans, &self.inner.name);
        }
        result
    }

    fn move_local_inner(
        &self,
        root: CompletId,
        dest_node: u32,
        continuation: Option<(String, Vec<Value>)>,
    ) -> Result<()> {
        let me = self.inner.node.index();
        let mut queue = VecDeque::from([root]);
        let mut visited: HashSet<CompletId> = HashSet::from([root]);
        let mut departing: Vec<Departing> = Vec::new();
        let mut packets: Vec<CompletPacket> = Vec::new();
        // Original target -> (copy id, type, state) for `duplicate` refs.
        let mut copies: HashMap<CompletId, (CompletId, String, Value)> = HashMap::new();
        let mut remote_pulls: Vec<(CompletId, u32)> = Vec::new();

        // Restores everything taken out so far after a failed move. Each
        // restored complet journals a compensating arrival: it had been
        // honestly marshalled out (and journaled as departed), and is now
        // resident here again.
        let restore = |departing: Vec<Departing>, core: &Core, departed_journaled: bool| {
            for d in departing {
                let slot = core.inner.complets.read().get(&d.id).cloned();
                if let Some(slot) = slot {
                    *slot.state.lock() = SlotState::Present(d.complet);
                }
                let mut naming = core.inner.naming.lock();
                for name in d.names {
                    naming.insert(
                        name,
                        RefDescriptor::link(d.id, &d.type_name, core.inner.node.index()),
                    );
                }
                drop(naming);
                if departed_journaled {
                    core.inner.telemetry.journal(
                        JournalKind::CompletArrived,
                        &d.id,
                        &d.type_name,
                        "restored",
                        None,
                    );
                }
            }
        };

        let marshal_start = {
            let t = &self.inner.telemetry;
            t.phase_timing.then(|| t.phase_now_us())
        };
        while let Some(cur) = queue.pop_front() {
            let Some(slot) = self.inner.complets.read().get(&cur).cloned() else {
                if cur == root {
                    restore(departing, self, false);
                    return Err(FargoError::UnknownComplet(root));
                }
                // A pull target hosted elsewhere: moved separately below.
                remote_pulls.push((cur, self.hint_for(cur)));
                continue;
            };
            let mut complet = match self.take_out(&slot) {
                Ok(c) => c,
                Err(e) => {
                    restore(departing, self, false);
                    return Err(e);
                }
            };

            let mut ctx = self.make_ctx(cur, &slot.type_name, vec![]);
            complet.pre_departure(&mut ctx);
            let mut state = complet.marshal();

            // The per-relocator marshal routines (§3.3).
            for r in state.collect_refs() {
                let action = match self.inner.relocators.resolve(&r.relocator) {
                    Ok(rl) => rl.marshal_action(),
                    Err(e) => {
                        *slot.state.lock() = SlotState::Present(complet);
                        restore(departing, self, false);
                        return Err(e);
                    }
                };
                self.inner.telemetry.record_relocator(&r.relocator);
                self.inner.telemetry.journal(
                    JournalKind::RelocatorDecision,
                    &cur,
                    &r.target.to_string(),
                    &r.relocator,
                    Some(dest_node),
                );
                self.inner.telemetry.journal(
                    JournalKind::RefEdgeCreated,
                    &cur,
                    &r.target.to_string(),
                    &r.relocator,
                    None,
                );
                match action {
                    MarshalAction::KeepTracking | MarshalAction::StampType => {}
                    MarshalAction::PullTarget => {
                        if visited.insert(r.target) {
                            queue.push_back(r.target);
                        }
                    }
                    MarshalAction::DuplicateTarget => {
                        if let std::collections::hash_map::Entry::Vacant(e) = copies.entry(r.target)
                        {
                            // An unreachable target falls back to
                            // tracking the original.
                            if let Some((type_name, dup_state)) =
                                self.snapshot_complet(r.target, r.last_known)
                            {
                                let copy_id = CompletId::new(
                                    me,
                                    self.inner.complet_seq.fetch_add(1, Ordering::Relaxed),
                                );
                                e.insert((copy_id, type_name, dup_state));
                            }
                        }
                    }
                }
            }
            // Re-bind duplicate references in the marshaled state to
            // their copies.
            if !copies.is_empty() {
                state = state.transform_refs(&mut |r| match copies.get(&r.target) {
                    Some((copy_id, _, _)) if r.relocator == "duplicate" => RefDescriptor {
                        target: *copy_id,
                        last_known: dest_node,
                        ..r
                    },
                    _ => r,
                });
            }

            let names = self.take_names(cur);
            packets.push(CompletPacket {
                id: cur,
                type_name: slot.type_name.clone(),
                state,
                names: names.clone(),
                epoch: self.bump_move_epoch(cur),
            });
            departing.push(Departing {
                id: cur,
                type_name: slot.type_name.clone(),
                complet,
                names,
            });
        }

        for (orig, (copy_id, type_name, state)) in &copies {
            let _ = orig;
            // Copies are brand-new complets: no move history, epoch 0.
            packets.push(CompletPacket {
                id: *copy_id,
                type_name: type_name.clone(),
                state: state.clone(),
                names: vec![],
                epoch: 0,
            });
        }

        // One inter-Core message carries the whole co-moving closure.
        {
            let t = &self.inner.telemetry;
            t.move_comoved.observe(packets.len() as u64);
            t.move_update_set.observe(departing.len() as u64);
            t.move_marshal_bytes
                .observe(packets.iter().map(|p| p.state.deep_size() as u64).sum());
            if let Some(t0) = marshal_start {
                // Closure marshalling (relocator walks + state capture)
                // is the marshal phase of a move.
                t.latency_marshal_us
                    .observe(t.phase_now_us().saturating_sub(t0));
            }
        }
        let continuation = continuation.map(|(method, args)| Continuation {
            target: root,
            method,
            args,
        });
        // Journal departures at marshal time, *before* the Move rpc is
        // sent: the rpc send stamps a later HLC, so the destination's
        // arrival entries — recorded after receive-side clock merge — are
        // guaranteed to order after these in the merged timeline.
        for d in &departing {
            self.inner.telemetry.journal(
                JournalKind::CompletDeparted,
                &d.id,
                &d.type_name,
                "move",
                Some(dest_node),
            );
        }
        // Two-phase transfer. The destination validates, reconstructs,
        // and *holds* the stream on `MovePrepare`; only `MoveCommit`
        // makes it live. The source records its verdict in the decision
        // log *before* the commit round, so a lost `MoveOk` resolves via
        // epoch query instead of duplicating or losing the complet.
        let txn_epoch = packets
            .iter()
            .find(|p| p.id == root)
            .map(|p| p.epoch)
            .unwrap_or(0);
        let abort = |core: &Core, e: &FargoError| {
            core.inner.move_decisions.record(root, txn_epoch, false);
            core.wal_append(&crate::runtime::wal::WalRecord::Decision {
                root,
                epoch: txn_epoch,
                committed: false,
                ids: vec![],
                dest: dest_node,
            });
            core.inner.telemetry.journal(
                JournalKind::MoveAborted,
                &root,
                "",
                &e.to_string(),
                Some(dest_node),
            );
            // Fire-and-forget: a lost abort is recovered by the
            // destination's hold-timeout query against the decision log.
            core.send_request_oneway(
                dest_node,
                Request::MoveAbort {
                    root,
                    epoch: txn_epoch,
                },
            );
        };
        match self.rpc(
            dest_node,
            Request::MovePrepare {
                root,
                epoch: txn_epoch,
                packets,
                continuation,
            },
        ) {
            Ok(Reply::PrepareOk { .. }) => {
                // The point of no return: once the commit verdict is
                // recorded, the destination owns the complets and the
                // source must never restore (that would duplicate them).
                // The write-ahead Decision record makes the verdict — and
                // the set of complets it gives away — survive a source
                // crash: recovery must not resurrect them.
                self.inner.move_decisions.record(root, txn_epoch, true);
                self.wal_append(&crate::runtime::wal::WalRecord::Decision {
                    root,
                    epoch: txn_epoch,
                    committed: true,
                    ids: departing.iter().map(|d| d.id).collect(),
                    dest: dest_node,
                });
                self.inner.telemetry.journal(
                    JournalKind::MoveCommitted,
                    &root,
                    "",
                    &txn_epoch.to_string(),
                    Some(dest_node),
                );
                let commit = self.rpc(
                    dest_node,
                    Request::MoveCommit {
                        root,
                        epoch: txn_epoch,
                    },
                );
                match commit {
                    Ok(Reply::MoveOk { .. }) => {
                        self.finalize_departure(departing, remote_pulls, dest_node);
                        Ok(())
                    }
                    _ => match self.resolve_in_doubt(root, txn_epoch, dest_node) {
                        InDoubt::Committed => {
                            self.finalize_departure(departing, remote_pulls, dest_node);
                            Ok(())
                        }
                        InDoubt::Unconfirmed => {
                            self.finalize_departure(departing, remote_pulls, dest_node);
                            Err(FargoError::MoveInDoubt(root))
                        }
                        InDoubt::Aborted => {
                            restore(departing, self, true);
                            Err(FargoError::Protocol(format!(
                                "destination aborted committed move of {root}"
                            )))
                        }
                    },
                }
            }
            Ok(Reply::Err(e)) => {
                abort(self, &e);
                restore(departing, self, true);
                Err(e)
            }
            Ok(other) => {
                let e = FargoError::Protocol(format!("unexpected reply {other:?}"));
                abort(self, &e);
                restore(departing, self, true);
                Err(e)
            }
            Err(e) => {
                abort(self, &e);
                restore(departing, self, true);
                Err(e)
            }
        }
    }

    /// Completes a committed departure: `post_departure` callbacks, slot
    /// release, tracker forwarding, location gossip, events, and the
    /// follow-up moves of remotely hosted pull targets.
    fn finalize_departure(
        &self,
        departing: Vec<Departing>,
        remote_pulls: Vec<(CompletId, u32)>,
        dest_node: u32,
    ) {
        let me = self.inner.node.index();
        for mut d in departing {
            let mut ctx = self.make_ctx(d.id, &d.type_name, vec![]);
            d.complet.post_departure(&mut ctx);
            // Release the old copy; the tracker forwards from now
            // on (the incoming-reference fix-up of §3.3).
            if let Some(slot) = self.inner.complets.write().remove(&d.id) {
                *slot.state.lock() = SlotState::Gone;
            }
            // The departure's epoch (bumped at marshal time) rides on the
            // repoint and the gossip, so stragglers from earlier
            // incarnations can never undo them.
            let epoch = self.current_move_epoch(d.id);
            let _ = self
                .inner
                .trackers
                .point(d.id, TrackerTarget::Forward(dest_node), epoch);
            self.inner.telemetry.journal(
                JournalKind::TrackerForwarded,
                &d.id,
                &d.type_name,
                "",
                Some(dest_node),
            );
            self.note_location(d.id, dest_node, epoch);
            // Commit point of the two-phase move: publish the new
            // placement to its owning location shard.
            self.publish_location(d.id, dest_node, epoch, true);
            self.wal_append(&crate::runtime::wal::WalRecord::Departed {
                id: d.id,
                epoch,
                dest: Some(dest_node),
            });
            if d.id.origin != me {
                let _ = self.send_to(
                    d.id.origin,
                    &crate::proto::Message::Notify(crate::proto::Notify::LocationUpdate {
                        target: d.id,
                        now_at: dest_node,
                        epoch,
                    }),
                );
            }
            self.fire_event(EventPayload::CompletDeparted {
                id: d.id,
                type_name: d.type_name,
                dest: dest_node,
                core: me,
            });
        }
        // Pull targets hosted elsewhere follow with their own
        // (asynchronous) moves. One retry covers transient faults; a
        // complet already in transit belongs to another move and is
        // left alone. A final failure is journaled and surfaced as a
        // `moveFailed` event instead of vanishing.
        for (id, _) in remote_pulls {
            let core = self.clone();
            let dest_name = self.core_name_of(dest_node);
            thread::spawn(move || {
                let mut result = core.move_complet(id, &dest_name, None);
                if let Err(e) = &result {
                    if !matches!(e, FargoError::AlreadyMoving(_)) {
                        result = core.move_complet(id, &dest_name, None);
                    }
                }
                if let Err(e) = result {
                    core.inner.telemetry.journal(
                        JournalKind::RelocatorDecision,
                        &id,
                        &dest_name,
                        &format!("pull follow-up failed: {e}"),
                        Some(dest_node),
                    );
                    core.fire_event(EventPayload::MoveFailed {
                        id,
                        dest: dest_node,
                        core: core.inner.node.index(),
                        error: e.to_string(),
                    });
                }
            });
        }
    }

    /// Resolves a committed move whose commit round went unanswered by
    /// asking the destination what it knows about the `(root, epoch)`
    /// transaction.
    fn resolve_in_doubt(&self, root: CompletId, epoch: u64, dest_node: u32) -> InDoubt {
        self.inner.telemetry.move_indoubt_total.inc();
        match self.rpc(dest_node, Request::MoveQuery { root, epoch }) {
            Ok(Reply::MoveState { state }) => match state {
                // Still held: the commit was lost. Re-nudge it (fire and
                // forget; the destination's decision query is the
                // backstop) and treat the move as done.
                MoveTxnState::Held => {
                    self.send_request_oneway(dest_node, Request::MoveCommit { root, epoch });
                    InDoubt::Committed
                }
                MoveTxnState::Committed => InDoubt::Committed,
                MoveTxnState::Aborted => InDoubt::Aborted,
                // No record: the destination already activated and its
                // outcome entry was evicted — presumed commit (it cannot
                // have aborted a move we decided to commit).
                MoveTxnState::Unknown => InDoubt::Committed,
            },
            _ => InDoubt::Unconfirmed,
        }
    }

    /// Sends a request without registering a pending reply slot: the
    /// answer (if any) is dropped by `handle_reply`. Used for abort and
    /// commit nudges whose delivery is guaranteed by timeout queries,
    /// not by retransmission.
    fn send_request_oneway(&self, node: u32, body: Request) {
        let req_id = self.inner.req_seq.fetch_add(1, Ordering::Relaxed);
        let msg = crate::proto::Message::Request {
            req_id,
            origin: self.inner.node.index(),
            trace: None,
            body,
        };
        let _ = self.send_to(node, &msg);
    }

    /// Bumps and returns the move epoch of a departing complet. Epochs
    /// are monotonic across hosts: arrival records the packet's epoch
    /// into the local counter, so the next departure continues from it.
    fn bump_move_epoch(&self, id: CompletId) -> u64 {
        let mut g = self.inner.move_epochs.lock();
        let e = g.entry(id).or_insert(0);
        *e += 1;
        *e
    }

    /// Takes a complet out of its slot, marking it in transit.
    fn take_out(&self, slot: &CompletSlot) -> Result<Box<dyn Complet>> {
        let Some(mut guard) = slot.state.try_lock_for(self.inner.config.transit_wait) else {
            return Err(FargoError::Timeout);
        };
        match std::mem::replace(&mut *guard, SlotState::InTransit) {
            SlotState::Present(c) => Ok(c),
            SlotState::InTransit => Err(FargoError::AlreadyMoving(slot.id)),
            SlotState::Gone => {
                *guard = SlotState::Gone;
                Err(FargoError::UnknownComplet(slot.id))
            }
        }
    }

    /// Marshals a complet's state without removing it (for `duplicate`).
    /// Falls back to fetching from a remote host when not local.
    fn snapshot_complet(&self, id: CompletId, hint: u32) -> Option<(String, Value)> {
        if let Some(slot) = self.inner.complets.read().get(&id).cloned() {
            let guard = slot.state.try_lock_for(self.inner.config.transit_wait)?;
            if let SlotState::Present(c) = &*guard {
                return Some((slot.type_name.clone(), c.marshal()));
            }
            return None;
        }
        let host = self.locate(id).ok().or(Some(hint))?;
        match self.rpc(host, Request::FetchState { id }).ok()? {
            Reply::StateOk { type_name, state } => Some((type_name, state)),
            _ => None,
        }
    }

    fn hint_for(&self, id: CompletId) -> u32 {
        match self.inner.trackers.peek(id) {
            Some(TrackerTarget::Forward(n)) => n,
            _ => id.origin,
        }
    }

    /// Unbinds and returns every logical name bound to `id` here; the
    /// bindings travel with the complet.
    fn take_names(&self, id: CompletId) -> Vec<String> {
        let mut naming = self.inner.naming.lock();
        let names: Vec<String> = naming
            .iter()
            .filter(|(_, d)| d.target == id)
            .map(|(n, _)| n.clone())
            .collect();
        for n in &names {
            naming.remove(n);
        }
        names
    }

    /// The receiving half of the mobility protocol. Records an `arrive`
    /// span under the sender's move span when a trace context rode along.
    pub(crate) fn handle_move_stream(
        &self,
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
        trace: Option<TraceContext>,
    ) -> Reply {
        let t = &self.inner.telemetry;
        let span = match (t.trace_enabled, trace) {
            (true, Some(parent)) => {
                let ctx = parent.child();
                let timer =
                    t.spans
                        .start(ctx, parent.span_id, format!("arrive[{}]", packets.len()));
                Some((timer, telemetry::enter_trace(ctx)))
            }
            _ => None,
        };
        let reply = self.handle_move_stream_inner(packets, continuation);
        if let Some((timer, scope)) = span {
            drop(scope);
            timer.finish(&t.spans, &self.inner.name);
        }
        reply
    }

    fn handle_move_stream_inner(
        &self,
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
    ) -> Reply {
        // Admission control (§7): refuse the whole stream if it would
        // exceed this Core's capacity; the sender restores everything.
        if let Err(e) = self.admit(packets.len()) {
            return Reply::Err(e);
        }
        let reconstructed = match self.reconstruct_stream(packets) {
            Ok(r) => r,
            Err(e) => return Reply::Err(e),
        };
        let mut arrived: Vec<CompletId> = Vec::new();
        for (packet, complet) in reconstructed {
            self.install_arrival(&packet, complet);
            arrived.push(packet.id);
        }
        if let Some(cont) = continuation {
            self.spawn_continuation(cont);
        }
        Reply::MoveOk { arrived }
    }

    /// Pass 1 of arrival: resolves arrival actions (notably `stamp`) for
    /// every packet, then reconstructs (constructs + unmarshals) each
    /// complet — without installing anything, so a failure anywhere
    /// rejects the whole stream and the sender can restore.
    fn reconstruct_stream(
        &self,
        packets: Vec<CompletPacket>,
    ) -> Result<Vec<(CompletPacket, Box<dyn Complet>)>> {
        let me = self.inner.node.index();
        let mut prepared: Vec<(CompletPacket, Value)> = Vec::new();
        let arriving: HashSet<CompletId> = packets.iter().map(|p| p.id).collect();
        for packet in packets {
            let mut stamp_failure: Option<String> = None;
            let state = packet.state.clone().transform_refs(&mut |r| {
                let action = self
                    .inner
                    .relocators
                    .resolve(&r.relocator)
                    .map(|rl| rl.arrival_action())
                    .unwrap_or(ArrivalAction::Keep);
                match action {
                    ArrivalAction::Keep => r,
                    ArrivalAction::ResolveByType => match self.find_local_by_type(&r.target_type) {
                        Some(local) => RefDescriptor {
                            target: local,
                            last_known: me,
                            ..r
                        },
                        None if arriving.contains(&r.target) => r,
                        None => {
                            if self.inner.config.stamp_strict {
                                stamp_failure = Some(r.target_type.clone());
                            }
                            r
                        }
                    },
                }
            });
            if let Some(t) = stamp_failure {
                return Err(FargoError::StampUnresolved(t));
            }
            prepared.push((packet, state));
        }
        let mut out = Vec::with_capacity(prepared.len());
        for (packet, state) in prepared {
            let complet = self.inner.registry.reconstruct(&packet.type_name, state)?;
            out.push((packet, complet));
        }
        Ok(out)
    }

    /// Pass 2 of arrival: makes one reconstructed complet live on this
    /// Core — callbacks, install, epoch bookkeeping, names, location
    /// gossip, and the arrival event.
    fn install_arrival(&self, packet: &CompletPacket, mut complet: Box<dyn Complet>) {
        let me = self.inner.node.index();
        let mut ctx = self.make_ctx(packet.id, &packet.type_name, vec![]);
        complet.pre_arrival(&mut ctx);
        // Adopt the packet's move epoch *before* installing: the install
        // path points the local tracker at the current epoch, which must
        // already be this incarnation's — otherwise the fresh Local
        // tracker would carry epoch 0 and any stale Forward straggler
        // could overwrite it.
        if packet.epoch > 0 {
            self.inner
                .move_epochs
                .lock()
                .insert(packet.id, packet.epoch);
        }
        self.install_complet_with_id(packet.id, &packet.type_name, complet);

        // Names travel with the complet.
        {
            let mut naming = self.inner.naming.lock();
            for name in &packet.names {
                naming.insert(
                    name.clone(),
                    RefDescriptor::link(packet.id, &packet.type_name, me),
                );
            }
        }
        if packet.id.origin != me {
            let _ = self.send_to(
                packet.id.origin,
                &crate::proto::Message::Notify(crate::proto::Notify::LocationUpdate {
                    target: packet.id,
                    now_at: me,
                    epoch: packet.epoch,
                }),
            );
        }
        self.run_post_arrival(packet.id);
        // Write-ahead: from this point the arrival is visible to
        // invocation, so its state (possibly rewritten by
        // `post_arrival`) must survive a crash of this Core.
        self.wal_capture(packet.id);
        self.fire_event(EventPayload::CompletArrived {
            id: packet.id,
            type_name: packet.type_name.clone(),
            core: me,
        });
    }

    /// Runs a move continuation on its own thread (the invocation joins
    /// the normal dispatch path through a local reference).
    fn spawn_continuation(&self, cont: Continuation) {
        let core = self.clone();
        thread::spawn(move || {
            let r = CompletRef::from_descriptor(RefDescriptor::link(
                cont.target,
                "",
                core.inner.node.index(),
            ));
            let _ = core.invoke(&r, &cont.method, &cont.args);
        });
    }

    // --- two-phase arrival (prepare / commit / abort) ----------------------

    /// Serves `MovePrepare`: validates and reconstructs the stream, then
    /// holds it — invisible to invocation — until the source's verdict.
    pub(crate) fn handle_move_prepare(
        &self,
        origin: u32,
        root: CompletId,
        epoch: u64,
        packets: Vec<CompletPacket>,
        continuation: Option<Continuation>,
    ) -> Reply {
        let key = (root, epoch);
        // Retransmits and replays of a transaction we already know.
        if self.inner.held_moves.lock().contains_key(&key) {
            return Reply::PrepareOk { epoch };
        }
        match self.inner.move_outcomes.get(root, epoch) {
            Some(true) => return Reply::PrepareOk { epoch },
            Some(false) => {
                return Reply::Err(FargoError::Protocol(format!(
                    "move of {root} (epoch {epoch}) was already aborted"
                )))
            }
            None => {}
        }
        if let Err(e) = self.admit(packets.len()) {
            return Reply::Err(e);
        }
        // Snapshot the stream for the write-ahead log *before*
        // reconstruction consumes the packets: once this Core replies
        // `PrepareOk` it may hold the only copy of a committed move, so
        // the held state must survive a crash of this process.
        let wal_held = crate::runtime::wal::WalHeld {
            root,
            epoch,
            source: origin,
            packets: packets
                .iter()
                .map(|p| crate::runtime::wal::WalState {
                    id: p.id,
                    type_name: p.type_name.clone(),
                    state: p.state.clone(),
                    epoch: p.epoch,
                    names: p.names.clone(),
                })
                .collect(),
        };
        let complets = match self.reconstruct_stream(packets) {
            Ok(c) => c,
            Err(e) => return Reply::Err(e),
        };
        self.wal_append(&crate::runtime::wal::WalRecord::Held(wal_held));
        let held = HeldMove {
            complets,
            continuation,
            source: origin,
            deadline: self
                .inner
                .config
                .clock
                .deadline_us(self.inner.config.move_hold_timeout),
        };
        self.inner.held_moves.lock().insert(key, held);
        self.inner.telemetry.journal(
            JournalKind::MovePrepared,
            &root,
            "",
            &epoch.to_string(),
            Some(origin),
        );
        Reply::PrepareOk { epoch }
    }

    /// Serves `MoveCommit`: activates a held stream. A duplicate commit
    /// (the stream already activated) is acknowledged idempotently.
    pub(crate) fn handle_move_commit(
        &self,
        root: CompletId,
        epoch: u64,
        trace: Option<TraceContext>,
    ) -> Reply {
        let held = self.inner.held_moves.lock().remove(&(root, epoch));
        match held {
            Some(h) => {
                let arrived = self.activate_held(root, epoch, h, trace);
                Reply::MoveOk { arrived }
            }
            None => match self.inner.move_outcomes.get(root, epoch) {
                Some(true) => Reply::MoveOk { arrived: vec![] },
                Some(false) => Reply::Err(FargoError::Protocol(format!(
                    "move of {root} (epoch {epoch}) was aborted"
                ))),
                None => Reply::Err(FargoError::Protocol(format!(
                    "no prepared move of {root} (epoch {epoch})"
                ))),
            },
        }
    }

    /// Serves `MoveAbort`: discards a held stream. Recording the abort
    /// verdict (unless already committed) lets a late retransmitted
    /// `MovePrepare` be refused instead of re-held forever.
    pub(crate) fn handle_move_abort(&self, root: CompletId, epoch: u64) -> Reply {
        let held = self.inner.held_moves.lock().remove(&(root, epoch));
        if self.inner.move_outcomes.get(root, epoch) != Some(true) {
            self.inner.move_outcomes.record(root, epoch, false);
        }
        if held.is_some() {
            self.wal_append(&crate::runtime::wal::WalRecord::HeldResolved {
                root,
                epoch,
                committed: false,
            });
            self.inner.telemetry.journal(
                JournalKind::MoveAborted,
                &root,
                "",
                &epoch.to_string(),
                None,
            );
        }
        Reply::Ok
    }

    /// Serves `MoveQuery` (source asking the destination): what this Core
    /// knows about the `(root, epoch)` transaction it received.
    pub(crate) fn handle_move_query(&self, root: CompletId, epoch: u64) -> Reply {
        let state = if self.inner.held_moves.lock().contains_key(&(root, epoch)) {
            MoveTxnState::Held
        } else {
            match self.inner.move_outcomes.get(root, epoch) {
                Some(true) => MoveTxnState::Committed,
                Some(false) => MoveTxnState::Aborted,
                None => MoveTxnState::Unknown,
            }
        };
        Reply::MoveState { state }
    }

    /// Serves `MoveDecision` (destination asking the source): the verdict
    /// this Core recorded for a move it coordinated.
    pub(crate) fn handle_move_decision(&self, root: CompletId, epoch: u64) -> Reply {
        let state = match self.inner.move_decisions.get(root, epoch) {
            Some(true) => MoveTxnState::Committed,
            Some(false) => MoveTxnState::Aborted,
            None => MoveTxnState::Unknown,
        };
        Reply::MoveState { state }
    }

    /// Activates a held stream: installs every complet, records the
    /// committed outcome, and fires the continuation.
    fn activate_held(
        &self,
        root: CompletId,
        epoch: u64,
        held: HeldMove,
        trace: Option<TraceContext>,
    ) -> Vec<CompletId> {
        let t = &self.inner.telemetry;
        let span = match (t.trace_enabled, trace) {
            (true, Some(parent)) => {
                let ctx = parent.child();
                let timer = t.spans.start(
                    ctx,
                    parent.span_id,
                    format!("arrive[{}]", held.complets.len()),
                );
                Some((timer, telemetry::enter_trace(ctx)))
            }
            _ => None,
        };
        self.inner.move_outcomes.record(root, epoch, true);
        let mut arrived = Vec::with_capacity(held.complets.len());
        for (packet, complet) in held.complets {
            // A packet is stale if this Core already advanced the
            // complet to the packet's epoch or past it. That happens
            // when a crash landed between `install_arrival`'s State
            // appends and the HeldResolved append: recovery re-installs
            // the survivor from its fresher State records *and*
            // re-holds the transaction, so the late Committed verdict
            // re-runs this activation. Re-installing would clobber
            // acknowledged (possibly since-mutated) state with the
            // pre-arrival snapshot and re-fire the arrival callbacks —
            // acknowledge the duplicate without installing instead.
            if packet.epoch > 0 && self.current_move_epoch(packet.id) >= packet.epoch {
                arrived.push(packet.id);
                continue;
            }
            self.install_arrival(&packet, complet);
            arrived.push(packet.id);
        }
        // The live State records written by `install_arrival` supersede
        // the Held snapshot; resolving it keeps replay from re-holding a
        // transaction that already activated.
        self.wal_append(&crate::runtime::wal::WalRecord::HeldResolved {
            root,
            epoch,
            committed: true,
        });
        t.journal(
            JournalKind::MoveCommitted,
            &root,
            "",
            &epoch.to_string(),
            Some(held.source),
        );
        if let Some(cont) = held.continuation {
            self.spawn_continuation(cont);
        }
        if let Some((timer, scope)) = span {
            drop(scope);
            timer.finish(&t.spans, &self.inner.name);
        }
        arrived
    }

    /// Resolves held moves whose deadline passed by asking the source
    /// for its recorded verdict; called from the monitor thread each
    /// tick. While the source is unreachable the stream stays held (the
    /// deadline is re-armed past the query round-trip so ticks don't
    /// stack resolver threads): holding duplicates nothing, whereas
    /// discarding could lose the only copy of a committed move.
    pub(crate) fn sweep_held_moves(&self) {
        let cfg = &self.inner.config;
        let now = cfg.clock.now_us();
        let expired: Vec<(CompletId, u64, u32)> = {
            let mut g = self.inner.held_moves.lock();
            let re_arm = cfg
                .clock
                .deadline_us(cfg.move_hold_timeout + cfg.rpc_timeout);
            g.iter_mut()
                .filter(|(_, h)| h.deadline <= now)
                .map(|(k, h)| {
                    h.deadline = re_arm;
                    (k.0, k.1, h.source)
                })
                .collect()
        };
        for (root, epoch, source) in expired {
            let core = self.clone();
            thread::spawn(
                move || match core.rpc(source, Request::MoveDecision { root, epoch }) {
                    Ok(Reply::MoveState {
                        state: MoveTxnState::Committed,
                    }) => {
                        if let Some(h) = core.inner.held_moves.lock().remove(&(root, epoch)) {
                            core.activate_held(root, epoch, h, None);
                        }
                    }
                    Ok(Reply::MoveState {
                        state: MoveTxnState::Aborted,
                    }) => {
                        let _ = core.handle_move_abort(root, epoch);
                    }
                    // Unknown or unreachable: keep holding; the re-armed
                    // deadline retries later.
                    _ => {}
                },
            );
        }
    }

    /// Re-holds a move stream recovered from the write-ahead log after a
    /// Core restart: the complets are reconstructed but stay invisible
    /// until the source's verdict arrives (via `MoveCommit`/`MoveAbort`
    /// retransmits, the monitor sweep, or [`Core::resolve_held_now`]).
    /// The continuation does not survive the crash — it had not been
    /// acknowledged to any caller. Returns `false` when reconstruction
    /// fails (e.g. the type is no longer registered).
    pub(crate) fn rehold_recovered(&self, held: crate::runtime::wal::WalHeld) -> bool {
        let key = (held.root, held.epoch);
        if self.inner.held_moves.lock().contains_key(&key)
            || self
                .inner
                .move_outcomes
                .get(held.root, held.epoch)
                .is_some()
        {
            return false;
        }
        let mut complets = Vec::with_capacity(held.packets.len());
        for s in held.packets {
            let complet = match self
                .inner
                .registry
                .reconstruct(&s.type_name, s.state.clone())
            {
                Ok(c) => c,
                Err(_) => return false,
            };
            let packet = CompletPacket {
                id: s.id,
                type_name: s.type_name,
                state: s.state,
                names: s.names,
                epoch: s.epoch,
            };
            complets.push((packet, complet));
        }
        let rearmed = HeldMove {
            complets,
            continuation: None,
            source: held.source,
            deadline: self
                .inner
                .config
                .clock
                .deadline_us(self.inner.config.move_hold_timeout),
        };
        self.inner.held_moves.lock().insert(key, rearmed);
        true
    }

    /// Synchronously resolves every held move by asking its source for
    /// the recorded verdict — the deterministic counterpart of the
    /// monitor-thread sweep, for recovery paths and tests that park the
    /// monitor. Streams whose source answers `Unknown` (or is
    /// unreachable) stay held. Returns how many were resolved.
    pub fn resolve_held_now(&self) -> usize {
        let pending: Vec<(CompletId, u64, u32)> = self
            .inner
            .held_moves
            .lock()
            .iter()
            .map(|(k, h)| (k.0, k.1, h.source))
            .collect();
        let mut resolved = 0;
        for (root, epoch, source) in pending {
            match self.rpc(source, Request::MoveDecision { root, epoch }) {
                Ok(Reply::MoveState {
                    state: MoveTxnState::Committed,
                }) => {
                    if let Some(h) = self.inner.held_moves.lock().remove(&(root, epoch)) {
                        self.activate_held(root, epoch, h, None);
                        resolved += 1;
                    }
                }
                Ok(Reply::MoveState {
                    state: MoveTxnState::Aborted,
                }) => {
                    let _ = self.handle_move_abort(root, epoch);
                    resolved += 1;
                }
                _ => {}
            }
        }
        resolved
    }

    /// Runs the `post_arrival` callback on a freshly installed complet,
    /// honouring any deferred moves it requests (itineraries).
    fn run_post_arrival(&self, id: CompletId) {
        let Some(slot) = self.inner.complets.read().get(&id).cloned() else {
            return;
        };
        let mut guard = slot.state.lock();
        if let SlotState::Present(complet) = &mut *guard {
            let mut ctx = self.make_ctx(id, &slot.type_name, vec![]);
            complet.post_arrival(&mut ctx);
            drop(guard);
            self.run_deferred(ctx);
        }
    }

    /// Serves `FetchState` (remote duplicate).
    pub(crate) fn handle_fetch_state(&self, id: CompletId) -> Reply {
        let Some(slot) = self.inner.complets.read().get(&id).cloned() else {
            return Reply::Err(FargoError::UnknownComplet(id));
        };
        let Some(guard) = slot.state.try_lock_for(self.inner.config.transit_wait) else {
            return Reply::Err(FargoError::Timeout);
        };
        match &*guard {
            SlotState::Present(c) => Reply::StateOk {
                type_name: slot.type_name.clone(),
                state: c.marshal(),
            },
            _ => Reply::Err(FargoError::AlreadyMoving(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;
    use std::time::Duration;

    use fargo_wire::{CompletId, RefDescriptor, Value};
    use simnet::{LinkConfig, Network, NetworkConfig};

    use crate::runtime::wal::{Wal, WalHeld, WalRecord, WalState};
    use crate::runtime::Core;
    use crate::{CompletRef, CompletRegistry, CoreConfig};

    crate::define_complet! {
        complet HeldCounter {
            state { n: i64 = 0 }
            fn add(&mut self, _ctx, args) {
                self.n += args.first().and_then(Value::as_i64).unwrap_or(1);
                Ok(Value::I64(self.n))
            }
            fn get(&mut self, _ctx, _args) {
                Ok(Value::I64(self.n))
            }
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("fargo-movement-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// Crash window between `install_arrival`'s State appends and the
    /// HeldResolved append: recovery re-installs the survivor from its
    /// fresher State records *and* re-holds the transaction. When the
    /// source later answers Committed, the duplicate activation must not
    /// re-run `install_arrival` — that would overwrite acknowledged
    /// (since-mutated) state with the stale pre-arrival packet snapshot.
    #[test]
    fn recovered_partial_activation_does_not_clobber_newer_state() {
        let root_dir = scratch("partial-activation");
        let id = CompletId::new(0, 7);
        let arrived_state = |n: i64| WalState {
            id,
            type_name: "HeldCounter".into(),
            state: Value::map([("n", Value::from(n))]),
            epoch: 1,
            names: vec![],
        };
        // Source core0 recorded the commit verdict (point of no return)
        // before the crash; recovery reloads it into the decision log.
        {
            let wal = Wal::open(&root_dir.join("core0"), "core0", false).unwrap();
            wal.append(&WalRecord::Decision {
                root: id,
                epoch: 1,
                committed: true,
                ids: vec![id],
                dest: 1,
            })
            .unwrap();
        }
        // Destination core1 crashed mid-activation: the Held record and
        // the installed State are on disk, the HeldResolved is not.
        {
            let wal = Wal::open(&root_dir.join("core1"), "core1", false).unwrap();
            wal.append(&WalRecord::Held(WalHeld {
                root: id,
                epoch: 1,
                source: 0,
                packets: vec![arrived_state(7)],
            }))
            .unwrap();
            wal.append(&WalRecord::State(arrived_state(7))).unwrap();
        }

        let net = Network::new(NetworkConfig {
            default_link: Some(LinkConfig::instant()),
            ..NetworkConfig::default()
        });
        let reg = CompletRegistry::new();
        HeldCounter::register(&reg);
        // A long hold timeout keeps the monitor sweep from racing the
        // explicit resolve below.
        let config = |i: usize| {
            let mut c = CoreConfig::default().with_wal_dir(root_dir.join(format!("core{i}")));
            c.move_hold_timeout = Duration::from_secs(60);
            c
        };
        let core0 = Core::builder(&net, "core0")
            .registry(&reg)
            .config(config(0))
            .spawn()
            .unwrap();
        let core1 = Core::builder(&net, "core1")
            .registry(&reg)
            .config(config(1))
            .spawn()
            .unwrap();

        // Recovery re-installed the survivor and re-held the transaction.
        let report = core1.recovery_report().expect("recovery ran");
        assert_eq!(report.replayed, 1, "{report:?}");
        assert_eq!(report.held, 1, "{report:?}");
        assert!(core1.hosts(id));

        // New acknowledged work lands on the recovered complet before the
        // in-doubt transaction resolves.
        let stub = core1.stub(CompletRef::from_descriptor(RefDescriptor::link(
            id,
            "HeldCounter",
            core1.node().index(),
        )));
        assert_eq!(stub.call("add", &[Value::I64(1)]).unwrap(), Value::I64(8));

        // The source answers Committed; the duplicate activation must be
        // acknowledged without re-installing the stale packet.
        assert_eq!(core1.resolve_held_now(), 1);
        assert_eq!(
            stub.call("get", &[]).unwrap(),
            Value::I64(8),
            "duplicate activation clobbered acknowledged state"
        );
        assert!(!core0.hosts(id), "exactly one live copy");

        core0.stop();
        core1.stop();
        let _ = std::fs::remove_dir_all(&root_dir);
    }
}
