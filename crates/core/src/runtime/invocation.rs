//! The Invocation unit: parameter passing and tracker-routed dispatch
//! (§3.1).
//!
//! * Regular values are passed **by value**; complet references inside a
//!   passed object graph travel with it but are **degraded to `link`**,
//!   and the referenced complets themselves are never copied.
//! * An invocation is routed by the local tracker: directly when the
//!   target is local, along the tracker chain otherwise. The reply walks
//!   the chain back, repointing every tracker to the target's final
//!   location (chain shortening).

use std::sync::atomic::Ordering;
use std::thread;
use std::time::Duration;

use fargo_telemetry::{JournalKind, TraceContext};
use fargo_wire::{CompletId, Value};

use crate::config::TrackingMode;
use crate::error::{FargoError, Result};
use crate::proto::{Message, Reply, ReqId, Request};
use crate::reference::tracker::{PointOutcome, TrackerTarget};
use crate::reference::CompletRef;
use crate::runtime::{Core, PendingCall, SlotState, APP_SEQ};
use crate::telemetry;

/// Outcome of attempting to run an invocation on a local slot.
enum LocalExec {
    /// The invocation ran; here is its result.
    Done(Result<Value>),
    /// The complet moved away meanwhile; re-route.
    Moved,
}

/// Where the router decided an invocation should go.
enum Route {
    Local,
    Remote(u32),
    Unknown,
}

impl Core {
    /// Invokes `method(args)` on the complet behind `target`.
    ///
    /// This is the stub's call path for application code; complet code
    /// calls through [`Ctx::call`](crate::Ctx::call) so the call chain is
    /// threaded for re-entrancy detection.
    ///
    /// # Errors
    ///
    /// Fails when the target cannot be found, the chain exceeds the hop
    /// limit, the method is unknown, or the application method fails.
    pub fn invoke(&self, target: &CompletRef, method: &str, args: &[Value]) -> Result<Value> {
        self.invoke_chained(target, method, args, Vec::new())
    }

    /// Begins an invocation without blocking for its result (the engine
    /// behind [`BoundRef::call_async`](crate::BoundRef::call_async)).
    ///
    /// A remote target costs one request transmission here — no parked
    /// thread, no pool slot — and the returned [`PendingCall`] owns the
    /// correlation slot until waited or dropped. Local (and unroutable)
    /// targets resolve through the blocking path at issue time, since
    /// in-process execution has nothing to overlap with.
    pub fn invoke_async(&self, target: &CompletRef, method: &str, args: &[Value]) -> PendingCall {
        let id = target.id();
        let me = self.inner.node.index();
        match self.route(id, target) {
            Route::Remote(node) => {
                let t = &self.inner.telemetry;
                t.invoke_total.inc();
                let src = CompletId::new(me, APP_SEQ);
                self.inner.monitor.invocations.record(src, id);
                let src_label = if t.journal_enabled {
                    src.to_string()
                } else {
                    String::new()
                };
                t.journal(JournalKind::Invoke, &id, method, &src_label, None);
                // By-value parameter semantics, exactly as `invoke`.
                let degraded: Vec<Value> = args
                    .iter()
                    .cloned()
                    .map(|v| v.transform_refs(&mut |r| r.degraded()))
                    .collect();
                let body = Request::Invoke {
                    target: id,
                    method: method.to_owned(),
                    args: degraded,
                    chain: Vec::new(),
                    path: vec![me],
                    hops: 0,
                };
                match self.rpc_begin(node, body) {
                    Ok(rpc) => {
                        PendingCall::remote(rpc, target.clone(), method.to_owned(), args.to_vec())
                    }
                    Err(e) => PendingCall::ready(Err(e)),
                }
            }
            Route::Local | Route::Unknown => PendingCall::ready(self.invoke(target, method, args)),
        }
    }

    pub(crate) fn invoke_chained(
        &self,
        target: &CompletRef,
        method: &str,
        args: &[Value],
        chain: Vec<CompletId>,
    ) -> Result<Value> {
        let t = &self.inner.telemetry;
        t.invoke_total.inc();
        // Root span (or child of the ambient one, when called from inside
        // another traced invocation); ambient while routing so outbound
        // requests carry the context.
        let span = if t.trace_enabled {
            let parent = telemetry::current_trace();
            let ctx = parent.map_or_else(TraceContext::new_root, |p| p.child());
            let timer = t.spans.start(
                ctx,
                parent.map_or(0, |p| p.span_id),
                format!("invoke {}.{}", target.target_type(), method),
            );
            Some((ctx, timer, telemetry::enter_trace(ctx)))
        } else {
            None
        };
        let started = self.inner.config.clock.now_us();
        let result = self.invoke_routed(target, method, args, chain);
        let total_us = self.inner.config.clock.now_us().saturating_sub(started);
        t.invoke_latency_us.observe(total_us);
        let trace_id = span.as_ref().map(|(ctx, ..)| ctx.trace_id);
        if let Some((_, timer, scope)) = span {
            drop(scope);
            timer.finish(&t.spans, &self.inner.name);
        }
        // Tail-based retention: requests slower than everything the
        // bounded slow-log already holds are admitted with a snapshot of
        // their local span tree, so the worst tail stays inspectable
        // (`shell slow`) long after the span ring has moved on.
        if t.phase_timing && total_us >= t.slow.threshold_us() {
            let spans = trace_id.map(|id| t.spans.for_trace(id)).unwrap_or_default();
            t.slow.offer(fargo_telemetry::SlowRecord {
                trace_id: trace_id.unwrap_or(0),
                name: format!("invoke {}.{}", target.target_type(), method),
                total_us,
                at_us: started,
                spans,
            });
        }
        result
    }

    fn invoke_routed(
        &self,
        target: &CompletRef,
        method: &str,
        args: &[Value],
        chain: Vec<CompletId>,
    ) -> Result<Value> {
        let id = target.id();
        if chain.contains(&id) {
            return Err(FargoError::ReentrantInvocation(id));
        }
        // Application-level profiling at the reference's source (§4.1).
        let src = chain
            .last()
            .copied()
            .unwrap_or(CompletId::new(self.inner.node.index(), APP_SEQ));
        self.inner.monitor.invocations.record(src, id);
        // Journaled before any routing (and before the request send, which
        // stamps a later HLC), so in the merged timeline the issue orders
        // before every forward and the eventual exec. The detail carries
        // the issuing complet (seq 0 = the application pseudo-complet),
        // which lets the layout planner rebuild cluster-wide traffic
        // edges from merged journals alone.
        let src_label = if self.inner.telemetry.journal_enabled {
            src.to_string()
        } else {
            String::new() // no allocation when the journal is off
        };
        self.inner
            .telemetry
            .journal(JournalKind::Invoke, &id, method, &src_label, None);

        // By-value parameter semantics: the argument graph is copied and
        // every complet reference inside it is degraded to `link`.
        let args: Vec<Value> = args
            .iter()
            .cloned()
            .map(|v| v.transform_refs(&mut |r| r.degraded()))
            .collect();

        let me = self.inner.node.index();
        let clock = &self.inner.config.clock;
        let deadline = clock.deadline_us(self.inner.config.rpc_timeout);
        // A virtual clock only advances when the schedule says so; the
        // spin budget keeps a stale-route loop from hanging the checker
        // where wall time would eventually trip the deadline.
        let mut spins: u32 = 1 + self.inner.config.rpc_timeout.as_millis() as u32;
        let mut missing_retries = 0u32;
        loop {
            // The budget bounds the whole loop — re-routes, rpc rounds,
            // and backoff sleeps alike — so a flapping location can't
            // spin past the configured timeout.
            spins = spins.saturating_sub(1);
            if clock.now_us() > deadline || spins == 0 {
                return Err(FargoError::Timeout);
            }
            match self.route(id, target) {
                Route::Local => match self.execute_local(id, method, &args, &chain) {
                    LocalExec::Done(res) => {
                        if res.is_ok() {
                            target.set_last_known(me);
                            self.inner.trackers.credit(id);
                        }
                        self.inner.telemetry.invoke_hops.observe(0);
                        return res;
                    }
                    LocalExec::Moved => continue,
                },
                Route::Remote(node) => {
                    match self.rpc_invoke(node, id, method, args.clone(), chain.clone())? {
                        Reply::InvokeOk {
                            value,
                            final_location,
                            ..
                        } => {
                            // The dispatch through the tracker succeeded:
                            // only now does it count as traffic.
                            self.inner.trackers.credit(id);
                            target.set_last_known(final_location);
                            return Ok(value);
                        }
                        Reply::Err(FargoError::UnknownComplet(_)) if missing_retries < 3 => {
                            missing_retries += 1;
                            // The Core we routed to neither hosts nor
                            // tracks the target — our forward is a dead
                            // end (its tracker may have been
                            // idle-collected). Drop the stale edge; if
                            // the home registry knows better, re-seed
                            // from it and retry without backing off.
                            if self.inner.trackers.remove(id) {
                                self.inner.telemetry.journal(
                                    JournalKind::TrackerRetired,
                                    &id,
                                    "",
                                    "dead-end",
                                    Some(node),
                                );
                            }
                            if let Route::Remote(n) = self.route_via_home(id) {
                                self.inner.trackers.seed_forward(id, n);
                                continue;
                            }
                            // Location knowledge may lag a concurrent
                            // move; back off briefly (never past the
                            // deadline) and re-resolve.
                            let remaining =
                                Duration::from_micros(deadline.saturating_sub(clock.now_us()));
                            if remaining.is_zero() {
                                return Err(FargoError::Timeout);
                            }
                            thread::sleep(Duration::from_millis(2).min(remaining));
                        }
                        Reply::Err(e) => return Err(e),
                        other => {
                            return Err(FargoError::Protocol(format!(
                                "unexpected invoke reply {other:?}"
                            )))
                        }
                    }
                }
                Route::Unknown => return Err(FargoError::UnknownComplet(id)),
            }
        }
    }

    /// Decides where an invocation of `id` should go from this Core.
    fn route(&self, id: CompletId, target: &CompletRef) -> Route {
        let me = self.inner.node.index();
        match self.inner.config.tracking {
            TrackingMode::Chains => match self.inner.trackers.route(id) {
                Some(TrackerTarget::Local) => Route::Local,
                Some(TrackerTarget::Forward(n)) if n != me => Route::Remote(n),
                Some(TrackerTarget::Forward(_)) => {
                    // A forward pointing at ourselves is stale.
                    if self.hosts(id) {
                        let epoch = self.current_move_epoch(id);
                        let _ = self.inner.trackers.point(id, TrackerTarget::Local, epoch);
                        Route::Local
                    } else {
                        Route::Unknown
                    }
                }
                None => {
                    // First use of a received reference: seed a tracker
                    // from the descriptor's location hint.
                    let hint = target.last_known();
                    if hint != me {
                        self.inner.trackers.seed_forward(id, hint);
                        Route::Remote(hint)
                    } else if self.hosts(id) {
                        let epoch = self.current_move_epoch(id);
                        let _ = self.inner.trackers.point(id, TrackerTarget::Local, epoch);
                        Route::Local
                    } else {
                        // The tracker may have been garbage-collected;
                        // fall back to the home registry before failing.
                        self.route_via_home(id)
                    }
                }
            },
            TrackingMode::HomeBased => {
                if self.hosts(id) {
                    return Route::Local;
                }
                // Consult the authoritative home registry at the origin
                // Core instead of following chains (§7 future work).
                if id.origin == me {
                    match self.inner.home.lock().get(&id) {
                        Some(&(n, _)) if n != me => Route::Remote(n),
                        _ => Route::Unknown,
                    }
                } else {
                    match self.rpc(id.origin, Request::WhereIs { id }) {
                        Ok(Reply::WhereOk { node: Some(n) }) if n != me => Route::Remote(n),
                        Ok(Reply::WhereOk { node: Some(_) }) => {
                            // Home says "here" but the complet is gone:
                            // knowledge is stale.
                            Route::Unknown
                        }
                        _ => {
                            // Home unreachable: fall back to the hint.
                            let hint = target.last_known();
                            if hint != me {
                                Route::Remote(hint)
                            } else {
                                Route::Unknown
                            }
                        }
                    }
                }
            }
        }
    }

    /// Last-resort routing through the home registry (the complet's
    /// origin Core knows its current location).
    fn route_via_home(&self, id: CompletId) -> Route {
        let me = self.inner.node.index();
        // The sharded location service answers in at most one hop,
        // whoever originated the complet; the origin-bound home registry
        // below is the fallback when naming is disabled or the shard has
        // no entry yet.
        if let Some((n, _epoch, _hops)) = self.shard_consult(id) {
            if n != me {
                return Route::Remote(n);
            }
        }
        if id.origin == me {
            return match self.inner.home.lock().get(&id) {
                Some(&(n, _)) if n != me => Route::Remote(n),
                _ => Route::Unknown,
            };
        }
        match self.rpc(id.origin, Request::WhereIs { id }) {
            Ok(Reply::WhereOk { node: Some(n) }) if n != me => Route::Remote(n),
            _ => Route::Unknown,
        }
    }

    /// Runs an invocation against a local slot, waiting out transits.
    fn execute_local(
        &self,
        id: CompletId,
        method: &str,
        args: &[Value],
        chain: &[CompletId],
    ) -> LocalExec {
        let clock = &self.inner.config.clock;
        let wait_deadline = clock.deadline_us(self.inner.config.transit_wait);
        // Under a virtual clock the deadline only fires when the schedule
        // advances time; the poll budget (one per 1ms sleep below) keeps
        // the transit wait bounded regardless.
        let mut polls: u64 = 1 + self.inner.config.transit_wait.as_millis() as u64;
        loop {
            let Some(slot) = self.inner.complets.read().get(&id).cloned() else {
                return LocalExec::Moved;
            };
            let Some(mut guard) = slot.state.try_lock_for(self.inner.config.transit_wait) else {
                return LocalExec::Done(Err(FargoError::Timeout));
            };
            match &mut *guard {
                SlotState::Present(complet) => {
                    let t = &self.inner.telemetry;
                    t.journal(JournalKind::Exec, &id, method, "", None);
                    let mut ctx = self.make_ctx(
                        id,
                        &slot.type_name,
                        chain.iter().copied().chain([id]).collect(),
                    );
                    let accounting = t.accounting;
                    let start = if accounting { t.phase_now_us() } else { 0 };
                    let result = complet.invoke(&mut ctx, method, args);
                    if accounting {
                        let exec_us = t.phase_now_us().saturating_sub(start);
                        let bytes_in: u64 = args.iter().map(|a| a.deep_size() as u64).sum();
                        let bytes_out = result.as_ref().map(|v| v.deep_size() as u64).unwrap_or(0);
                        t.account_exec(id, exec_us, bytes_in, bytes_out);
                    }
                    if result.is_err() {
                        t.invoke_errors_total.inc();
                    }
                    // Write-ahead before acknowledging: a successful
                    // reply promises the caller that the complet's
                    // post-invocation state survives a Core crash. The
                    // record is appended while the slot is still locked
                    // so log order matches invocation order — released
                    // first, a concurrent invocation could mutate the
                    // complet, append its newer state, and then be
                    // durably superseded by this one's stale snapshot
                    // (fold keeps the last record per id).
                    let acked = result.is_ok()
                        && self.inner.config.wal_sync_acks
                        && self.inner.wal.is_some();
                    if acked {
                        self.wal_capture_state(id, &slot.type_name, complet.marshal());
                    }
                    drop(guard);
                    if acked {
                        let detail = match result.as_ref() {
                            Ok(Value::I64(v)) => v.to_string(),
                            _ => String::new(),
                        };
                        t.journal(JournalKind::ExecAcked, &id, method, &detail, None);
                    }
                    // Weak mobility: deferred self-moves run only now,
                    // after the method body released the complet (§3.3).
                    self.run_deferred(ctx);
                    return LocalExec::Done(result);
                }
                SlotState::InTransit => {
                    drop(guard);
                    polls = polls.saturating_sub(1);
                    if clock.now_us() > wait_deadline || polls == 0 {
                        return LocalExec::Done(Err(FargoError::Timeout));
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                SlotState::Gone => return LocalExec::Moved,
            }
        }
    }

    /// Sends an Invoke request and waits for its (possibly chain-routed)
    /// reply, retransmitting through the shared reliable-rpc path. The
    /// same `req_id` rides on every copy, so a retried non-idempotent
    /// method is deduplicated (or replayed) at the executing Core.
    fn rpc_invoke(
        &self,
        node: u32,
        target: CompletId,
        method: &str,
        args: Vec<Value>,
        chain: Vec<CompletId>,
    ) -> Result<Reply> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(FargoError::ShuttingDown);
        }
        let me = self.inner.node.index();
        let req_id = self.inner.req_seq.fetch_add(1, Ordering::Relaxed);
        let msg = Message::Request {
            req_id,
            origin: me,
            trace: telemetry::current_trace(),
            body: Request::Invoke {
                target,
                method: method.to_owned(),
                args,
                chain,
                path: vec![me],
                hops: 0,
            },
        };
        self.rpc_send_wait(node, req_id, &msg)
    }

    /// Network-side handler: executes, forwards along the chain, or fails.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_invoke(
        &self,
        origin: u32,
        req_id: ReqId,
        trace: Option<TraceContext>,
        target: CompletId,
        method: String,
        args: Vec<Value>,
        chain: Vec<CompletId>,
        path: Vec<u32>,
        hops: u32,
    ) {
        let me = self.inner.node.index();
        let send_reply = |body: Reply| {
            // This Core produced the reply, so it owns the dedup entry: a
            // retransmitted copy of the request replays this body.
            self.inner.reply_cache.complete(origin, req_id, &body);
            // The reply walks the request path backwards so every tracker
            // on the chain learns the final location.
            let mut route: Vec<u32> = path.iter().rev().copied().collect();
            if route.is_empty() {
                route.push(origin);
            }
            let first = route.remove(0);
            let msg = Message::Reply {
                req_id,
                route,
                body,
            };
            let _ = self.send_to(first, &msg);
        };

        loop {
            match self.inner.trackers.route(target) {
                Some(TrackerTarget::Local) => {
                    // Execution span, parented on the requesting Core's
                    // invoke (or forward) span; ambient while the method
                    // body runs so nested calls join the trace.
                    let t = &self.inner.telemetry;
                    let span = match (t.trace_enabled, trace) {
                        (true, Some(parent)) => {
                            let ctx = parent.child();
                            let timer =
                                t.spans.start(ctx, parent.span_id, format!("exec {method}"));
                            Some((timer, telemetry::enter_trace(ctx)))
                        }
                        _ => None,
                    };
                    let exec_start = t.phase_timing.then(|| t.phase_now_us());
                    let exec = self.execute_local(target, &method, &args, &chain);
                    if let Some(t0) = exec_start {
                        t.latency_exec_us
                            .observe(t.phase_now_us().saturating_sub(t0));
                    }
                    if let Some((timer, scope)) = span {
                        drop(scope);
                        timer.finish(&t.spans, &self.inner.name);
                    }
                    match exec {
                        LocalExec::Done(res) => {
                            self.inner.telemetry.invoke_hops.observe(u64::from(hops));
                            return match res {
                                Ok(value) => {
                                    self.inner.trackers.credit(target);
                                    // Stamp the executing incarnation's
                                    // epoch: every tracker the reply
                                    // passes can tell this location report
                                    // from a stale straggler.
                                    send_reply(Reply::InvokeOk {
                                        value,
                                        final_location: me,
                                        target,
                                        epoch: self.current_move_epoch(target),
                                    })
                                }
                                Err(e) => send_reply(Reply::Err(e)),
                            };
                        }
                        LocalExec::Moved => continue,
                    }
                }
                Some(TrackerTarget::Forward(next)) if next != me => {
                    if hops + 1 > self.inner.config.max_hops {
                        return send_reply(Reply::Err(FargoError::HopLimit(
                            self.inner.config.max_hops,
                        )));
                    }
                    let t = &self.inner.telemetry;
                    t.tracker_forwards_served_total.inc();
                    t.tracker_chain_length.observe(u64::from(hops) + 1);
                    t.journal(JournalKind::Forward, &target, &method, "", Some(next));
                    // The forwarded request carries a span of its own so
                    // the rendered tree shows each chain hop.
                    let (fwd_trace, span) = match (t.trace_enabled, trace) {
                        (true, Some(parent)) => {
                            let ctx = parent.child();
                            let timer =
                                t.spans
                                    .start(ctx, parent.span_id, format!("forward {method}"));
                            (Some(ctx), Some(timer))
                        }
                        _ => (trace, None),
                    };
                    let mut fwd_path = path.clone();
                    fwd_path.push(me);
                    let msg = Message::Request {
                        req_id,
                        origin,
                        trace: fwd_trace,
                        body: Request::Invoke {
                            target,
                            method: method.clone(),
                            args: args.clone(),
                            chain: chain.clone(),
                            path: fwd_path,
                            hops: hops + 1,
                        },
                    };
                    let fwd_start = t.phase_timing.then(|| t.phase_now_us());
                    let sent = self.send_to(next, &msg);
                    if let Some(t0) = fwd_start {
                        t.latency_forward_us
                            .observe(t.phase_now_us().saturating_sub(t0));
                    }
                    if let Some(timer) = span {
                        timer.finish(&t.spans, &self.inner.name);
                    }
                    if let Err(e) = sent {
                        return send_reply(Reply::Err(e));
                    }
                    // The forward left this Core successfully — that is
                    // this tracker's dispatch, so count the hit now.
                    self.inner.trackers.credit(target);
                    // The executing Core downstream caches the reply; a
                    // lingering `InFlight` marker here would swallow every
                    // retransmission of this request for good.
                    self.inner.reply_cache.forget(origin, req_id);
                    return;
                }
                Some(TrackerTarget::Forward(_)) | None => {
                    if self.hosts(target) {
                        let epoch = self.current_move_epoch(target);
                        let _ = self
                            .inner
                            .trackers
                            .point(target, TrackerTarget::Local, epoch);
                        continue;
                    }
                    // Idle-tracker collection may have retired this Core's
                    // tracker while stubs elsewhere still route through it.
                    // If this Core is the complet's origin, its home
                    // registry survives collection: re-seed the chain from
                    // it and forward rather than failing the invocation.
                    if target.origin == me {
                        let known = self.inner.home.lock().get(&target).copied();
                        if let Some((n, epoch)) = known {
                            if n != me {
                                if let PointOutcome::Updated { .. } = self.inner.trackers.point(
                                    target,
                                    TrackerTarget::Forward(n),
                                    epoch,
                                ) {
                                    self.inner.telemetry.journal(
                                        JournalKind::TrackerForwarded,
                                        &target,
                                        "",
                                        "home-reseed",
                                        Some(n),
                                    );
                                    continue;
                                }
                            }
                        }
                    }
                    return send_reply(Reply::Err(FargoError::UnknownComplet(target)));
                }
            }
        }
    }
}
