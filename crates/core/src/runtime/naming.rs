//! The naming service: logical names → complet references.
//!
//! Part of the Core's Complet Repository (Figure 1). Bindings are
//! per-Core; a binding travels with its complet when the complet moves
//! (see the movement unit), and lookups can be issued against remote
//! Cores.

use fargo_wire::Value;

use crate::error::{FargoError, Result};
use crate::proto::{Reply, Request};
use crate::reference::CompletRef;
use crate::runtime::{BoundRef, Core};

impl Core {
    /// Binds `name` to a complet reference in this Core's naming service,
    /// replacing any previous binding of that name.
    pub fn bind(&self, name: &str, r: &CompletRef) {
        self.inner
            .naming
            .lock()
            .insert(name.to_owned(), r.descriptor());
    }

    /// Resolves a local binding.
    pub fn lookup(&self, name: &str) -> Option<CompletRef> {
        self.inner
            .naming
            .lock()
            .get(name)
            .cloned()
            .map(CompletRef::from_descriptor)
    }

    /// Resolves a binding and returns it pre-bound to this Core.
    ///
    /// # Errors
    ///
    /// Returns [`FargoError::NameNotBound`] when the name is unbound.
    pub fn lookup_stub(&self, name: &str) -> Result<BoundRef> {
        self.lookup(name)
            .map(|r| self.stub(r))
            .ok_or_else(|| FargoError::NameNotBound(name.to_owned()))
    }

    /// Removes a binding; returns the reference it held.
    pub fn unbind(&self, name: &str) -> Option<CompletRef> {
        self.inner
            .naming
            .lock()
            .remove(name)
            .map(CompletRef::from_descriptor)
    }

    /// All `(name, reference)` bindings of this Core, sorted by name.
    pub fn bindings(&self) -> Vec<(String, CompletRef)> {
        let naming = self.inner.naming.lock();
        let mut out: Vec<(String, CompletRef)> = naming
            .iter()
            .map(|(n, d)| (n.clone(), CompletRef::from_descriptor(d.clone())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Resolves a binding in a **remote** Core's naming service.
    ///
    /// # Errors
    ///
    /// Fails when the Core is unknown/unreachable or the name is unbound.
    pub fn lookup_at(&self, core_name: &str, name: &str) -> Result<BoundRef> {
        if core_name == self.inner.name {
            return self.lookup_stub(name);
        }
        let node = self.resolve_core(core_name)?;
        match self.rpc(
            node,
            Request::NameLookup {
                name: name.to_owned(),
            },
        )? {
            Reply::NameOk { desc: Some(d) } => Ok(self.stub(CompletRef::from_descriptor(d))),
            Reply::NameOk { desc: None } => Err(FargoError::NameNotBound(name.to_owned())),
            Reply::Err(e) => Err(e),
            other => Err(FargoError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Convenience: instantiate a complet and bind it in one step.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn new_named_complet(
        &self,
        name: &str,
        type_name: &str,
        args: &[Value],
    ) -> Result<BoundRef> {
        let b = self.new_complet(type_name, args)?;
        self.bind(name, b.complet_ref());
        Ok(b)
    }
}
