//! The reliable-messaging layer (at-most-once semantics).
//!
//! Three pieces cooperate:
//!
//! * senders retransmit un-answered requests with capped exponential
//!   backoff inside the overall `rpc_timeout` budget ([`retry_delay`]);
//! * receivers remember what they replied per `(origin, req_id)` in a
//!   bounded [`ReplyCache`], so a retransmitted request re-sends the
//!   recorded reply instead of executing a second time;
//! * two-phase moves record their commit/abort verdicts in a bounded
//!   [`DecisionLog`], which is what peers consult to resolve in-doubt
//!   transactions after lost replies.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use fargo_telemetry::TraceContext;
use fargo_wire::CompletId;
use parking_lot::Mutex;

use crate::proto::{Reply, ReqId, Request};

/// One request as a receiver identifies it: origin Core + correlation id.
type Key = (u32, ReqId);

/// What the dedup cache knows about one request.
enum CacheSlot {
    /// The first copy is still executing; retransmits are dropped (the
    /// eventual reply answers them implicitly via sender retransmission).
    InFlight,
    /// Execution finished; retransmits get this reply re-sent verbatim.
    Done(Reply),
}

/// Outcome of admitting one copy of a request.
pub(crate) enum CacheDecision {
    /// First sighting: execute it (an `InFlight` marker is now held and
    /// must be resolved with `complete` or `forget`).
    Execute,
    /// Another copy is still executing: drop this one.
    DropInFlight,
    /// Already executed: re-send this cached reply, do not re-execute.
    Replay(Reply),
}

/// Bounded `(origin, req_id) → reply` cache with FIFO eviction; the
/// receiver half of at-most-once execution. Capacity `0` disables it
/// (every copy executes — the historical behaviour).
pub(crate) struct ReplyCache {
    capacity: usize,
    inner: Mutex<CacheState>,
}

struct CacheState {
    slots: HashMap<Key, CacheSlot>,
    /// Insertion order for eviction; may hold stale keys after `forget`.
    order: VecDeque<Key>,
}

impl ReplyCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ReplyCache {
            capacity,
            inner: Mutex::new(CacheState {
                slots: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Admits one copy of a request. Returns the decision plus how many
    /// old entries were evicted to make room (for the eviction counter).
    pub(crate) fn begin(&self, origin: u32, req_id: ReqId) -> (CacheDecision, u64) {
        if self.capacity == 0 {
            return (CacheDecision::Execute, 0);
        }
        let mut g = self.inner.lock();
        let key = (origin, req_id);
        if let Some(slot) = g.slots.get(&key) {
            return match slot {
                CacheSlot::InFlight => (CacheDecision::DropInFlight, 0),
                CacheSlot::Done(r) => (CacheDecision::Replay(r.clone()), 0),
            };
        }
        let mut evicted = 0u64;
        while g.slots.len() >= self.capacity {
            let Some(old) = g.order.pop_front() else {
                break;
            };
            if g.slots.remove(&old).is_some() {
                evicted += 1;
            }
        }
        g.slots.insert(key, CacheSlot::InFlight);
        g.order.push_back(key);
        (CacheDecision::Execute, evicted)
    }

    /// Records the reply produced for a request admitted with `begin`.
    /// A no-op when the entry was evicted meanwhile or never admitted
    /// (idempotent requests skip the cache entirely).
    pub(crate) fn complete(&self, origin: u32, req_id: ReqId, reply: &Reply) {
        if self.capacity == 0 {
            return;
        }
        let mut g = self.inner.lock();
        if let Some(slot) = g.slots.get_mut(&(origin, req_id)) {
            *slot = CacheSlot::Done(reply.clone());
        }
    }

    /// Drops a request's entry without recording a reply. Forwarding hops
    /// call this: the reply is produced (and cached) at the executing
    /// Core, and a lingering `InFlight` marker here would swallow every
    /// retransmission for good.
    pub(crate) fn forget(&self, origin: u32, req_id: ReqId) {
        if self.capacity == 0 {
            return;
        }
        self.inner.lock().slots.remove(&(origin, req_id));
    }

    /// Live entries (tests).
    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }
}

/// The capped exponential retransmission backoff: `base * 2^attempt`,
/// saturating at `cap`.
pub(crate) fn retry_delay(attempt: u32, base: Duration, cap: Duration) -> Duration {
    let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
    base.checked_mul(factor).unwrap_or(cap).min(cap)
}

/// One request's retransmission budget, shared by the blocking
/// [`Core::rpc`](crate::Core) path and asynchronous
/// [`PendingCall`](crate::PendingCall) waits so both age a request by
/// exactly the same rules.
///
/// The overall deadline is a *protocol* deadline and reads the Core's
/// shared [`Clock`] (the deterministic checker's virtual time governs
/// when a request is declared dead); the per-attempt channel waits the
/// caller performs with [`RetryBudget::attempt_wait`] are physical
/// blocking and stay on real time.
pub(crate) struct RetryBudget {
    clock: fargo_telemetry::Clock,
    deadline_us: u64,
    max_retries: u32,
    base: Duration,
    cap: Duration,
    attempt: u32,
}

impl RetryBudget {
    /// Opens a budget of `timeout` total with up to `max_retries`
    /// retransmissions, starting now on `clock`.
    pub(crate) fn new(
        clock: fargo_telemetry::Clock,
        timeout: Duration,
        max_retries: u32,
        base: Duration,
        cap: Duration,
    ) -> Self {
        let deadline_us = clock.deadline_us(timeout);
        RetryBudget {
            clock,
            deadline_us,
            max_retries,
            base,
            cap,
            attempt: 0,
        }
    }

    /// Budget time left on the protocol clock.
    pub(crate) fn remaining(&self) -> Duration {
        Duration::from_micros(self.deadline_us.saturating_sub(self.clock.now_us()))
    }

    /// How long the current attempt should block waiting for the reply:
    /// the final attempt waits out the rest of the budget, earlier ones
    /// wait one backoff step (never past the deadline). `None` when the
    /// budget is already exhausted.
    pub(crate) fn attempt_wait(&self) -> Option<Duration> {
        let remaining = self.remaining();
        if remaining.is_zero() {
            return None;
        }
        Some(if self.attempt >= self.max_retries {
            remaining
        } else {
            retry_delay(self.attempt, self.base, self.cap).min(remaining)
        })
    }

    /// Call after a wait expired unanswered: advances to the next
    /// attempt. Returns `false` when no retransmission is allowed (the
    /// retry count or the deadline ran out) — the request is dead.
    pub(crate) fn advance(&mut self) -> bool {
        if self.attempt >= self.max_retries || self.clock.now_us() >= self.deadline_us {
            return false;
        }
        self.attempt += 1;
        true
    }

    /// Attempts performed so far (0 = the initial transmission).
    pub(crate) fn attempt(&self) -> u32 {
        self.attempt
    }
}

/// Bounded log of two-phase move verdicts, keyed `(root, epoch)`:
/// `true` = committed, `false` = aborted. The source Core records its
/// decision here *before* sending `MoveCommit`, so either side can
/// resolve a lost reply by asking; FIFO eviction bounds memory.
pub(crate) struct DecisionLog {
    capacity: usize,
    inner: Mutex<DecisionState>,
}

struct DecisionState {
    verdicts: HashMap<(CompletId, u64), bool>,
    order: VecDeque<(CompletId, u64)>,
}

impl DecisionLog {
    pub(crate) fn new(capacity: usize) -> Self {
        DecisionLog {
            capacity,
            inner: Mutex::new(DecisionState {
                verdicts: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    pub(crate) fn record(&self, root: CompletId, epoch: u64, committed: bool) {
        let mut g = self.inner.lock();
        while g.verdicts.len() >= self.capacity.max(1) {
            let Some(old) = g.order.pop_front() else {
                break;
            };
            g.verdicts.remove(&old);
        }
        if g.verdicts.insert((root, epoch), committed).is_none() {
            g.order.push_back((root, epoch));
        }
    }

    /// `Some(true)` committed, `Some(false)` aborted, `None` unknown.
    pub(crate) fn get(&self, root: CompletId, epoch: u64) -> Option<bool> {
        self.inner.lock().verdicts.get(&(root, epoch)).copied()
    }

    /// Every recorded verdict in insertion order — the write-ahead log's
    /// compaction snapshot, so verdict queries survive a Core restart.
    pub(crate) fn snapshot(&self) -> Vec<(CompletId, u64, bool)> {
        let g = self.inner.lock();
        g.order
            .iter()
            .filter_map(|k| g.verdicts.get(k).map(|v| (k.0, k.1, *v)))
            .collect()
    }
}

/// One request handed from the receiver loop to the worker pool.
pub(crate) struct WorkRequest {
    pub origin: u32,
    pub req_id: ReqId,
    pub trace: Option<TraceContext>,
    /// Shared-clock µs at which the receiver enqueued the request
    /// (`None` when phase timing is off); the worker that picks it up
    /// attributes the difference to the queue-wait phase.
    pub enqueued_us: Option<u64>,
    pub body: Request,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_copy_executes_then_replays() {
        let cache = ReplyCache::new(8);
        let (d, _) = cache.begin(1, 10);
        assert!(matches!(d, CacheDecision::Execute));
        // A retransmit while executing is dropped.
        let (d, _) = cache.begin(1, 10);
        assert!(matches!(d, CacheDecision::DropInFlight));
        cache.complete(1, 10, &Reply::Pong);
        // A retransmit after completion replays the recorded reply.
        let (d, _) = cache.begin(1, 10);
        match d {
            CacheDecision::Replay(Reply::Pong) => {}
            _ => panic!("expected replay"),
        }
        // A different origin with the same req_id is a distinct request.
        let (d, _) = cache.begin(2, 10);
        assert!(matches!(d, CacheDecision::Execute));
    }

    #[test]
    fn zero_capacity_disables_dedup() {
        let cache = ReplyCache::new(0);
        for _ in 0..3 {
            let (d, e) = cache.begin(1, 1);
            assert!(matches!(d, CacheDecision::Execute));
            assert_eq!(e, 0);
        }
    }

    #[test]
    fn eviction_is_fifo_and_counted() {
        let cache = ReplyCache::new(2);
        cache.begin(1, 1);
        cache.complete(1, 1, &Reply::Pong);
        cache.begin(1, 2);
        cache.complete(1, 2, &Reply::Ok);
        let (_, evicted) = cache.begin(1, 3);
        assert_eq!(evicted, 1);
        assert_eq!(cache.len(), 2);
        // The oldest entry (1,1) is gone: it now re-executes.
        let (d, _) = cache.begin(1, 1);
        assert!(matches!(d, CacheDecision::Execute));
    }

    #[test]
    fn forget_reopens_the_entry() {
        let cache = ReplyCache::new(8);
        cache.begin(1, 1);
        cache.forget(1, 1);
        let (d, _) = cache.begin(1, 1);
        assert!(
            matches!(d, CacheDecision::Execute),
            "forgotten entry must re-admit"
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(70);
        assert_eq!(retry_delay(0, base, cap), Duration::from_millis(10));
        assert_eq!(retry_delay(1, base, cap), Duration::from_millis(20));
        assert_eq!(retry_delay(2, base, cap), Duration::from_millis(40));
        assert_eq!(retry_delay(3, base, cap), cap);
        assert_eq!(retry_delay(40, base, cap), cap);
    }

    #[test]
    fn retry_budget_paces_and_expires() {
        let clock = fargo_telemetry::Clock::new_virtual(0);
        let mut b = RetryBudget::new(
            clock.clone(),
            Duration::from_millis(100),
            2,
            Duration::from_millis(10),
            Duration::from_millis(40),
        );
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.attempt_wait(), Some(Duration::from_millis(10)));
        assert!(b.advance());
        assert_eq!(b.attempt_wait(), Some(Duration::from_millis(20)));
        assert!(b.advance());
        // The final attempt waits out the whole remaining budget.
        assert_eq!(b.attempt_wait(), Some(Duration::from_millis(100)));
        assert!(!b.advance(), "retry count exhausted");
        clock.advance(Duration::from_millis(200));
        assert_eq!(b.attempt_wait(), None, "deadline passed");
    }

    #[test]
    fn retry_budget_deadline_preempts_retries() {
        let clock = fargo_telemetry::Clock::new_virtual(0);
        let mut b = RetryBudget::new(
            clock.clone(),
            Duration::from_millis(50),
            8,
            Duration::from_millis(10),
            Duration::from_millis(40),
        );
        assert!(b.advance());
        clock.advance(Duration::from_millis(60));
        assert!(!b.advance(), "past the deadline no retry is allowed");
        assert_eq!(b.attempt_wait(), None);
    }

    #[test]
    fn decision_log_records_and_evicts() {
        let log = DecisionLog::new(2);
        let c = |n| CompletId::new(0, n);
        log.record(c(1), 1, true);
        log.record(c(2), 1, false);
        assert_eq!(log.get(c(1), 1), Some(true));
        assert_eq!(log.get(c(2), 1), Some(false));
        assert_eq!(log.get(c(1), 2), None);
        log.record(c(3), 1, true);
        assert_eq!(log.get(c(1), 1), None, "oldest verdict evicted");
        assert_eq!(log.get(c(3), 1), Some(true));
    }
}
